//! The layered union view with copy-on-write semantics.
//!
//! Mirrors OverlayFS as the prototype uses it (§3.4): "The union file
//! system responds to file read accesses with the contents of that file
//! as it exists in the top most stack. The file system stores writes into
//! the top most read-write layer, shielding lower layers from write
//! access using copy-on-write."

use std::collections::BTreeSet;

use crate::layer::{Layer, LayerKind, Node};
use crate::path::Path;

/// Errors from union filesystem operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Path does not exist in any visible layer.
    NotFound(String),
    /// Operation expected a file but found a directory (or vice versa).
    WrongKind(String),
    /// The union has no writable top layer.
    ReadOnly,
    /// Directory not empty (for remove_dir).
    NotEmpty(String),
    /// A parent component is not a directory.
    BadParent(String),
    /// The write would exceed the writable layer's quota (the VM's
    /// fixed-size virtual disk, e.g. 128 MiB for an AnonVM; §5.2).
    NoSpace {
        /// Configured quota in bytes.
        quota: usize,
        /// Bytes the operation would have required.
        needed: usize,
    },
}

impl core::fmt::Display for FsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "not found: {p}"),
            FsError::WrongKind(p) => write!(f, "wrong node kind: {p}"),
            FsError::ReadOnly => write!(f, "filesystem is read-only"),
            FsError::NotEmpty(p) => write!(f, "directory not empty: {p}"),
            FsError::BadParent(p) => write!(f, "parent is not a directory: {p}"),
            FsError::NoSpace { quota, needed } => {
                write!(f, "no space: quota {quota} bytes, needed {needed}")
            }
        }
    }
}

impl std::error::Error for FsError {}

/// A stack of layers presenting a single filesystem.
///
/// Layers are ordered bottom-up: index 0 is the base. At most the top
/// layer may be writable.
///
/// # Examples
///
/// ```
/// use nymix_fs::{Layer, LayerKind, Path, UnionFs};
///
/// let mut base = Layer::new(LayerKind::Base);
/// base.put_file(Path::new("/etc/motd"), b"welcome".to_vec());
/// let mut fs = UnionFs::new(vec![base, Layer::new(LayerKind::Writable)]).unwrap();
/// assert_eq!(fs.read(&Path::new("/etc/motd")).unwrap(), b"welcome");
/// fs.write(&Path::new("/etc/motd"), b"patched".to_vec()).unwrap();
/// assert_eq!(fs.read(&Path::new("/etc/motd")).unwrap(), b"patched");
/// // The base layer is untouched (copy-on-write).
/// assert_eq!(fs.layer(0).get(&Path::new("/etc/motd")).unwrap().size(), 7);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFs {
    layers: Vec<Layer>,
    quota_bytes: Option<usize>,
}

impl UnionFs {
    /// Builds a union from bottom-up `layers`.
    ///
    /// Returns `None` if any non-top layer is writable, or the stack is
    /// empty.
    pub fn new(layers: Vec<Layer>) -> Option<Self> {
        if layers.is_empty() {
            return None;
        }
        let last = layers.len() - 1;
        for (i, layer) in layers.iter().enumerate() {
            if layer.is_writable() && i != last {
                return None;
            }
        }
        Some(Self {
            layers,
            quota_bytes: None,
        })
    }

    /// Caps the writable layer at `bytes` of file content — the VM's
    /// fixed-size virtual disk. `None` removes the cap.
    pub fn set_quota(&mut self, bytes: Option<usize>) {
        self.quota_bytes = bytes;
    }

    /// The configured quota, if any.
    pub fn quota(&self) -> Option<usize> {
        self.quota_bytes
    }

    fn check_quota(&self, path: &Path, new_len: usize) -> Result<(), FsError> {
        let Some(quota) = self.quota_bytes else {
            return Ok(());
        };
        let existing_in_upper = self.upper().and_then(|u| u.get(path)).map_or(0, Node::size);
        let needed = self.upper_bytes() - existing_in_upper + new_len;
        if needed > quota {
            Err(FsError::NoSpace { quota, needed })
        } else {
            Ok(())
        }
    }

    /// Number of layers in the stack.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Immutable access to a layer (0 = base).
    pub fn layer(&self, index: usize) -> &Layer {
        &self.layers[index]
    }

    /// The writable top layer, if the stack has one.
    pub fn upper(&self) -> Option<&Layer> {
        self.layers.last().filter(|l| l.is_writable())
    }

    /// Detaches the writable top layer, leaving the union read-only.
    ///
    /// This is the nym save path: the upper layer is what gets archived
    /// to cloud storage (§4.2: "The writable image can either be tossed
    /// at the end of a session or stored in the cloud").
    pub fn take_upper(&mut self) -> Option<Layer> {
        if self.layers.last().is_some_and(Layer::is_writable) {
            self.layers.pop()
        } else {
            None
        }
    }

    /// Pushes a writable layer on top.
    ///
    /// Returns `false` (and drops nothing) if a writable layer is
    /// already present or `layer` is not writable.
    pub fn push_upper(&mut self, layer: Layer) -> bool {
        if !layer.is_writable() || self.upper().is_some() {
            return false;
        }
        self.layers.push(layer);
        true
    }

    /// Resolves the visible node at `path`, honouring whiteouts.
    pub fn lookup(&self, path: &Path) -> Option<&Node> {
        for layer in self.layers.iter().rev() {
            match layer.get(path) {
                Some(Node::Whiteout) => return None,
                Some(node) => return Some(node),
                None => continue,
            }
        }
        None
    }

    /// Whether `path` exists (and is not whited out).
    pub fn exists(&self, path: &Path) -> bool {
        self.lookup(path).is_some()
    }

    /// Reads a file's contents as a borrowed slice of the owning layer —
    /// the read path never copies the body. Callers that need ownership
    /// call `.to_vec()` explicitly.
    pub fn read(&self, path: &Path) -> Result<&[u8], FsError> {
        match self.lookup(path) {
            Some(Node::File(data)) => Ok(data.as_slice()),
            Some(_) => Err(FsError::WrongKind(path.to_string())),
            None => Err(FsError::NotFound(path.to_string())),
        }
    }

    /// Writes a file (copy-on-write into the top layer).
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NoSpace`] when a quota is set and the write
    /// would exceed it.
    pub fn write(&mut self, path: &Path, data: Vec<u8>) -> Result<(), FsError> {
        self.check_parent_dir(path)?;
        if self.lookup(path).is_some_and(|n| matches!(n, Node::Dir)) {
            return Err(FsError::WrongKind(path.to_string()));
        }
        self.check_quota(path, data.len())?;
        let top = self.writable_layer()?;
        top.put_file(path.clone(), data);
        Ok(())
    }

    /// Appends to a file, creating it if absent.
    pub fn append(&mut self, path: &Path, more: &[u8]) -> Result<(), FsError> {
        let mut data = match self.read(path) {
            Ok(d) => d.to_vec(),
            Err(FsError::NotFound(_)) => Vec::new(),
            Err(e) => return Err(e),
        };
        data.extend_from_slice(more);
        self.write(path, data)
    }

    /// Creates a directory.
    pub fn mkdir(&mut self, path: &Path) -> Result<(), FsError> {
        self.check_parent_dir(path)?;
        match self.lookup(path) {
            Some(Node::Dir) => Ok(()), // mkdir -p semantics.
            Some(_) => Err(FsError::WrongKind(path.to_string())),
            None => {
                let top = self.writable_layer()?;
                top.put_dir(path.clone());
                Ok(())
            }
        }
    }

    /// Removes a file. Leaves a whiteout if a lower layer also has it.
    pub fn unlink(&mut self, path: &Path) -> Result<(), FsError> {
        match self.lookup(path) {
            Some(Node::File(_)) => {}
            Some(_) => return Err(FsError::WrongKind(path.to_string())),
            None => return Err(FsError::NotFound(path.to_string())),
        }
        let exists_below = self.exists_below_top(path);
        let top = self.writable_layer()?;
        top.remove(path);
        if exists_below {
            top.put_whiteout(path.clone());
        }
        Ok(())
    }

    /// Removes an empty directory (whiteout if present below).
    pub fn remove_dir(&mut self, path: &Path) -> Result<(), FsError> {
        match self.lookup(path) {
            Some(Node::Dir) => {}
            Some(_) => return Err(FsError::WrongKind(path.to_string())),
            None => return Err(FsError::NotFound(path.to_string())),
        }
        if !self.read_dir(path)?.is_empty() {
            return Err(FsError::NotEmpty(path.to_string()));
        }
        let exists_below = self.exists_below_top(path);
        let top = self.writable_layer()?;
        top.remove(path);
        if exists_below {
            top.put_whiteout(path.clone());
        }
        Ok(())
    }

    /// Renames a file (read + write + unlink; directories unsupported,
    /// as in early OverlayFS).
    pub fn rename(&mut self, from: &Path, to: &Path) -> Result<(), FsError> {
        let data = self.read(from)?.to_vec();
        self.write(to, data)?;
        self.unlink(from)
    }

    /// Lists the names of direct children of `dir`, merged across layers
    /// with whiteouts applied, sorted.
    pub fn read_dir(&self, dir: &Path) -> Result<Vec<String>, FsError> {
        match self.lookup(dir) {
            Some(Node::Dir) => {}
            Some(_) => return Err(FsError::WrongKind(dir.to_string())),
            None => return Err(FsError::NotFound(dir.to_string())),
        }
        let mut names: BTreeSet<String> = BTreeSet::new();
        let mut whited: BTreeSet<String> = BTreeSet::new();
        for layer in self.layers.iter().rev() {
            for (path, node) in layer.children_of(dir) {
                let name = path.file_name().expect("child has a name").to_string();
                if whited.contains(&name) || names.contains(&name) {
                    continue;
                }
                match node {
                    Node::Whiteout => {
                        whited.insert(name);
                    }
                    _ => {
                        names.insert(name);
                    }
                }
            }
        }
        Ok(names.into_iter().collect())
    }

    /// Recursively walks all visible files under `dir`.
    pub fn walk_files(&self, dir: &Path) -> Vec<Path> {
        let mut out = Vec::new();
        self.walk_files_into(dir, &mut out);
        out
    }

    /// Recursively walks all visible files under `dir`, appending sorted
    /// results to `out` (cleared first). The traversal stack doubles as
    /// the tail of `out`, so callers that keep `out` warm (cache
    /// eviction sweeps, snapshot walks) trigger no per-walk allocation
    /// beyond `read_dir`'s name merging.
    pub fn walk_files_into(&self, dir: &Path, out: &mut Vec<Path>) {
        out.clear();
        // `out[files..]` is the stack of directories still to visit;
        // `out[..files]` accumulates the files found so far.
        let mut files = 0usize;
        out.push(dir.clone());
        while out.len() > files {
            let cur = out.pop().expect("stack non-empty");
            let Ok(children) = self.read_dir(&cur) else {
                continue;
            };
            for name in children {
                let child = cur.join(&name);
                match self.lookup(&child) {
                    Some(Node::Dir) => out.push(child),
                    Some(Node::File(_)) => {
                        out.insert(files, child);
                        files += 1;
                    }
                    _ => {}
                }
            }
        }
        out.sort();
    }

    /// RAM consumed by the writable layer (the prototype stores all
    /// writes in RAM; §3.4).
    pub fn upper_bytes(&self) -> usize {
        self.upper().map_or(0, Layer::content_bytes)
    }

    fn exists_below_top(&self, path: &Path) -> bool {
        for layer in self.layers[..self.layers.len().saturating_sub(1)]
            .iter()
            .rev()
        {
            match layer.get(path) {
                Some(Node::Whiteout) => return false,
                Some(_) => return true,
                None => continue,
            }
        }
        false
    }

    fn check_parent_dir(&self, path: &Path) -> Result<(), FsError> {
        let mut cur = path.parent();
        while let Some(dir) = cur {
            if dir.is_root() {
                break;
            }
            match self.lookup(&dir) {
                Some(Node::Dir) | None => {} // None: created implicitly.
                Some(_) => return Err(FsError::BadParent(dir.to_string())),
            }
            cur = dir.parent();
        }
        Ok(())
    }

    fn writable_layer(&mut self) -> Result<&mut Layer, FsError> {
        let last = self.layers.len() - 1;
        let layer = &mut self.layers[last];
        if layer.is_writable() {
            Ok(layer)
        } else {
            Err(FsError::ReadOnly)
        }
    }
}

/// Builds the standard Nymix three-layer stack: shared base, role
/// configuration, fresh RAM-backed writable layer.
pub fn nymix_stack(base: Layer, config: Layer) -> UnionFs {
    debug_assert_eq!(base.kind(), LayerKind::Base);
    debug_assert_eq!(config.kind(), LayerKind::Config);
    UnionFs::new(vec![base, config, Layer::new(LayerKind::Writable)])
        .expect("base+config+writable is a valid stack")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_with(files: &[(&str, &[u8])]) -> Layer {
        let mut l = Layer::new(LayerKind::Base);
        for (p, d) in files {
            l.put_file(Path::new(p), d.to_vec());
        }
        l
    }

    fn two_layer(files: &[(&str, &[u8])]) -> UnionFs {
        UnionFs::new(vec![base_with(files), Layer::new(LayerKind::Writable)]).unwrap()
    }

    #[test]
    fn read_falls_through_to_base() {
        let fs = two_layer(&[("/etc/motd", b"hi")]);
        assert_eq!(fs.read(&Path::new("/etc/motd")).unwrap(), b"hi");
        assert!(matches!(
            fs.read(&Path::new("/nope")),
            Err(FsError::NotFound(_))
        ));
    }

    #[test]
    fn cow_write_shields_base() {
        let mut fs = two_layer(&[("/f", b"old")]);
        fs.write(&Path::new("/f"), b"new".to_vec()).unwrap();
        assert_eq!(fs.read(&Path::new("/f")).unwrap(), b"new");
        assert_eq!(
            fs.layer(0).get(&Path::new("/f")),
            Some(&Node::File(b"old".to_vec()))
        );
    }

    #[test]
    fn config_layer_masks_base() {
        let mut config = Layer::new(LayerKind::Config);
        config.put_file(Path::new("/etc/rc.local"), b"start-tor".to_vec());
        let fs = UnionFs::new(vec![
            base_with(&[("/etc/rc.local", b"default")]),
            config,
            Layer::new(LayerKind::Writable),
        ])
        .unwrap();
        assert_eq!(fs.read(&Path::new("/etc/rc.local")).unwrap(), b"start-tor");
    }

    #[test]
    fn unlink_lower_file_leaves_whiteout() {
        let mut fs = two_layer(&[("/doc", b"x")]);
        fs.unlink(&Path::new("/doc")).unwrap();
        assert!(!fs.exists(&Path::new("/doc")));
        assert_eq!(
            fs.upper().unwrap().get(&Path::new("/doc")),
            Some(&Node::Whiteout)
        );
        // Base still holds the data (read-only protection).
        assert!(fs.layer(0).get(&Path::new("/doc")).is_some());
    }

    #[test]
    fn unlink_upper_only_file_leaves_no_whiteout() {
        let mut fs = two_layer(&[]);
        fs.write(&Path::new("/tmp/x"), vec![1]).unwrap();
        fs.unlink(&Path::new("/tmp/x")).unwrap();
        assert_eq!(fs.upper().unwrap().get(&Path::new("/tmp/x")), None);
    }

    #[test]
    fn readdir_merges_and_masks() {
        let mut fs = two_layer(&[("/d/base.txt", b"1"), ("/d/both.txt", b"2")]);
        fs.write(&Path::new("/d/upper.txt"), vec![3]).unwrap();
        fs.write(&Path::new("/d/both.txt"), vec![4]).unwrap();
        fs.unlink(&Path::new("/d/base.txt")).unwrap();
        assert_eq!(
            fs.read_dir(&Path::new("/d")).unwrap(),
            vec!["both.txt".to_string(), "upper.txt".to_string()]
        );
    }

    #[test]
    fn whiteout_then_recreate() {
        let mut fs = two_layer(&[("/f", b"base")]);
        fs.unlink(&Path::new("/f")).unwrap();
        fs.write(&Path::new("/f"), b"fresh".to_vec()).unwrap();
        assert_eq!(fs.read(&Path::new("/f")).unwrap(), b"fresh");
    }

    #[test]
    fn rename_moves_content() {
        let mut fs = two_layer(&[("/a", b"data")]);
        fs.rename(&Path::new("/a"), &Path::new("/b")).unwrap();
        assert!(!fs.exists(&Path::new("/a")));
        assert_eq!(fs.read(&Path::new("/b")).unwrap(), b"data");
    }

    #[test]
    fn remove_dir_requires_empty() {
        let mut fs = two_layer(&[("/d/x", b"1")]);
        assert!(matches!(
            fs.remove_dir(&Path::new("/d")),
            Err(FsError::NotEmpty(_))
        ));
        fs.unlink(&Path::new("/d/x")).unwrap();
        fs.remove_dir(&Path::new("/d")).unwrap();
        assert!(!fs.exists(&Path::new("/d")));
    }

    #[test]
    fn read_only_union_rejects_writes() {
        let mut fs = UnionFs::new(vec![base_with(&[("/f", b"x")])]).unwrap();
        assert_eq!(fs.write(&Path::new("/g"), vec![1]), Err(FsError::ReadOnly));
    }

    #[test]
    fn writable_layer_only_on_top() {
        let layers = vec![Layer::new(LayerKind::Writable), Layer::new(LayerKind::Base)];
        assert!(UnionFs::new(layers).is_none());
        assert!(UnionFs::new(vec![]).is_none());
    }

    #[test]
    fn take_and_push_upper() {
        let mut fs = two_layer(&[("/f", b"base")]);
        fs.write(&Path::new("/session"), b"state".to_vec()).unwrap();
        let upper = fs.take_upper().unwrap();
        assert_eq!(upper.content_bytes(), 5);
        // Union is now read-only.
        assert_eq!(fs.write(&Path::new("/x"), vec![1]), Err(FsError::ReadOnly));
        assert!(fs.take_upper().is_none());
        // Restore a (possibly different) upper layer: the nym restore path.
        assert!(fs.push_upper(upper));
        assert_eq!(fs.read(&Path::new("/session")).unwrap(), b"state");
        assert!(!fs.push_upper(Layer::new(LayerKind::Writable)));
    }

    #[test]
    fn walk_files_recurses() {
        let mut fs = two_layer(&[("/a/1", b"x"), ("/a/b/2", b"y")]);
        fs.write(&Path::new("/a/b/c/3"), vec![1]).unwrap();
        let files: Vec<String> = fs
            .walk_files(&Path::root())
            .iter()
            .map(|p| p.to_string())
            .collect();
        assert_eq!(files, vec!["/a/1", "/a/b/2", "/a/b/c/3"]);
    }

    #[test]
    fn upper_bytes_tracks_ram_cost() {
        let mut fs = two_layer(&[("/f", b"0123456789")]);
        assert_eq!(fs.upper_bytes(), 0);
        // Reading costs nothing; COW costs RAM.
        let _ = fs.read(&Path::new("/f"));
        assert_eq!(fs.upper_bytes(), 0);
        fs.write(&Path::new("/f"), vec![0; 10]).unwrap();
        assert_eq!(fs.upper_bytes(), 10);
    }

    #[test]
    fn append_creates_and_extends() {
        let mut fs = two_layer(&[]);
        fs.append(&Path::new("/log"), b"a").unwrap();
        fs.append(&Path::new("/log"), b"b").unwrap();
        assert_eq!(fs.read(&Path::new("/log")).unwrap(), b"ab");
    }

    #[test]
    fn write_over_dir_rejected() {
        let mut fs = two_layer(&[]);
        fs.mkdir(&Path::new("/d")).unwrap();
        assert!(matches!(
            fs.write(&Path::new("/d"), vec![1]),
            Err(FsError::WrongKind(_))
        ));
    }

    #[test]
    fn bad_parent_rejected() {
        let mut fs = two_layer(&[("/file", b"x")]);
        assert!(matches!(
            fs.write(&Path::new("/file/child"), vec![1]),
            Err(FsError::BadParent(_))
        ));
    }

    #[test]
    fn quota_enforced_and_freed() {
        let mut fs = two_layer(&[]);
        fs.set_quota(Some(100));
        assert_eq!(fs.quota(), Some(100));
        fs.write(&Path::new("/a"), vec![0; 60]).unwrap();
        // Second write would exceed the 100-byte disk.
        assert!(matches!(
            fs.write(&Path::new("/b"), vec![0; 50]),
            Err(FsError::NoSpace {
                quota: 100,
                needed: 110
            })
        ));
        // Overwriting an existing file only counts the delta.
        fs.write(&Path::new("/a"), vec![0; 90]).unwrap();
        assert!(fs.write(&Path::new("/a"), vec![0; 101]).is_err());
        // Deleting frees space.
        fs.unlink(&Path::new("/a")).unwrap();
        fs.write(&Path::new("/b"), vec![0; 100]).unwrap();
    }

    #[test]
    fn quota_ignores_lower_layers() {
        // Only the writable layer counts: the base image is shared and
        // read-only, not part of the VM's disk budget.
        let mut fs = two_layer(&[("/big", &[0u8; 1000])]);
        fs.set_quota(Some(10));
        assert!(fs.read(&Path::new("/big")).is_ok());
        assert!(fs.write(&Path::new("/small"), vec![1; 10]).is_ok());
    }

    #[test]
    fn nymix_stack_builder() {
        let mut base = Layer::new(LayerKind::Base);
        base.put_file(Path::new("/usr/bin/chromium"), vec![7; 10]);
        let mut config = Layer::new(LayerKind::Config);
        config.put_file(Path::new("/etc/rc.local"), b"anonvm".to_vec());
        let fs = nymix_stack(base, config);
        assert_eq!(fs.layer_count(), 3);
        assert!(fs.upper().is_some());
        assert_eq!(fs.read(&Path::new("/etc/rc.local")).unwrap(), b"anonvm");
    }
}
