//! Layered (union) file systems for Nymix.
//!
//! Nymix boots every VM from the *same* read-only base image (the OS
//! installed on the USB stick) and differentiates roles at runtime by
//! stacking file systems (§3.4, §4.2):
//!
//! ```text
//!   writable tmpfs layer   (RAM-backed; discarded on nym shutdown)
//!   configuration layer    (masks /etc/rc.local, network config, ...)
//!   base image             (read-only, shared, Merkle-verified)
//! ```
//!
//! Reads return the topmost version of a file; writes copy-on-write into
//! the top layer; deletions of lower-layer files leave *whiteouts*. This
//! is the OverlayFS model the prototype uses.
//!
//! Modules:
//!
//! * [`path`] — normalized absolute paths.
//! * [`layer`] — a single filesystem layer (tree of files/dirs/whiteouts).
//! * [`union`] — the layered union view with COW semantics.
//! * [`image`] — block images, the Nymix base-image builder, and the
//!   Merkle-verified read path (§3.4's proposed integrity check).
//! * [`virtfs`] — VirtFS-style host-path pass-through shares (§4.2/§4.3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod image;
pub mod layer;
pub mod path;
pub mod union;
pub mod virtfs;

pub use image::{BaseImage, BlockImage, VerifiedImage, BLOCK_SIZE};
pub use layer::{Layer, LayerKind, Node};
pub use path::Path;
pub use union::{FsError, UnionFs};
pub use virtfs::{ShareMode, VirtfsShare};
