//! A single filesystem layer.
//!
//! Layers are stacked by [`crate::union::UnionFs`]. The Nymix prototype
//! gives every VM three layers (§4.2): the shared base image, a
//! role-specific configuration image, and a RAM-backed writable image.

use std::collections::BTreeMap;

use crate::path::Path;

/// What a layer is for — controls mutability and accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerKind {
    /// The shared read-only base image (the Nymix USB OS partition).
    Base,
    /// A read-only role configuration image (AnonVM / CommVM / SaniVM).
    Config,
    /// A RAM-backed writable layer (tmpfs); counted against host RAM.
    Writable,
}

/// A node in a layer's tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A regular file with contents.
    File(Vec<u8>),
    /// A directory (children are implied by paths beneath it).
    Dir,
    /// A whiteout: masks any same-path node in lower layers.
    Whiteout,
}

impl Node {
    /// Bytes of file content (0 for dirs and whiteouts).
    pub fn size(&self) -> usize {
        match self {
            Node::File(data) => data.len(),
            _ => 0,
        }
    }
}

/// One node slot plus the layer generation at which it last changed.
#[derive(Debug, Clone)]
struct Slot {
    node: Node,
    gen: u64,
}

/// One filesystem layer: a map from normalized paths to nodes.
///
/// Every mutation bumps the layer's [`Layer::generation`] counter, and
/// each entry remembers the generation at which it last changed. The
/// Nym Manager's incremental store-nym path uses these to tell which
/// snapshot records are dirty since the last seal without serializing
/// or comparing any bytes.
///
/// # Examples
///
/// ```
/// use nymix_fs::{Layer, LayerKind, Path};
///
/// let mut l = Layer::new(LayerKind::Writable);
/// l.put_file(Path::new("/tmp/x"), b"data".to_vec());
/// assert_eq!(l.get(&Path::new("/tmp/x")).unwrap().size(), 4);
/// let sealed_at = l.generation();
/// l.put_file(Path::new("/tmp/y"), b"later".to_vec());
/// let dirty: Vec<_> = l.entries_since(sealed_at).collect();
/// assert_eq!(dirty.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Layer {
    kind: LayerKind,
    nodes: BTreeMap<Path, Slot>,
    /// Mutation counter; bumped once per mutating call.
    generation: u64,
    /// Tombstones: paths removed from this layer, by removal generation.
    /// Cleared when the path is re-inserted.
    removed: BTreeMap<Path, u64>,
}

/// Layers compare by kind and visible content; generation bookkeeping
/// (counters, tombstones) is not part of a layer's identity — a
/// restored layer equals the one that was snapshotted even though its
/// counters restarted.
impl PartialEq for Layer {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind
            && self.nodes.len() == other.nodes.len()
            && self
                .entries()
                .zip(other.entries())
                .all(|((pa, na), (pb, nb))| pa == pb && na == nb)
    }
}

impl Eq for Layer {}

impl Layer {
    /// Creates an empty layer with an implicit root directory.
    pub fn new(kind: LayerKind) -> Self {
        let mut nodes = BTreeMap::new();
        nodes.insert(
            Path::root(),
            Slot {
                node: Node::Dir,
                gen: 0,
            },
        );
        Self {
            kind,
            nodes,
            generation: 0,
            removed: BTreeMap::new(),
        }
    }

    /// The layer's kind.
    pub fn kind(&self) -> LayerKind {
        self.kind
    }

    /// Whether the union may write into this layer.
    pub fn is_writable(&self) -> bool {
        self.kind == LayerKind::Writable
    }

    /// The layer's current generation: bumped on every mutating call.
    /// Two reads returning the same value guarantee no entry changed in
    /// between, so an unchanged generation lets a snapshot skip
    /// re-serializing this layer entirely.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The generation at which the entry at `path` last changed.
    pub fn entry_generation(&self, path: &Path) -> Option<u64> {
        self.nodes.get(path).map(|s| s.gen)
    }

    /// Entries modified after generation `gen`, in path order.
    pub fn entries_since(&self, gen: u64) -> impl Iterator<Item = (&Path, &Node)> {
        self.nodes
            .iter()
            .filter(move |(_, s)| s.gen > gen)
            .map(|(p, s)| (p, &s.node))
    }

    /// Paths removed after generation `gen` (and not re-inserted since),
    /// in path order.
    pub fn removed_since(&self, gen: u64) -> impl Iterator<Item = &Path> {
        self.removed
            .iter()
            .filter(move |(_, g)| **g > gen)
            .map(|(p, _)| p)
    }

    /// Looks up a node.
    pub fn get(&self, path: &Path) -> Option<&Node> {
        self.nodes.get(path).map(|s| &s.node)
    }

    /// Inserts a file, creating parent directories within this layer.
    pub fn put_file(&mut self, path: Path, data: Vec<u8>) {
        self.insert(path, Node::File(data));
    }

    /// Inserts a directory, creating parents within this layer.
    pub fn put_dir(&mut self, path: Path) {
        self.insert(path, Node::Dir);
    }

    /// Inserts a whiteout, masking lower layers at `path`.
    pub fn put_whiteout(&mut self, path: Path) {
        self.insert(path, Node::Whiteout);
    }

    fn insert(&mut self, path: Path, node: Node) {
        self.generation += 1;
        let gen = self.generation;
        self.ensure_parents(&path, gen);
        self.removed.remove(&path);
        self.nodes.insert(path, Slot { node, gen });
    }

    /// Removes a node from this layer (not a whiteout — actually forgets
    /// the entry). Returns the removed node.
    pub fn remove(&mut self, path: &Path) -> Option<Node> {
        if path.is_root() {
            return None;
        }
        let slot = self.nodes.remove(path)?;
        self.generation += 1;
        self.removed.insert(path.clone(), self.generation);
        Some(slot.node)
    }

    /// Iterates all `(path, node)` entries in path order.
    pub fn entries(&self) -> impl Iterator<Item = (&Path, &Node)> {
        self.nodes.iter().map(|(p, s)| (p, &s.node))
    }

    /// Direct children of `dir` present in this layer.
    pub fn children_of<'a>(&'a self, dir: &'a Path) -> impl Iterator<Item = (&'a Path, &'a Node)> {
        let depth = dir.depth() + 1;
        self.nodes
            .iter()
            .filter(move |(p, _)| p.depth() == depth && p.starts_with(dir))
            .map(|(p, s)| (p, &s.node))
    }

    /// Total bytes of file content stored in this layer.
    ///
    /// For [`LayerKind::Writable`] layers this is the RAM the layer costs
    /// the host (the prototype's "writable image" lives in RAM; §4.2).
    pub fn content_bytes(&self) -> usize {
        self.nodes.values().map(|s| s.node.size()).sum()
    }

    /// Number of nodes (excluding the implicit root).
    pub fn node_count(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }

    /// Overwrites every file's bytes with zeros, then clears the tree.
    ///
    /// Models the secure-erase pass Nymix performs when a nym shuts down
    /// (§3.4: "securely erases the AnonVM's and CommVM's memory").
    pub fn secure_wipe(&mut self) {
        self.generation += 1;
        let gen = self.generation;
        for (path, slot) in std::mem::take(&mut self.nodes) {
            if let Node::File(mut data) = slot.node {
                data.fill(0);
            }
            if !path.is_root() {
                self.removed.insert(path, gen);
            }
        }
        self.nodes.insert(
            Path::root(),
            Slot {
                node: Node::Dir,
                gen,
            },
        );
    }

    fn ensure_parents(&mut self, path: &Path, gen: u64) {
        let mut cur = path.parent();
        while let Some(dir) = cur {
            if dir.is_root() {
                break;
            }
            // Never clobber an existing file/whiteout with a dir; union
            // semantics treat that as corruption we'd rather surface.
            self.removed.remove(&dir);
            self.nodes.entry(dir.clone()).or_insert(Slot {
                node: Node::Dir,
                gen,
            });
            cur = dir.parent();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_get() {
        let mut l = Layer::new(LayerKind::Writable);
        l.put_file(Path::new("/a/b/c.txt"), b"hello".to_vec());
        assert_eq!(
            l.get(&Path::new("/a/b/c.txt")),
            Some(&Node::File(b"hello".to_vec()))
        );
        // Parents auto-created.
        assert_eq!(l.get(&Path::new("/a")), Some(&Node::Dir));
        assert_eq!(l.get(&Path::new("/a/b")), Some(&Node::Dir));
        assert_eq!(l.node_count(), 3);
    }

    #[test]
    fn children_listing() {
        let mut l = Layer::new(LayerKind::Config);
        l.put_file(Path::new("/etc/rc.local"), vec![1]);
        l.put_file(Path::new("/etc/network/interfaces"), vec![2]);
        l.put_file(Path::new("/usr/bin/tor"), vec![3]);
        let etc = Path::new("/etc");
        let kids: Vec<String> = l.children_of(&etc).map(|(p, _)| p.to_string()).collect();
        assert_eq!(kids, vec!["/etc/network", "/etc/rc.local"]);
    }

    #[test]
    fn whiteout_and_remove() {
        let mut l = Layer::new(LayerKind::Writable);
        l.put_whiteout(Path::new("/etc/motd"));
        assert_eq!(l.get(&Path::new("/etc/motd")), Some(&Node::Whiteout));
        assert_eq!(l.remove(&Path::new("/etc/motd")), Some(Node::Whiteout));
        assert_eq!(l.get(&Path::new("/etc/motd")), None);
        // Root can't be removed.
        assert_eq!(l.remove(&Path::root()), None);
    }

    #[test]
    fn content_accounting() {
        let mut l = Layer::new(LayerKind::Writable);
        assert_eq!(l.content_bytes(), 0);
        l.put_file(Path::new("/x"), vec![0u8; 100]);
        l.put_file(Path::new("/y"), vec![0u8; 28]);
        l.put_dir(Path::new("/z"));
        assert_eq!(l.content_bytes(), 128);
    }

    #[test]
    fn secure_wipe_clears_everything() {
        let mut l = Layer::new(LayerKind::Writable);
        l.put_file(Path::new("/secret"), b"tyrannistan plans".to_vec());
        l.secure_wipe();
        assert_eq!(l.node_count(), 0);
        assert_eq!(l.content_bytes(), 0);
        assert_eq!(l.get(&Path::root()), Some(&Node::Dir));
    }

    #[test]
    fn generations_track_mutations() {
        let mut l = Layer::new(LayerKind::Writable);
        assert_eq!(l.generation(), 0);
        l.put_file(Path::new("/a/b"), vec![1]);
        let g1 = l.generation();
        assert!(g1 > 0);
        // Reads don't bump.
        let _ = l.get(&Path::new("/a/b"));
        let _ = l.entries().count();
        assert_eq!(l.generation(), g1);
        // Entry and its auto-created parent share the mutation's gen.
        assert_eq!(l.entry_generation(&Path::new("/a/b")), Some(g1));
        assert_eq!(l.entry_generation(&Path::new("/a")), Some(g1));
        // A later write leaves older entries untouched.
        l.put_file(Path::new("/c"), vec![2]);
        let g2 = l.generation();
        assert!(g2 > g1);
        let dirty: Vec<String> = l.entries_since(g1).map(|(p, _)| p.to_string()).collect();
        assert_eq!(dirty, vec!["/c"]);
        // Overwriting refreshes the entry's generation.
        l.put_file(Path::new("/a/b"), vec![3]);
        assert!(l.entry_generation(&Path::new("/a/b")).unwrap() > g2);
    }

    #[test]
    fn removals_leave_tombstones() {
        let mut l = Layer::new(LayerKind::Writable);
        l.put_file(Path::new("/x"), vec![1]);
        l.put_file(Path::new("/y"), vec![2]);
        let sealed = l.generation();
        l.remove(&Path::new("/x"));
        let gone: Vec<String> = l.removed_since(sealed).map(Path::to_string).collect();
        assert_eq!(gone, vec!["/x"]);
        // Nothing removed before the seal point.
        assert_eq!(l.removed_since(l.generation()).count(), 0);
        // Re-inserting clears the tombstone.
        l.put_file(Path::new("/x"), vec![3]);
        assert_eq!(l.removed_since(sealed).count(), 0);
    }

    #[test]
    fn wipe_tombstones_everything() {
        let mut l = Layer::new(LayerKind::Writable);
        l.put_file(Path::new("/a/b"), vec![1]);
        let sealed = l.generation();
        l.secure_wipe();
        let gone: Vec<String> = l.removed_since(sealed).map(Path::to_string).collect();
        assert_eq!(gone, vec!["/a", "/a/b"]);
    }

    #[test]
    fn equality_ignores_generation_bookkeeping() {
        let mut a = Layer::new(LayerKind::Writable);
        a.put_file(Path::new("/f"), vec![1]);
        a.put_file(Path::new("/g"), vec![2]);
        a.remove(&Path::new("/g"));
        // Same content reached by a different mutation history.
        let mut b = Layer::new(LayerKind::Writable);
        b.put_file(Path::new("/f"), vec![1]);
        assert_eq!(a, b);
        b.put_file(Path::new("/f"), vec![9]);
        assert_ne!(a, b);
        assert_ne!(Layer::new(LayerKind::Writable), Layer::new(LayerKind::Base));
    }

    #[test]
    fn overwrite_replaces_content() {
        let mut l = Layer::new(LayerKind::Writable);
        l.put_file(Path::new("/f"), vec![1; 10]);
        l.put_file(Path::new("/f"), vec![2; 3]);
        assert_eq!(l.content_bytes(), 3);
    }
}
