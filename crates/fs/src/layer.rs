//! A single filesystem layer.
//!
//! Layers are stacked by [`crate::union::UnionFs`]. The Nymix prototype
//! gives every VM three layers (§4.2): the shared base image, a
//! role-specific configuration image, and a RAM-backed writable image.

use std::collections::BTreeMap;

use crate::path::Path;

/// What a layer is for — controls mutability and accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerKind {
    /// The shared read-only base image (the Nymix USB OS partition).
    Base,
    /// A read-only role configuration image (AnonVM / CommVM / SaniVM).
    Config,
    /// A RAM-backed writable layer (tmpfs); counted against host RAM.
    Writable,
}

/// A node in a layer's tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A regular file with contents.
    File(Vec<u8>),
    /// A directory (children are implied by paths beneath it).
    Dir,
    /// A whiteout: masks any same-path node in lower layers.
    Whiteout,
}

impl Node {
    /// Bytes of file content (0 for dirs and whiteouts).
    pub fn size(&self) -> usize {
        match self {
            Node::File(data) => data.len(),
            _ => 0,
        }
    }
}

/// One filesystem layer: a map from normalized paths to nodes.
///
/// # Examples
///
/// ```
/// use nymix_fs::{Layer, LayerKind, Path};
///
/// let mut l = Layer::new(LayerKind::Writable);
/// l.put_file(Path::new("/tmp/x"), b"data".to_vec());
/// assert_eq!(l.get(&Path::new("/tmp/x")).unwrap().size(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct Layer {
    kind: LayerKind,
    nodes: BTreeMap<Path, Node>,
}

impl Layer {
    /// Creates an empty layer with an implicit root directory.
    pub fn new(kind: LayerKind) -> Self {
        let mut nodes = BTreeMap::new();
        nodes.insert(Path::root(), Node::Dir);
        Self { kind, nodes }
    }

    /// The layer's kind.
    pub fn kind(&self) -> LayerKind {
        self.kind
    }

    /// Whether the union may write into this layer.
    pub fn is_writable(&self) -> bool {
        self.kind == LayerKind::Writable
    }

    /// Looks up a node.
    pub fn get(&self, path: &Path) -> Option<&Node> {
        self.nodes.get(path)
    }

    /// Inserts a file, creating parent directories within this layer.
    pub fn put_file(&mut self, path: Path, data: Vec<u8>) {
        self.ensure_parents(&path);
        self.nodes.insert(path, Node::File(data));
    }

    /// Inserts a directory, creating parents within this layer.
    pub fn put_dir(&mut self, path: Path) {
        self.ensure_parents(&path);
        self.nodes.insert(path, Node::Dir);
    }

    /// Inserts a whiteout, masking lower layers at `path`.
    pub fn put_whiteout(&mut self, path: Path) {
        self.ensure_parents(&path);
        self.nodes.insert(path, Node::Whiteout);
    }

    /// Removes a node from this layer (not a whiteout — actually forgets
    /// the entry). Returns the removed node.
    pub fn remove(&mut self, path: &Path) -> Option<Node> {
        if path.is_root() {
            return None;
        }
        self.nodes.remove(path)
    }

    /// Iterates all `(path, node)` entries in path order.
    pub fn entries(&self) -> impl Iterator<Item = (&Path, &Node)> {
        self.nodes.iter()
    }

    /// Direct children of `dir` present in this layer.
    pub fn children_of<'a>(&'a self, dir: &'a Path) -> impl Iterator<Item = (&'a Path, &'a Node)> {
        let depth = dir.depth() + 1;
        self.nodes
            .iter()
            .filter(move |(p, _)| p.depth() == depth && p.starts_with(dir))
    }

    /// Total bytes of file content stored in this layer.
    ///
    /// For [`LayerKind::Writable`] layers this is the RAM the layer costs
    /// the host (the prototype's "writable image" lives in RAM; §4.2).
    pub fn content_bytes(&self) -> usize {
        self.nodes.values().map(Node::size).sum()
    }

    /// Number of nodes (excluding the implicit root).
    pub fn node_count(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }

    /// Overwrites every file's bytes with zeros, then clears the tree.
    ///
    /// Models the secure-erase pass Nymix performs when a nym shuts down
    /// (§3.4: "securely erases the AnonVM's and CommVM's memory").
    pub fn secure_wipe(&mut self) {
        for node in self.nodes.values_mut() {
            if let Node::File(data) = node {
                data.fill(0);
            }
        }
        self.nodes.clear();
        self.nodes.insert(Path::root(), Node::Dir);
    }

    fn ensure_parents(&mut self, path: &Path) {
        let mut cur = path.parent();
        while let Some(dir) = cur {
            if dir.is_root() {
                break;
            }
            // Never clobber an existing file/whiteout with a dir; union
            // semantics treat that as corruption we'd rather surface.
            self.nodes.entry(dir.clone()).or_insert(Node::Dir);
            cur = dir.parent();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_get() {
        let mut l = Layer::new(LayerKind::Writable);
        l.put_file(Path::new("/a/b/c.txt"), b"hello".to_vec());
        assert_eq!(
            l.get(&Path::new("/a/b/c.txt")),
            Some(&Node::File(b"hello".to_vec()))
        );
        // Parents auto-created.
        assert_eq!(l.get(&Path::new("/a")), Some(&Node::Dir));
        assert_eq!(l.get(&Path::new("/a/b")), Some(&Node::Dir));
        assert_eq!(l.node_count(), 3);
    }

    #[test]
    fn children_listing() {
        let mut l = Layer::new(LayerKind::Config);
        l.put_file(Path::new("/etc/rc.local"), vec![1]);
        l.put_file(Path::new("/etc/network/interfaces"), vec![2]);
        l.put_file(Path::new("/usr/bin/tor"), vec![3]);
        let etc = Path::new("/etc");
        let kids: Vec<String> = l.children_of(&etc).map(|(p, _)| p.to_string()).collect();
        assert_eq!(kids, vec!["/etc/network", "/etc/rc.local"]);
    }

    #[test]
    fn whiteout_and_remove() {
        let mut l = Layer::new(LayerKind::Writable);
        l.put_whiteout(Path::new("/etc/motd"));
        assert_eq!(l.get(&Path::new("/etc/motd")), Some(&Node::Whiteout));
        assert_eq!(l.remove(&Path::new("/etc/motd")), Some(Node::Whiteout));
        assert_eq!(l.get(&Path::new("/etc/motd")), None);
        // Root can't be removed.
        assert_eq!(l.remove(&Path::root()), None);
    }

    #[test]
    fn content_accounting() {
        let mut l = Layer::new(LayerKind::Writable);
        assert_eq!(l.content_bytes(), 0);
        l.put_file(Path::new("/x"), vec![0u8; 100]);
        l.put_file(Path::new("/y"), vec![0u8; 28]);
        l.put_dir(Path::new("/z"));
        assert_eq!(l.content_bytes(), 128);
    }

    #[test]
    fn secure_wipe_clears_everything() {
        let mut l = Layer::new(LayerKind::Writable);
        l.put_file(Path::new("/secret"), b"tyrannistan plans".to_vec());
        l.secure_wipe();
        assert_eq!(l.node_count(), 0);
        assert_eq!(l.content_bytes(), 0);
        assert_eq!(l.get(&Path::root()), Some(&Node::Dir));
    }

    #[test]
    fn overwrite_replaces_content() {
        let mut l = Layer::new(LayerKind::Writable);
        l.put_file(Path::new("/f"), vec![1; 10]);
        l.put_file(Path::new("/f"), vec![2; 3]);
        assert_eq!(l.content_bytes(), 3);
    }
}
