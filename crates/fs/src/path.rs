//! Normalized absolute paths for the simulated file systems.

use core::fmt;

/// An absolute, normalized path inside a simulated filesystem.
///
/// Paths are stored as their components; `.` and empty components are
/// dropped and `..` is resolved at construction, so two equal paths are
/// always structurally equal.
///
/// # Examples
///
/// ```
/// use nymix_fs::Path;
///
/// let p = Path::new("/etc//rc.local");
/// assert_eq!(p.to_string(), "/etc/rc.local");
/// assert_eq!(p.parent().unwrap().to_string(), "/etc");
/// assert!(Path::new("/etc/rc.local").starts_with(&Path::new("/etc")));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Path {
    components: Vec<String>,
}

impl Path {
    /// The filesystem root, `/`.
    pub fn root() -> Self {
        Path {
            components: Vec::new(),
        }
    }

    /// Parses and normalizes a path string. Relative paths are treated
    /// as rooted (the simulated VMs have no working directory concept).
    pub fn new(raw: &str) -> Self {
        let mut components: Vec<String> = Vec::new();
        for part in raw.split('/') {
            match part {
                "" | "." => {}
                ".." => {
                    components.pop();
                }
                other => components.push(other.to_string()),
            }
        }
        Path { components }
    }

    /// Path components, in order from the root.
    pub fn components(&self) -> &[String] {
        &self.components
    }

    /// Whether this is the root path.
    pub fn is_root(&self) -> bool {
        self.components.is_empty()
    }

    /// The final component, if any.
    pub fn file_name(&self) -> Option<&str> {
        self.components.last().map(|s| s.as_str())
    }

    /// The file extension (text after the final `.` of the final
    /// component), if any.
    pub fn extension(&self) -> Option<&str> {
        let name = self.file_name()?;
        let (stem, ext) = name.rsplit_once('.')?;
        if stem.is_empty() {
            None // Dotfiles like `.bashrc` have no extension.
        } else {
            Some(ext)
        }
    }

    /// The containing directory, or `None` for the root.
    pub fn parent(&self) -> Option<Path> {
        if self.components.is_empty() {
            None
        } else {
            Some(Path {
                components: self.components[..self.components.len() - 1].to_vec(),
            })
        }
    }

    /// Appends a single component or relative subpath.
    pub fn join(&self, sub: &str) -> Path {
        let mut components = self.components.clone();
        for part in sub.split('/') {
            match part {
                "" | "." => {}
                ".." => {
                    components.pop();
                }
                other => components.push(other.to_string()),
            }
        }
        Path { components }
    }

    /// Whether `prefix` is an ancestor of (or equal to) this path.
    pub fn starts_with(&self, prefix: &Path) -> bool {
        self.components.len() >= prefix.components.len()
            && self.components[..prefix.components.len()] == prefix.components[..]
    }

    /// Re-roots this path from `prefix` onto `new_prefix`.
    ///
    /// Returns `None` if this path is not under `prefix`.
    pub fn rebase(&self, prefix: &Path, new_prefix: &Path) -> Option<Path> {
        if !self.starts_with(prefix) {
            return None;
        }
        let mut components = new_prefix.components.clone();
        components.extend_from_slice(&self.components[prefix.components.len()..]);
        Some(Path { components })
    }

    /// Number of components.
    pub fn depth(&self) -> usize {
        self.components.len()
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.components.is_empty() {
            write!(f, "/")
        } else {
            for c in &self.components {
                write!(f, "/{c}")?;
            }
            Ok(())
        }
    }
}

impl From<&str> for Path {
    fn from(s: &str) -> Self {
        Path::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Path::new("/a//b/./c").to_string(), "/a/b/c");
        assert_eq!(Path::new("/a/b/../c").to_string(), "/a/c");
        assert_eq!(Path::new("/../..").to_string(), "/");
        assert_eq!(Path::new("relative/x").to_string(), "/relative/x");
    }

    #[test]
    fn root_properties() {
        let r = Path::root();
        assert!(r.is_root());
        assert_eq!(r.to_string(), "/");
        assert_eq!(r.parent(), None);
        assert_eq!(r.file_name(), None);
        assert_eq!(r.depth(), 0);
    }

    #[test]
    fn join_and_parent() {
        let etc = Path::new("/etc");
        let rc = etc.join("rc.local");
        assert_eq!(rc.to_string(), "/etc/rc.local");
        assert_eq!(rc.parent(), Some(etc.clone()));
        assert_eq!(etc.join("a/b").depth(), 3);
        assert_eq!(etc.join("../usr").to_string(), "/usr");
    }

    #[test]
    fn prefix_and_rebase() {
        let p = Path::new("/home/user/photos/img.jpg");
        let prefix = Path::new("/home/user");
        assert!(p.starts_with(&prefix));
        assert!(!p.starts_with(&Path::new("/home/users")));
        let rebased = p.rebase(&prefix, &Path::new("/mnt/sani")).unwrap();
        assert_eq!(rebased.to_string(), "/mnt/sani/photos/img.jpg");
        assert!(p.rebase(&Path::new("/var"), &Path::root()).is_none());
    }

    #[test]
    fn extension() {
        assert_eq!(Path::new("/a/img.jpg").extension(), Some("jpg"));
        assert_eq!(Path::new("/a/archive.tar.gz").extension(), Some("gz"));
        assert_eq!(Path::new("/a/.bashrc").extension(), None);
        assert_eq!(Path::new("/a/README").extension(), None);
    }
}
