//! VirtFS-style shared folders.
//!
//! The prototype uses KVM's VirtFS to pass host paths into guests
//! (§4.2): configuration file systems are attached to VMs as VirtFS
//! paths, and the sanitized-file-transfer pipeline moves files
//! SaniVM → hypervisor → AnonVM through chained shared folders (§4.3).
//!
//! A [`VirtfsShare`] maps a subtree of a source filesystem into a guest
//! mount point with an access mode. Shares are *copy-through*: the
//! transfer APIs copy file bytes between [`UnionFs`] instances, never
//! aliasing them — VMs must not share mutable state.

use crate::path::Path;
use crate::union::{FsError, UnionFs};

/// Access mode for a share.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShareMode {
    /// Guest may only read through the share.
    ReadOnly,
    /// Guest may read and files may be pushed in.
    ReadWrite,
}

/// A mapping from a host-side subtree to a guest mount point.
#[derive(Debug, Clone)]
pub struct VirtfsShare {
    /// Subtree on the source (host) filesystem.
    pub host_root: Path,
    /// Mount point inside the guest.
    pub guest_root: Path,
    /// Access mode.
    pub mode: ShareMode,
}

impl VirtfsShare {
    /// Creates a share.
    pub fn new(host_root: Path, guest_root: Path, mode: ShareMode) -> Self {
        Self {
            host_root,
            guest_root,
            mode,
        }
    }

    /// Copies one file from `host` into `guest` through this share.
    ///
    /// `host_path` must lie under [`Self::host_root`]; the file lands at
    /// the corresponding path under [`Self::guest_root`].
    ///
    /// # Errors
    ///
    /// Fails if the path is outside the share, missing on the host, or
    /// the guest filesystem rejects the write.
    pub fn copy_in(
        &self,
        host: &UnionFs,
        guest: &mut UnionFs,
        host_path: &Path,
    ) -> Result<Path, FsError> {
        let guest_path = host_path
            .rebase(&self.host_root, &self.guest_root)
            .ok_or_else(|| FsError::NotFound(host_path.to_string()))?;
        let data = host.read(host_path)?.to_vec();
        if let Some(parent) = guest_path.parent() {
            guest.mkdir(&parent)?;
        }
        guest.write(&guest_path, data)?;
        Ok(guest_path)
    }

    /// Copies one file out of `guest` back to `host`.
    ///
    /// Only permitted for [`ShareMode::ReadWrite`] shares.
    pub fn copy_out(
        &self,
        guest: &UnionFs,
        host: &mut UnionFs,
        guest_path: &Path,
    ) -> Result<Path, FsError> {
        if self.mode == ShareMode::ReadOnly {
            return Err(FsError::ReadOnly);
        }
        let host_path = guest_path
            .rebase(&self.guest_root, &self.host_root)
            .ok_or_else(|| FsError::NotFound(guest_path.to_string()))?;
        let data = guest.read(guest_path)?.to_vec();
        if let Some(parent) = host_path.parent() {
            host.mkdir(&parent)?;
        }
        host.write(&host_path, data)?;
        Ok(host_path)
    }

    /// Lists host files visible through the share.
    pub fn visible_files(&self, host: &UnionFs) -> Vec<Path> {
        host.walk_files(&self.host_root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Layer, LayerKind};

    fn fs_with(files: &[(&str, &[u8])]) -> UnionFs {
        let mut base = Layer::new(LayerKind::Base);
        for (p, d) in files {
            base.put_file(Path::new(p), d.to_vec());
        }
        UnionFs::new(vec![base, Layer::new(LayerKind::Writable)]).unwrap()
    }

    #[test]
    fn copy_in_rebases_path() {
        let host = fs_with(&[("/outbox/nym1/photo.jpg", b"jpegdata")]);
        let mut guest = fs_with(&[]);
        let share = VirtfsShare::new(
            Path::new("/outbox/nym1"),
            Path::new("/media/incoming"),
            ShareMode::ReadOnly,
        );
        let landed = share
            .copy_in(&host, &mut guest, &Path::new("/outbox/nym1/photo.jpg"))
            .unwrap();
        assert_eq!(landed.to_string(), "/media/incoming/photo.jpg");
        assert_eq!(guest.read(&landed).unwrap(), b"jpegdata");
    }

    #[test]
    fn copy_in_rejects_paths_outside_share() {
        let host = fs_with(&[("/etc/shadow", b"secret")]);
        let mut guest = fs_with(&[]);
        let share = VirtfsShare::new(
            Path::new("/outbox"),
            Path::new("/media"),
            ShareMode::ReadOnly,
        );
        assert!(share
            .copy_in(&host, &mut guest, &Path::new("/etc/shadow"))
            .is_err());
    }

    #[test]
    fn copy_out_requires_rw() {
        let guest = fs_with(&[("/media/out/f", b"x")]);
        let mut host = fs_with(&[]);
        let ro = VirtfsShare::new(
            Path::new("/drop"),
            Path::new("/media/out"),
            ShareMode::ReadOnly,
        );
        assert_eq!(
            ro.copy_out(&guest, &mut host, &Path::new("/media/out/f")),
            Err(FsError::ReadOnly)
        );
        let rw = VirtfsShare::new(
            Path::new("/drop"),
            Path::new("/media/out"),
            ShareMode::ReadWrite,
        );
        let landed = rw
            .copy_out(&guest, &mut host, &Path::new("/media/out/f"))
            .unwrap();
        assert_eq!(landed.to_string(), "/drop/f");
        assert_eq!(host.read(&landed).unwrap(), b"x");
    }

    #[test]
    fn copies_are_independent() {
        let host = fs_with(&[("/outbox/f", b"orig")]);
        let mut guest = fs_with(&[]);
        let share = VirtfsShare::new(Path::new("/outbox"), Path::new("/in"), ShareMode::ReadOnly);
        share
            .copy_in(&host, &mut guest, &Path::new("/outbox/f"))
            .unwrap();
        guest
            .write(&Path::new("/in/f"), b"mutated".to_vec())
            .unwrap();
        // Host copy unaffected: no aliasing between VMs.
        assert_eq!(host.read(&Path::new("/outbox/f")).unwrap(), b"orig");
    }

    #[test]
    fn visible_files_lists_subtree_only() {
        let host = fs_with(&[
            ("/outbox/a", b"1"),
            ("/outbox/sub/b", b"2"),
            ("/etc/c", b"3"),
        ]);
        let share = VirtfsShare::new(Path::new("/outbox"), Path::new("/in"), ShareMode::ReadOnly);
        let names: Vec<String> = share
            .visible_files(&host)
            .iter()
            .map(|p| p.to_string())
            .collect();
        assert_eq!(names, vec!["/outbox/a", "/outbox/sub/b"]);
    }
}
