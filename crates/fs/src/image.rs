//! Disk block images and the Merkle-verified base image.
//!
//! §3.4: Nymix "must ensure that the host OS partition is always mounted
//! read-only and never modified for any reason" — any change, however
//! minute, would manifest in every subsequently created AnonVM and become
//! a tracking vector. The paper proposes (but had not implemented)
//! checking "all disk blocks loaded from the host OS partition into an
//! AnonVM or CommVM against a well-known Merkle tree as they are
//! accessed", shutting down safely on mismatch. [`VerifiedImage`]
//! implements that read path.

use std::collections::BTreeMap;

use nymix_crypto::MerkleTree;

use crate::layer::{Layer, LayerKind};
use crate::path::Path;

/// Block size of simulated disk images (4 KiB, like the prototype's
/// qcow2-backed virtual disks).
pub const BLOCK_SIZE: usize = 4096;

/// A raw block device image.
///
/// # Examples
///
/// ```
/// use nymix_fs::{BlockImage, BLOCK_SIZE};
///
/// let mut img = BlockImage::new(4);
/// img.write_block(1, &[0xab; BLOCK_SIZE]).unwrap();
/// assert_eq!(img.read_block(1).unwrap()[0], 0xab);
/// ```
#[derive(Debug, Clone)]
pub struct BlockImage {
    blocks: Vec<Vec<u8>>,
}

impl BlockImage {
    /// Creates a zero-filled image of `block_count` blocks.
    pub fn new(block_count: usize) -> Self {
        Self {
            blocks: vec![vec![0u8; BLOCK_SIZE]; block_count],
        }
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Total size in bytes.
    pub fn byte_len(&self) -> usize {
        self.blocks.len() * BLOCK_SIZE
    }

    /// Reads block `index`.
    pub fn read_block(&self, index: usize) -> Option<&[u8]> {
        self.blocks.get(index).map(|b| b.as_slice())
    }

    /// Overwrites block `index`.
    pub fn write_block(&mut self, index: usize, data: &[u8; BLOCK_SIZE]) -> Option<()> {
        let block = self.blocks.get_mut(index)?;
        block.copy_from_slice(data);
        Some(())
    }

    /// Flips one byte in a block — used by tests and the red-team
    /// tamper-detection experiments.
    pub fn corrupt(&mut self, index: usize, offset: usize, xor: u8) -> Option<()> {
        let block = self.blocks.get_mut(index)?;
        let byte = block.get_mut(offset)?;
        *byte ^= xor;
        Some(())
    }

    /// Builds a Merkle tree over all blocks.
    pub fn merkle(&self) -> MerkleTree {
        MerkleTree::build(self.blocks.iter().map(|b| b.as_slice()))
    }
}

/// Error raised when a verified read detects tampering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TamperDetected {
    /// Index of the offending block.
    pub block: usize,
}

impl core::fmt::Display for TamperDetected {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "host OS partition block {} failed Merkle verification; shutting down",
            self.block
        )
    }
}

impl std::error::Error for TamperDetected {}

/// A block image whose reads are checked against a pinned Merkle root.
///
/// The root would ship inside the (signed) Nymix distribution; a block
/// modified by another OS while the USB stick was plugged in fails
/// verification on first access and the VM refuses to continue.
#[derive(Debug, Clone)]
pub struct VerifiedImage {
    image: BlockImage,
    root: [u8; 32],
    block_count: usize,
    proofs: Vec<Vec<([u8; 32], bool)>>,
    verified_reads: u64,
}

impl VerifiedImage {
    /// Pins `image` to its current content.
    pub fn seal(image: BlockImage) -> Self {
        let tree = image.merkle();
        let proofs = (0..image.block_count())
            .map(|i| tree.prove(i).expect("index in range"))
            .collect();
        Self {
            root: tree.root(),
            block_count: image.block_count(),
            image,
            proofs,
            verified_reads: 0,
        }
    }

    /// The pinned root hash (what the distribution would publish).
    pub fn root(&self) -> [u8; 32] {
        self.root
    }

    /// Number of committed blocks.
    pub fn block_count(&self) -> usize {
        self.block_count
    }

    /// Number of reads that have passed verification.
    pub fn verified_reads(&self) -> u64 {
        self.verified_reads
    }

    /// Reads block `index`, verifying it against the pinned root.
    ///
    /// # Errors
    ///
    /// Returns [`TamperDetected`] if the block no longer matches; per
    /// §3.4 the caller must shut the VM down rather than continue.
    pub fn read_block(&mut self, index: usize) -> Result<&[u8], TamperDetected> {
        let block = self
            .image
            .read_block(index)
            .ok_or(TamperDetected { block: index })?;
        let proof = &self.proofs[index];
        if MerkleTree::verify(&self.root, index, block, proof, self.block_count) {
            self.verified_reads += 1;
            Ok(self.image.read_block(index).expect("checked above"))
        } else {
            Err(TamperDetected { block: index })
        }
    }

    /// Mutable access to the underlying image — only for tamper tests.
    pub fn raw_image_mut(&mut self) -> &mut BlockImage {
        &mut self.image
    }
}

/// The Nymix base OS image: a deterministic Ubuntu-14.04-like file tree
/// plus its serialized block representation.
///
/// The same image serves as the hypervisor root, every AnonVM, every
/// CommVM, and the SaniVM (§3.4: "Nymix uses the OS image installed on
/// the Nymix USB as the host OS ... as well as the basic VM image for
/// all AnonVMs and CommVMs"). Sharing one image is what makes KSM
/// effective (§4.2).
#[derive(Debug, Clone)]
pub struct BaseImage {
    files: BTreeMap<Path, Vec<u8>>,
}

impl Default for BaseImage {
    fn default() -> Self {
        Self::ubuntu_like()
    }
}

impl BaseImage {
    /// Builds the default deterministic base tree.
    ///
    /// Contents are synthetic but structured: system binaries, shared
    /// libraries, the Chromium browser, Tor/Dissent binaries, and config
    /// defaults. File bytes are deterministic functions of the path so
    /// every Nymix instance ships the identical image.
    pub fn ubuntu_like() -> Self {
        let mut files = BTreeMap::new();
        // Sizes are scaled ~1:20 from the real distribution so that the
        // in-memory image stays test-friendly; the VMM's page/KSM model
        // (which drives the memory figures) accounts VM RAM separately.
        let spec: &[(&str, usize)] = &[
            ("/bin/bash", 50_000),
            ("/bin/ls", 6_000),
            ("/bin/mount", 2_000),
            ("/sbin/init", 12_500),
            ("/sbin/iptables", 30_000),
            ("/lib/libc.so.6", 90_000),
            ("/lib/libssl.so", 21_500),
            ("/lib/libcrypto.so", 100_000),
            ("/usr/bin/chromium", 4_750_000),
            ("/usr/bin/tor", 130_000),
            ("/usr/bin/dissent", 210_000),
            ("/usr/bin/sweet", 45_000),
            ("/usr/bin/mat", 17_500),
            ("/usr/bin/qemu-system-x86_64", 550_000),
            ("/usr/lib/xorg/Xorg", 115_000),
            ("/usr/share/fonts/dejavu.ttf", 35_000),
            ("/etc/rc.local", 300),
            ("/etc/hostname", 6),
            ("/etc/hosts", 180),
            ("/etc/resolv.conf", 60),
            ("/etc/network/interfaces", 240),
            ("/etc/tor/torrc", 1_400),
            ("/etc/dissent/dissent.conf", 900),
            ("/etc/X11/xorg.conf", 2_000),
        ];
        for (path, size) in spec {
            files.insert(Path::new(path), Self::deterministic_bytes(path, *size));
        }
        Self { files }
    }

    /// A tiny base image for fast tests.
    pub fn minimal() -> Self {
        let mut files = BTreeMap::new();
        for (path, size) in [("/bin/sh", 4096usize), ("/etc/rc.local", 64)] {
            files.insert(Path::new(path), Self::deterministic_bytes(path, size));
        }
        Self { files }
    }

    fn deterministic_bytes(path: &str, size: usize) -> Vec<u8> {
        // Keyed keystream: cheap, deterministic, and incompressible —
        // a reasonable stand-in for binary content. Config files get
        // text-ish content instead.
        if size <= 4096 {
            let line = format!("# nymix base config: {path}\n");
            return line.as_bytes().iter().copied().cycle().take(size).collect();
        }
        let digest = nymix_crypto::sha256(path.as_bytes());
        let mut key = [0u8; 32];
        key.copy_from_slice(&digest);
        let nonce = [0u8; 12];
        let mut content = vec![0u8; size];
        nymix_crypto::ChaCha20::new(&key, &nonce, 0).xor_into(&mut content);
        content
    }

    /// Files in the image.
    pub fn files(&self) -> impl Iterator<Item = (&Path, &Vec<u8>)> {
        self.files.iter()
    }

    /// Total content bytes.
    pub fn total_bytes(&self) -> usize {
        self.files.values().map(Vec::len).sum()
    }

    /// Materializes the image as a read-only [`Layer`].
    pub fn to_layer(&self) -> Layer {
        let mut layer = Layer::new(LayerKind::Base);
        for (path, data) in &self.files {
            layer.put_file(path.clone(), data.clone());
        }
        layer
    }

    /// Serializes the tree into a block image (simple concatenated
    /// format: for each file, a length-prefixed path and contents),
    /// padded to whole blocks.
    pub fn to_block_image(&self) -> BlockImage {
        let mut bytes = Vec::new();
        for (path, data) in &self.files {
            let p = path.to_string();
            bytes.extend_from_slice(&(p.len() as u32).to_le_bytes());
            bytes.extend_from_slice(p.as_bytes());
            bytes.extend_from_slice(&(data.len() as u64).to_le_bytes());
            bytes.extend_from_slice(data);
        }
        let block_count = bytes.len().div_ceil(BLOCK_SIZE).max(1);
        let mut image = BlockImage::new(block_count);
        for (i, chunk) in bytes.chunks(BLOCK_SIZE).enumerate() {
            let mut block = [0u8; BLOCK_SIZE];
            block[..chunk.len()].copy_from_slice(chunk);
            image.write_block(i, &block).expect("index in range");
        }
        image
    }

    /// Convenience: sealed, verification-checked block image.
    pub fn to_verified_image(&self) -> VerifiedImage {
        VerifiedImage::seal(self.to_block_image())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_image_rw() {
        let mut img = BlockImage::new(3);
        assert_eq!(img.block_count(), 3);
        assert_eq!(img.byte_len(), 3 * BLOCK_SIZE);
        img.write_block(2, &[9u8; BLOCK_SIZE]).unwrap();
        assert_eq!(img.read_block(2).unwrap()[100], 9);
        assert!(img.read_block(3).is_none());
        assert!(img.write_block(3, &[0u8; BLOCK_SIZE]).is_none());
    }

    #[test]
    fn verified_reads_pass_when_untouched() {
        let base = BaseImage::minimal();
        let mut v = base.to_verified_image();
        for i in 0..v.image.block_count() {
            assert!(v.read_block(i).is_ok(), "block {i}");
        }
        assert_eq!(v.verified_reads(), v.image.block_count() as u64);
    }

    #[test]
    fn single_byte_corruption_detected() {
        let base = BaseImage::minimal();
        let mut v = base.to_verified_image();
        v.raw_image_mut().corrupt(0, 17, 0x01).unwrap();
        assert_eq!(v.read_block(0), Err(TamperDetected { block: 0 }));
        // Other blocks still verify.
        if v.raw_image_mut().block_count() > 1 {
            assert!(v.read_block(1).is_ok());
        }
    }

    #[test]
    fn base_image_is_deterministic() {
        let a = BaseImage::ubuntu_like();
        let b = BaseImage::ubuntu_like();
        assert_eq!(
            a.to_block_image().merkle().root(),
            b.to_block_image().merkle().root()
        );
    }

    #[test]
    fn base_image_has_expected_shape() {
        let img = BaseImage::ubuntu_like();
        let layer = img.to_layer();
        assert!(layer.get(&Path::new("/usr/bin/chromium")).is_some());
        assert!(layer.get(&Path::new("/usr/bin/tor")).is_some());
        assert!(layer.get(&Path::new("/etc/rc.local")).is_some());
        // Chromium dominates; total over 5 MB (scaled 1:20).
        assert!(img.total_bytes() > 5_000_000);
    }

    #[test]
    fn minimal_image_small() {
        assert!(BaseImage::minimal().total_bytes() < 10_000);
    }

    #[test]
    fn config_files_are_textual() {
        let img = BaseImage::ubuntu_like();
        let layer = img.to_layer();
        if let Some(crate::layer::Node::File(data)) = layer.get(&Path::new("/etc/hosts")) {
            assert!(data.starts_with(b"# nymix base config"));
        } else {
            panic!("missing /etc/hosts");
        }
    }
}
