//! Property-based tests for the union filesystem invariants.

use nymix_fs::{Layer, LayerKind, Path, UnionFs};
use proptest::prelude::*;

/// Random small path from a constrained alphabet so collisions happen.
fn arb_path() -> impl Strategy<Value = Path> {
    proptest::collection::vec(prop_oneof!["a", "b", "c", "d"], 1..4)
        .prop_map(|parts: Vec<String>| Path::new(&format!("/{}", parts.join("/"))))
}

#[derive(Debug, Clone)]
enum Op {
    Write(Path, Vec<u8>),
    Unlink(Path),
    Read(Path),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (arb_path(), proptest::collection::vec(any::<u8>(), 0..16))
            .prop_map(|(p, d)| Op::Write(p, d)),
        arb_path().prop_map(Op::Unlink),
        arb_path().prop_map(Op::Read),
    ]
}

proptest! {
    /// The union behaves like a flat map (the model), regardless of what
    /// sits in lower layers — and lower layers never change.
    #[test]
    fn union_matches_flat_model(
        base_files in proptest::collection::btree_map(arb_path(), proptest::collection::vec(any::<u8>(), 0..8), 0..6),
        ops in proptest::collection::vec(arb_op(), 0..40),
    ) {
        // Keep only base files whose ancestors are not themselves files:
        // a real filesystem image cannot contain a file under a file.
        let keys: Vec<Path> = base_files.keys().cloned().collect();
        let base_files: std::collections::BTreeMap<Path, Vec<u8>> = base_files
            .into_iter()
            .filter(|(p, _)| {
                let mut anc = p.parent();
                while let Some(a) = anc {
                    if a.is_root() { break; }
                    if keys.contains(&a) {
                        return false;
                    }
                    anc = a.parent();
                }
                true
            })
            .collect();
        let mut base = Layer::new(LayerKind::Base);
        let mut model: std::collections::BTreeMap<Path, Vec<u8>> = Default::default();
        for (p, d) in &base_files {
            base.put_file(p.clone(), d.clone());
            model.insert(p.clone(), d.clone());
        }

        let baseline = base.clone();
        let mut fs = UnionFs::new(vec![base, Layer::new(LayerKind::Writable)]).unwrap();

        for op in ops {
            match op {
                Op::Write(p, d) => {
                    let ok = fs.write(&p, d.clone()).is_ok();
                    // Model: write succeeds unless a model ancestor-file or
                    // dir conflict exists; mirror by trying and comparing.
                    if ok {
                        model.insert(p, d);
                    }
                }
                Op::Unlink(p) => {
                    let ok = fs.unlink(&p).is_ok();
                    if ok {
                        prop_assert!(model.remove(&p).is_some());
                    } else {
                        // Model may only contain it if union failed for
                        // kind reasons; files always unlink fine.
                        prop_assert!(!model.contains_key(&p));
                    }
                }
                Op::Read(p) => {
                    match (fs.read(&p), model.get(&p)) {
                        (Ok(got), Some(want)) => prop_assert_eq!(&got, want),
                        (Err(_), None) => {}
                        (Ok(_), None) => prop_assert!(false, "read hit missing model entry"),
                        (Err(e), Some(_)) => prop_assert!(false, "model has entry union lost: {e}"),
                    }
                }
            }
        }

        // Invariant: the base layer is bit-identical after any op mix.
        for (p, n) in baseline.entries() {
            prop_assert_eq!(fs.layer(0).get(p), Some(n));
        }
    }

    /// Save/restore of the upper layer preserves the visible state.
    #[test]
    fn upper_layer_roundtrip(
        ops in proptest::collection::vec(arb_op(), 0..30),
    ) {
        let mut base = Layer::new(LayerKind::Base);
        base.put_file(Path::new("/a/seed"), vec![1, 2, 3]);
        let mut fs = UnionFs::new(vec![base, Layer::new(LayerKind::Writable)]).unwrap();
        for op in ops {
            match op {
                Op::Write(p, d) => { let _ = fs.write(&p, d); }
                Op::Unlink(p) => { let _ = fs.unlink(&p); }
                Op::Read(_) => {}
            }
        }
        let visible: Vec<(Path, Vec<u8>)> = fs
            .walk_files(&Path::root())
            .into_iter()
            .map(|p| { let d = fs.read(&p).unwrap().to_vec(); (p, d) })
            .collect();
        // Simulate nym save/restore: detach the upper, re-attach it.
        let upper = fs.take_upper().unwrap();
        prop_assert!(fs.push_upper(upper));
        let after: Vec<(Path, Vec<u8>)> = fs
            .walk_files(&Path::root())
            .into_iter()
            .map(|p| { let d = fs.read(&p).unwrap().to_vec(); (p, d) })
            .collect();
        prop_assert_eq!(visible, after);
    }
}
