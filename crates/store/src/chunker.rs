//! Content-defined chunking for the chunk store.
//!
//! Record-granular deltas hit a wall the roadmap records: any AnonVM
//! write dirties the entire `anonvm.disk` record (~85% of a nym's
//! payload), so a 4 KiB browser-cache write re-ships tens of kilobytes.
//! The content-addressed store ([`crate::cas`]) splits large records
//! into chunks first — and the split must be **content-defined**, not
//! fixed-offset, so an insertion near the front doesn't shift every
//! later chunk boundary and re-dirty the whole record.
//!
//! The cut rule is a FastCDC-style gear hash: a 64-byte rolling window
//! (`h = (h << 1) + GEAR[byte]`; each shift ages a byte out of the top
//! bit within 64 steps) with normalized cut masks — a stricter mask
//! (`MASK_S`) before the [`AVG_CHUNK`] target makes early cuts rare, a
//! looser one (`MASK_L`) after it makes late cuts likely, pulling the
//! size distribution in around the average. Sizes are clamped to
//! [[`MIN_CHUNK`], [`MAX_CHUNK`]] (a final tail chunk may be shorter
//! than the minimum).
//!
//! Properties the CAS relies on (pinned by proptests in
//! `tests/prop.rs`):
//!
//! * **Deterministic**: the same bytes always produce the same
//!   boundaries — chunk IDs are stable across saves, machines, nyms.
//! * **Edit-local**: a boundary depends only on the 64 bytes of window
//!   before it (plus the previous boundary), so an edit perturbs the
//!   chunking only until the stream re-synchronizes — typically at the
//!   first post-edit cut candidate — and every chunk before the edit is
//!   untouched.
//! * **Lossless**: the chunks concatenate back to exactly the input.

/// Smallest chunk the cutter will emit (except a final short tail).
pub const MIN_CHUNK: usize = 2 * 1024;

/// Target average chunk size.
pub const AVG_CHUNK: usize = 8 * 1024;

/// Largest chunk the cutter will emit; a cut is forced at this length.
pub const MAX_CHUNK: usize = 64 * 1024;

/// Strict cut mask used before [`AVG_CHUNK`]: 14 high bits, so an early
/// cut fires with probability 2⁻¹⁴ per byte.
const MASK_S: u64 = 0xFFFC_0000_0000_0000;

/// Loose cut mask used after [`AVG_CHUNK`]: 12 high bits (2⁻¹² per
/// byte), hurrying oversized chunks toward a boundary before
/// [`MAX_CHUNK`] forces one.
const MASK_L: u64 = 0xFFF0_0000_0000_0000;

/// Gear table: one pseudorandom 64-bit word per byte value, generated
/// by splitmix64 from a fixed seed so the chunking is identical on
/// every build (chunk IDs must be stable across machines and sessions).
const GEAR: [u64; 256] = build_gear_table();

const fn build_gear_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    // Seed: leading hex digits of π — a nothing-up-my-sleeve constant.
    let mut x: u64 = 0x243F_6A88_85A3_08D3;
    let mut i = 0;
    while i < 256 {
        // splitmix64.
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        table[i] = z ^ (z >> 31);
        i += 1;
    }
    table
}

/// Length of the first chunk of `data` under the gear-hash cut rule.
/// Returns `data.len()` when no boundary fires before the input ends;
/// never returns 0 for non-empty input.
pub fn cut_point(data: &[u8]) -> usize {
    let n = data.len();
    if n <= MIN_CHUNK {
        return n;
    }
    let center = AVG_CHUNK.min(n);
    let end = MAX_CHUNK.min(n);
    let mut h: u64 = 0;
    // The hash is warmed over the tail of the skipped minimum so a cut
    // decision at position i always sees the full 64-byte window, no
    // matter where the previous boundary fell.
    for &b in &data[MIN_CHUNK - 64..MIN_CHUNK] {
        h = (h << 1).wrapping_add(GEAR[b as usize]);
    }
    let mut i = MIN_CHUNK;
    while i < center {
        h = (h << 1).wrapping_add(GEAR[data[i] as usize]);
        i += 1;
        if h & MASK_S == 0 {
            return i;
        }
    }
    while i < end {
        h = (h << 1).wrapping_add(GEAR[data[i] as usize]);
        i += 1;
        if h & MASK_L == 0 {
            return i;
        }
    }
    end
}

/// Iterator over the content-defined chunks of a byte slice, in order.
/// Yields borrowed sub-slices — chunking allocates nothing.
#[derive(Debug, Clone)]
pub struct Chunks<'a> {
    rest: &'a [u8],
}

impl<'a> Iterator for Chunks<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.rest.is_empty() {
            return None;
        }
        let cut = cut_point(self.rest);
        let (chunk, rest) = self.rest.split_at(cut);
        self.rest = rest;
        Some(chunk)
    }
}

/// Splits `data` into content-defined chunks.
///
/// # Examples
///
/// ```
/// use nymix_store::chunker::{chunks, MAX_CHUNK, MIN_CHUNK};
///
/// let data = vec![0x5Au8; 100 * 1024];
/// let parts: Vec<&[u8]> = chunks(&data).collect();
/// assert_eq!(parts.concat(), data);
/// for part in &parts[..parts.len() - 1] {
///     assert!((MIN_CHUNK..=MAX_CHUNK).contains(&part.len()));
/// }
/// ```
pub fn chunks(data: &[u8]) -> Chunks<'_> {
    Chunks { rest: data }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random filler (xorshift64*).
    fn noise(seed: u64, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut x = seed | 1;
        while out.len() < len {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            out.extend_from_slice(&x.wrapping_mul(0x2545_F491_4F6C_DD1D).to_le_bytes());
        }
        out.truncate(len);
        out
    }

    #[test]
    fn chunks_concat_to_input_and_respect_bounds() {
        for len in [0usize, 1, MIN_CHUNK - 1, MIN_CHUNK, 10_000, 200_000] {
            let data = noise(7, len);
            let parts: Vec<&[u8]> = chunks(&data).collect();
            assert_eq!(parts.concat(), data, "len {len}");
            for (i, part) in parts.iter().enumerate() {
                assert!(part.len() <= MAX_CHUNK, "len {len} chunk {i}");
                assert!(!part.is_empty(), "len {len} chunk {i}");
                if i + 1 < parts.len() {
                    assert!(part.len() >= MIN_CHUNK, "len {len} chunk {i}");
                }
            }
        }
    }

    #[test]
    fn chunking_is_deterministic() {
        let data = noise(42, 150_000);
        let a: Vec<usize> = chunks(&data).map(<[u8]>::len).collect();
        let b: Vec<usize> = chunks(&data).map(<[u8]>::len).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn average_size_lands_near_target() {
        let data = noise(3, 2 * 1024 * 1024);
        let count = chunks(&data).count();
        let avg = data.len() / count;
        // Normalized chunking concentrates sizes around AVG_CHUNK; allow
        // a generous band (the minimum skip alone guarantees >= 2 KiB).
        assert!(
            (AVG_CHUNK / 2..=AVG_CHUNK * 2).contains(&avg),
            "avg chunk {avg}"
        );
    }

    #[test]
    fn low_entropy_input_still_cuts() {
        // All-identical bytes never match a cut mask mid-stream (the
        // window is constant), so MAX_CHUNK must force boundaries.
        let data = vec![0u8; 300 * 1024];
        let parts: Vec<&[u8]> = chunks(&data).collect();
        assert!(parts.iter().all(|p| p.len() <= MAX_CHUNK));
        assert_eq!(parts.concat(), data);
    }

    #[test]
    fn prefix_chunks_unaffected_by_suffix_edit() {
        // Boundaries are decided left to right from the previous
        // boundary, so chunks strictly before an edit are identical.
        let mut data = noise(11, 100_000);
        let before: Vec<Vec<u8>> = chunks(&data).map(<[u8]>::to_vec).collect();
        let edit_at = 80_000;
        data[edit_at] ^= 0xFF;
        let after: Vec<Vec<u8>> = chunks(&data).map(<[u8]>::to_vec).collect();
        let mut offset = 0usize;
        for (a, b) in before.iter().zip(after.iter()) {
            if offset + a.len() > edit_at {
                break;
            }
            assert_eq!(a, b, "chunk at offset {offset} changed by later edit");
            offset += a.len();
        }
    }

    #[test]
    fn single_byte_edit_changes_few_chunks() {
        let data = noise(23, 120_000);
        let before: Vec<Vec<u8>> = chunks(&data).map(<[u8]>::to_vec).collect();
        for edit_at in [5_000usize, 60_000, 119_999] {
            let mut edited = data.clone();
            edited[edit_at] ^= 0x80;
            let after: Vec<Vec<u8>> = chunks(&edited).map(<[u8]>::to_vec).collect();
            let common_prefix = before
                .iter()
                .zip(after.iter())
                .take_while(|(a, b)| a == b)
                .count();
            let common_suffix = before
                .iter()
                .rev()
                .zip(after.iter().rev())
                .take_while(|(a, b)| a == b)
                .count();
            let changed = before
                .len()
                .max(after.len())
                .saturating_sub(common_prefix + common_suffix);
            assert!(
                changed <= 3,
                "edit at {edit_at} changed {changed} of {} chunks",
                before.len()
            );
        }
    }
}
