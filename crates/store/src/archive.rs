//! The nym archive container.
//!
//! A [`NymArchive`] is what the Nym Manager produces when the user
//! selects *store nym* (§3.5): the AnonVM and CommVM writable layers
//! serialized, plus named records for anonymizer state (Tor guards) and
//! metadata. Binary format (all integers little-endian):
//!
//! ```text
//! full archive:  magic "NYM1" | record_count u32 | records...
//! record:        name_len u16 | name | data_len u64 | data
//! layer payload: entry_count u32 | entries...
//! entry:         path_len u16 | path | tag u8 (0=file,1=dir,2=whiteout) |
//!                data_len u64 | data (files only)
//! ```
//!
//! Incremental snapshots ([`crate::delta::DeltaArchive`]) share the
//! record encoding under a different magic:
//!
//! ```text
//! delta archive: magic "NYMD" | full_record_count u32 |
//!                merkle_root [32]u8 | dirty_count u32 | records... |
//!                removed_count u32 | (name_len u16 | name)...
//! ```
//!
//! `merkle_root` commits to the **entire** record set of the full
//! archive the delta produces when applied (leaves are
//! `name_len u16 ‖ name ‖ data` in record order, hashed into the
//! domain-separated tree of `nymix_crypto::merkle`). Restore replays
//! base + deltas in order and must reject the result whenever the
//! recomputed root differs — a tampered, reordered, or stale record
//! set fails closed. Chains are bounded: after
//! [`crate::delta::DELTA_CHAIN_LIMIT`] deltas the next save compacts
//! back to a full "NYM1" archive (see [`crate::versioned`]).
//!
//! Records at or above [`crate::cas::CHUNK_RECORD_THRESHOLD`] may hold
//! a **chunk manifest** ([`crate::cas::ChunkManifest`]) instead of the
//! payload itself — the *stored form* the incremental save pipeline
//! diffs and commits to:
//!
//! ```text
//! chunk manifest: magic "NYMC" | total_len u64 | chunk_count u32 |
//!                 (chunk_id [32]u8 | chunk_len u32)...
//! ```
//!
//! `chunk_id` is the domain-separated SHA-256 of the chunk's plaintext
//! (boundaries are content-defined; see [`crate::chunker`]); the chunks
//! themselves are sealed individually as `"{label}#e{epoch}/c/{id}"`
//! objects with that name bound as AEAD data. A manifest-bearing
//! record rides the NYM1/NYMD encodings unchanged — the Merkle
//! commitment covers the manifest bytes, each fetched chunk is
//! verified against its ID, and restore resolves manifests back to
//! payload bytes after replay, failing closed on a missing, tampered,
//! or transplanted chunk. The parser enforces structural invariants
//! strictly (non-zero chunk count, each length in
//! `1..=`[`crate::chunker::MAX_CHUNK`], lengths summing to
//! `total_len`, no trailing bytes), so raw record bytes can
//! essentially never masquerade as a manifest — and if they somehow
//! did, resolution fails closed rather than restoring wrong state.
//!
//! ## Erasure shards (`NYMP`)
//!
//! When the destination is a multi-provider placement
//! ([`crate::placement::PlacementStore`]), no child backend holds a
//! whole object: each holds one **shard** — a fixed header binding the
//! shard to its object name, stripe position, and erasure geometry,
//! followed by `stripe_len = ceil(object_len / k)` payload bytes of
//! GF(256) Reed–Solomon stripe (`index < k`) or parity (`index ≥ k`):
//!
//! ```text
//! shard: magic "NYMP" | version u8 | index u8 | k u8 | n u8 |
//!        object_len u64 | shard_len u32 | object_hash [32]u8 |
//!        shard_hash [32]u8 | name_len u16 | name | payload
//! ```
//!
//! `object_hash` is the domain-separated SHA-256 of the whole original
//! object — the cross-shard consistency anchor: shards from different
//! object versions hash apart and can never mix into one decode.
//! `shard_hash` is a domain-separated SHA-256 over the name, geometry
//! (`index`, `k`, `n`), `object_len`, `object_hash`, and payload, so
//! *every* field a byzantine provider could forge is bound. The parser
//! ([`crate::placement::shard::decode_shard`]) verifies magic, version,
//! geometry bounds, exact lengths (`shard_len` must equal the stripe
//! width `(object_len, k)` determines — a header claiming otherwise is
//! lying about one of the two), the name binding, and the recomputed
//! `shard_hash`, all **before** the payload reaches the erasure
//! decoder. A shard failing any check contributes nothing: with at
//! least `k` verified shards of one version the object reconstructs
//! exactly; with fewer the read fails closed.
//!
//! ## On-disk persistence (`NYMJ` journal + heap)
//!
//! The wire formats above describe *objects* — opaque blobs a backend
//! stores by name. When the backend is the crash-consistent disk store
//! ([`crate::disk`]), those objects live inside two further on-disk
//! structures with their own magics: the `"NYMJ"` write-ahead journal
//! (dual alternating superblock slots + one `"JBAT"` batch frame) and
//! the log-structured heap (`"HOBJ"` put / `"HDEL"` tombstone records,
//! each ending in a truncated-SHA-256 `check16`). Their byte layouts,
//! the commit protocol, and the recovery rules are specified in the
//! [`crate::disk`] module docs, alongside the durability model in the
//! crate root. The containers are independent layers: a sealed NYM1
//! archive rides the journal unchanged, and journal recovery never
//! needs to parse what it replays.
//!
//! ## Parsing hostile bytes
//!
//! [`NymArchive::from_bytes`] (and the delta parser) is the trust
//! boundary for bytes fetched from an untrusted cloud backend: every
//! length is bounds-checked with overflow-safe arithmetic, and
//! pre-allocations are clamped by the bytes actually remaining, so a
//! crafted header can neither panic (even with release-mode wrapping
//! arithmetic) nor reserve unbounded memory. Parsing either succeeds or
//! returns [`ArchiveError`] — never panics.

use nymix_fs::{Layer, LayerKind, Node, Path};

/// Longest serializable record name / layer path (the wire format's
/// length prefix is a `u16`).
pub const MAX_NAME_LEN: usize = u16::MAX as usize;

/// Errors from archive parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchiveError {
    /// Bad magic or structural truncation.
    Malformed,
    /// Unknown node tag in a layer payload.
    BadTag(u8),
}

impl core::fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ArchiveError::Malformed => write!(f, "malformed nym archive"),
            ArchiveError::BadTag(t) => write!(f, "unknown layer node tag {t}"),
        }
    }
}

impl std::error::Error for ArchiveError {}

/// A named-record container for one nym's persistent state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NymArchive {
    records: Vec<(String, Vec<u8>)>,
}

const MAGIC: &[u8; 4] = b"NYM1";

impl NymArchive {
    /// An empty archive.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a named record.
    ///
    /// # Panics
    ///
    /// Panics if `name` is longer than [`MAX_NAME_LEN`] bytes: the wire
    /// format's `u16` length prefix would silently truncate it,
    /// producing an archive that mis-parses on restore. Rejecting the
    /// record at insertion keeps serialization infallible.
    pub fn put(&mut self, name: &str, data: Vec<u8>) {
        // lint:allow(panic-free-parser): serializer-side contract on caller-chosen names (documented under # Panics); wire bytes never reach this path
        assert!(
            name.len() <= MAX_NAME_LEN,
            "record name of {} bytes exceeds the u16 wire limit ({MAX_NAME_LEN})",
            name.len()
        );
        if let Some(slot) = self.records.iter_mut().find(|(n, _)| n == name) {
            slot.1 = data;
        } else {
            self.records.push((name.to_string(), data));
        }
    }

    /// Removes a record, returning its data if it existed.
    pub fn remove(&mut self, name: &str) -> Option<Vec<u8>> {
        let idx = self.records.iter().position(|(n, _)| n == name)?;
        Some(self.records.remove(idx).1)
    }

    /// Replaces a record's data **in place** — record order (which the
    /// Merkle commitment and delta replay depend on) is preserved, and
    /// the previous bytes are returned without copying. Appends like
    /// [`NymArchive::put`] when the record doesn't exist.
    ///
    /// # Panics
    ///
    /// Panics if `name` exceeds [`MAX_NAME_LEN`] bytes (see
    /// [`NymArchive::put`]).
    pub fn replace(&mut self, name: &str, mut data: Vec<u8>) -> Option<Vec<u8>> {
        // lint:allow(panic-free-parser): serializer-side contract on caller-chosen names (documented under # Panics); wire bytes never reach this path
        assert!(
            name.len() <= MAX_NAME_LEN,
            "record name of {} bytes exceeds the u16 wire limit ({MAX_NAME_LEN})",
            name.len()
        );
        if let Some(slot) = self.records.iter_mut().find(|(n, _)| n == name) {
            core::mem::swap(&mut slot.1, &mut data);
            Some(data)
        } else {
            self.records.push((name.to_string(), data));
            None
        }
    }

    /// Iterates `(name, data)` records in insertion order.
    pub fn records(&self) -> impl Iterator<Item = (&str, &[u8])> {
        self.records.iter().map(|(n, d)| (n.as_str(), d.as_slice()))
    }

    /// Number of records held.
    pub fn record_count(&self) -> usize {
        self.records.len()
    }

    /// Fetches a record.
    pub fn get(&self, name: &str) -> Option<&[u8]> {
        self.records
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| d.as_slice())
    }

    /// Record names in insertion order.
    pub fn names(&self) -> Vec<&str> {
        self.records.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Total payload bytes across records.
    pub fn payload_bytes(&self) -> usize {
        self.records.iter().map(|(_, d)| d.len()).sum()
    }

    /// Adds a serialized writable layer under `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` or any path in `layer` exceeds
    /// [`MAX_NAME_LEN`] bytes (see [`NymArchive::put`]).
    pub fn put_layer(&mut self, name: &str, layer: &Layer) {
        self.put(name, serialize_layer(layer));
    }

    /// [`NymArchive::put_layer`] through [`NymArchive::replace`]:
    /// serializes `layer` into record `name` preserving record order
    /// (which the Merkle commitment depends on) and returns the
    /// previous bytes without copying — dirty-detection can compare
    /// old vs new stored bytes with no clone.
    ///
    /// # Panics
    ///
    /// Panics if `name` or any path in `layer` exceeds
    /// [`MAX_NAME_LEN`] bytes (see [`NymArchive::put`]).
    pub fn replace_layer(&mut self, name: &str, layer: &Layer) -> Option<Vec<u8>> {
        self.replace(name, serialize_layer(layer))
    }

    /// Reconstructs a writable layer from record `name`.
    pub fn get_layer(&self, name: &str) -> Result<Layer, ArchiveError> {
        let data = self.get(name).ok_or(ArchiveError::Malformed)?;
        deserialize_layer(data)
    }

    /// Exact byte length [`NymArchive::write_into`] will append — lets
    /// callers reserve once and serialize without reallocation.
    pub fn serialized_len(&self) -> usize {
        MAGIC.len()
            + 4
            + self
                .records
                .iter()
                .map(|(name, data)| 2 + name.len() + 8 + data.len())
                .sum::<usize>()
    }

    /// Serializes the archive by appending to `out`. With
    /// [`NymArchive::serialized_len`] bytes of spare capacity this
    /// performs no allocation — the sealing pipeline serializes straight
    /// into its reusable arena.
    pub fn write_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.serialized_len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&len_u32(self.records.len()).to_le_bytes());
        for (name, data) in &self.records {
            write_record(out, name, data);
        }
    }

    /// Serializes the archive.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.serialized_len());
        self.write_into(&mut out);
        out
    }

    /// Parses a serialized archive. Never panics and never reserves
    /// more memory than the input could actually describe, no matter
    /// how hostile the bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ArchiveError> {
        let mut r = Reader::new(bytes);
        if r.take(4)? != MAGIC {
            return Err(ArchiveError::Malformed);
        }
        let count = r.u32()?;
        let mut records = Vec::with_capacity(clamp_count(count, r.remaining(), MIN_RECORD_LEN));
        for _ in 0..count {
            records.push(read_record(&mut r)?);
        }
        if !r.done() {
            return Err(ArchiveError::Malformed);
        }
        Ok(Self { records })
    }
}

/// The smallest possible serialized record: empty name (2-byte length)
/// plus empty data (8-byte length).
pub(crate) const MIN_RECORD_LEN: usize = 2 + 8;

/// Clamps an attacker-controlled element count to what `remaining`
/// input bytes could actually hold, so `Vec::with_capacity` on a
/// 12-byte blob claiming four billion records cannot reserve gigabytes.
/// Oversized counts still iterate — and fail on the first truncated
/// element — they just don't pre-allocate.
pub(crate) fn clamp_count(count: u32, remaining: usize, min_element_len: usize) -> usize {
    (count as usize).min(remaining / min_element_len.max(1))
}

/// Reads one `name_len u16 | name | data_len u64 | data` record.
pub(crate) fn read_record(r: &mut Reader<'_>) -> Result<(String, Vec<u8>), ArchiveError> {
    let name = read_name(r)?;
    let data_len = r.u64()?;
    let data_len = usize::try_from(data_len).map_err(|_| ArchiveError::Malformed)?;
    let data = r.take(data_len)?.to_vec();
    Ok((name, data))
}

/// Reads one `name_len u16 | name` length-prefixed UTF-8 name.
pub(crate) fn read_name(r: &mut Reader<'_>) -> Result<String, ArchiveError> {
    let name_len = r.u16()? as usize;
    String::from_utf8(r.take(name_len)?.to_vec()).map_err(|_| ArchiveError::Malformed)
}

/// Serializer-side length to `u16`, checked instead of cast: callers
/// uphold the bound (`MAX_NAME_LEN` names), a breach saturates rather
/// than silently truncating into a length-prefix confusion.
pub(crate) fn len_u16(len: usize) -> u16 {
    debug_assert!(
        u16::try_from(len).is_ok(),
        "length {len} exceeds u16 wire field"
    );
    u16::try_from(len).unwrap_or(u16::MAX)
}

/// Serializer-side length to `u32`, checked instead of cast (see
/// [`len_u16`]).
pub(crate) fn len_u32(len: usize) -> u32 {
    debug_assert!(
        u32::try_from(len).is_ok(),
        "length {len} exceeds u32 wire field"
    );
    u32::try_from(len).unwrap_or(u32::MAX)
}

/// Appends one record in wire encoding. Caller guarantees
/// `name.len() <= MAX_NAME_LEN` (enforced by [`NymArchive::put`]).
pub(crate) fn write_record(out: &mut Vec<u8>, name: &str, data: &[u8]) {
    debug_assert!(name.len() <= MAX_NAME_LEN);
    out.extend_from_slice(&len_u16(name.len()).to_le_bytes());
    out.extend_from_slice(name.as_bytes());
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    out.extend_from_slice(data);
}

fn serialize_layer(layer: &Layer) -> Vec<u8> {
    let entries: Vec<(&Path, &Node)> = layer.entries().filter(|(p, _)| !p.is_root()).collect();
    let mut out = Vec::new();
    out.extend_from_slice(&len_u32(entries.len()).to_le_bytes());
    for (path, node) in entries {
        let p = path.to_string();
        // lint:allow(panic-free-parser): serializer-side contract on locally built paths, not wire input; fs layer caps component lengths
        assert!(
            p.len() <= MAX_NAME_LEN,
            "layer path of {} bytes exceeds the u16 wire limit ({MAX_NAME_LEN})",
            p.len()
        );
        out.extend_from_slice(&len_u16(p.len()).to_le_bytes());
        out.extend_from_slice(p.as_bytes());
        match node {
            Node::File(data) => {
                out.push(0);
                out.extend_from_slice(&(data.len() as u64).to_le_bytes());
                out.extend_from_slice(data);
            }
            Node::Dir => out.push(1),
            Node::Whiteout => out.push(2),
        }
    }
    out
}

fn deserialize_layer(bytes: &[u8]) -> Result<Layer, ArchiveError> {
    let mut r = Reader::new(bytes);
    let count = r.u32()?;
    let mut layer = Layer::new(LayerKind::Writable);
    for _ in 0..count {
        let path_str = read_name(&mut r)?;
        let path = Path::new(&path_str);
        match r.u8()? {
            0 => {
                let len = r.u64()?;
                let len = usize::try_from(len).map_err(|_| ArchiveError::Malformed)?;
                layer.put_file(path, r.take(len)?.to_vec());
            }
            1 => layer.put_dir(path),
            2 => layer.put_whiteout(path),
            t => return Err(ArchiveError::BadTag(t)),
        }
    }
    if !r.done() {
        return Err(ArchiveError::Malformed);
    }
    Ok(layer)
}

/// Bounds-checked cursor over untrusted input. All arithmetic is
/// overflow-safe: a crafted length near `u64::MAX` used to wrap
/// `pos + n` in release builds (overflow checks off) and panic on the
/// slice; `checked_add` turns every such input into `Malformed`.
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], ArchiveError> {
        let end = self.pos.checked_add(n).ok_or(ArchiveError::Malformed)?;
        if end > self.bytes.len() {
            return Err(ArchiveError::Malformed);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn take_array<const N: usize>(&mut self) -> Result<[u8; N], ArchiveError> {
        self.take(N)?
            .try_into()
            .map_err(|_| ArchiveError::Malformed)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, ArchiveError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, ArchiveError> {
        Ok(u16::from_le_bytes(self.take_array()?))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, ArchiveError> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, ArchiveError> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    /// Unconsumed bytes left in the input.
    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    pub(crate) fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_layer() -> Layer {
        let mut l = Layer::new(LayerKind::Writable);
        l.put_file(
            Path::new("/home/user/.config/chromium/cookies"),
            vec![9; 500],
        );
        l.put_file(Path::new("/home/user/bookmarks"), b"tor blog".to_vec());
        l.put_dir(Path::new("/home/user/cache"));
        l.put_whiteout(Path::new("/etc/motd"));
        l
    }

    #[test]
    fn record_roundtrip() {
        let mut a = NymArchive::new();
        a.put("meta", b"nym=alice".to_vec());
        a.put("tor.state", vec![1, 2, 3]);
        a.put("meta", b"nym=alice-v2".to_vec()); // replace
        let bytes = a.to_bytes();
        let b = NymArchive::from_bytes(&bytes).unwrap();
        assert_eq!(a, b);
        assert_eq!(b.get("meta").unwrap(), b"nym=alice-v2");
        assert_eq!(b.names(), vec!["meta", "tor.state"]);
        assert_eq!(b.get("missing"), None);
    }

    #[test]
    fn layer_roundtrip_preserves_everything() {
        let layer = sample_layer();
        let mut a = NymArchive::new();
        a.put_layer("anonvm.disk", &layer);
        let bytes = a.to_bytes();
        let restored = NymArchive::from_bytes(&bytes)
            .unwrap()
            .get_layer("anonvm.disk")
            .unwrap();
        // Compare every entry.
        let orig: Vec<_> = layer.entries().collect();
        let back: Vec<_> = restored.entries().collect();
        assert_eq!(orig.len(), back.len());
        for ((p1, n1), (p2, n2)) in orig.iter().zip(back.iter()) {
            assert_eq!(p1, p2);
            assert_eq!(n1, n2);
        }
    }

    #[test]
    fn truncation_rejected() {
        let mut a = NymArchive::new();
        a.put("x", vec![0u8; 100]);
        let bytes = a.to_bytes();
        for cut in [0usize, 3, 4, 8, 10, bytes.len() - 1] {
            assert!(NymArchive::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut a = NymArchive::new();
        a.put("x", vec![1]);
        let mut bytes = a.to_bytes();
        bytes.push(0);
        assert_eq!(NymArchive::from_bytes(&bytes), Err(ArchiveError::Malformed));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = NymArchive::new().to_bytes();
        bytes[0] ^= 1;
        assert_eq!(NymArchive::from_bytes(&bytes), Err(ArchiveError::Malformed));
    }

    #[test]
    fn bad_layer_tag_rejected() {
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(&2u16.to_le_bytes());
        payload.extend_from_slice(b"/x");
        payload.push(7); // bad tag
        let mut a = NymArchive::new();
        a.put("layer", payload);
        assert!(matches!(a.get_layer("layer"), Err(ArchiveError::BadTag(7))));
        assert!(matches!(
            a.get_layer("missing"),
            Err(ArchiveError::Malformed)
        ));
    }

    /// The `Reader::take` overflow regression: a record whose
    /// `data_len` is near `u64::MAX` used to wrap `pos + n` in release
    /// builds and panic on the slice. It must parse to `Malformed` in
    /// both profiles.
    #[test]
    fn hostile_lengths_rejected_without_panic() {
        for data_len in [
            u64::MAX,
            u64::MAX - 7,
            u64::MAX / 2,
            usize::MAX as u64,
            (usize::MAX as u64).wrapping_add(1),
            1 << 48,
        ] {
            let mut bytes = Vec::new();
            bytes.extend_from_slice(MAGIC);
            bytes.extend_from_slice(&1u32.to_le_bytes());
            bytes.extend_from_slice(&1u16.to_le_bytes());
            bytes.push(b'x');
            bytes.extend_from_slice(&data_len.to_le_bytes());
            bytes.extend_from_slice(&[0u8; 16]); // some trailing bytes
            assert_eq!(
                NymArchive::from_bytes(&bytes),
                Err(ArchiveError::Malformed),
                "data_len {data_len:#x}"
            );
        }
        // Same hostile length inside a layer payload (file entry).
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(&2u16.to_le_bytes());
        payload.extend_from_slice(b"/f");
        payload.push(0); // file tag
        payload.extend_from_slice(&u64::MAX.to_le_bytes());
        let mut a = NymArchive::new();
        a.put("layer", payload);
        assert!(matches!(a.get_layer("layer"), Err(ArchiveError::Malformed)));
    }

    /// A 12-byte blob claiming u32::MAX records must fail fast without
    /// reserving gigabytes up front.
    #[test]
    fn huge_record_count_does_not_over_reserve() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 4]);
        assert_eq!(NymArchive::from_bytes(&bytes), Err(ArchiveError::Malformed));
        // The clamp itself: tiny remainder => tiny reservation.
        assert_eq!(clamp_count(u32::MAX, 4, MIN_RECORD_LEN), 0);
        assert_eq!(clamp_count(u32::MAX, 1024, MIN_RECORD_LEN), 1024 / 10);
        assert_eq!(clamp_count(3, 1024, MIN_RECORD_LEN), 3);
    }

    #[test]
    fn name_at_u16_boundary_roundtrips() {
        let name = "n".repeat(MAX_NAME_LEN);
        let mut a = NymArchive::new();
        a.put(&name, b"edge".to_vec());
        let b = NymArchive::from_bytes(&a.to_bytes()).unwrap();
        assert_eq!(b.get(&name).unwrap(), b"edge");
    }

    #[test]
    #[should_panic(expected = "exceeds the u16 wire limit")]
    fn over_long_record_name_rejected_at_put() {
        let name = "n".repeat(MAX_NAME_LEN + 1);
        NymArchive::new().put(&name, Vec::new());
    }

    #[test]
    #[should_panic(expected = "exceeds the u16 wire limit")]
    fn over_long_layer_path_rejected_at_serialize() {
        let mut layer = Layer::new(LayerKind::Writable);
        let long = format!("/{}", "p".repeat(MAX_NAME_LEN + 1));
        layer.put_file(Path::new(&long), vec![1]);
        let mut a = NymArchive::new();
        a.put_layer("layer", &layer);
    }

    #[test]
    fn layer_path_at_u16_boundary_roundtrips() {
        // "/" + 65534 chars = exactly 65535 bytes once normalized.
        let path = format!("/{}", "p".repeat(MAX_NAME_LEN - 1));
        let mut layer = Layer::new(LayerKind::Writable);
        layer.put_file(Path::new(&path), b"deep".to_vec());
        let mut a = NymArchive::new();
        a.put_layer("layer", &layer);
        let restored = NymArchive::from_bytes(&a.to_bytes())
            .unwrap()
            .get_layer("layer")
            .unwrap();
        assert_eq!(
            restored.get(&Path::new(&path)),
            Some(&Node::File(b"deep".to_vec()))
        );
    }

    #[test]
    fn record_remove_and_iteration() {
        let mut a = NymArchive::new();
        a.put("a", vec![1]);
        a.put("b", vec![2]);
        assert_eq!(a.record_count(), 2);
        assert_eq!(a.remove("a"), Some(vec![1]));
        assert_eq!(a.remove("a"), None);
        let records: Vec<_> = a.records().collect();
        assert_eq!(records, vec![("b", &[2u8][..])]);
    }

    #[test]
    fn replace_preserves_record_order() {
        let mut a = NymArchive::new();
        a.put("a", vec![1]);
        a.put("b", vec![2]);
        a.put("c", vec![3]);
        // Swapping the middle record's data must not move it: the
        // Merkle commitment and delta replay both walk record order.
        assert_eq!(a.replace("b", vec![9, 9]), Some(vec![2]));
        assert_eq!(a.names(), vec!["a", "b", "c"]);
        assert_eq!(a.get("b"), Some(&[9u8, 9][..]));
        // Absent records append, like put.
        assert_eq!(a.replace("d", vec![4]), None);
        assert_eq!(a.names(), vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn payload_accounting() {
        let mut a = NymArchive::new();
        a.put("a", vec![0; 10]);
        a.put("b", vec![0; 32]);
        assert_eq!(a.payload_bytes(), 42);
    }

    #[test]
    fn write_into_appends_exactly_serialized_len() {
        let mut a = NymArchive::new();
        a.put("meta", b"nym=alice".to_vec());
        a.put_layer("anonvm.disk", &sample_layer());
        let mut out = b"prefix".to_vec();
        a.write_into(&mut out);
        assert_eq!(out.len(), 6 + a.serialized_len());
        assert_eq!(&out[..6], b"prefix");
        assert_eq!(NymArchive::from_bytes(&out[6..]).unwrap(), a);
        assert_eq!(a.to_bytes().len(), a.serialized_len());
    }
}
