//! The nym archive container.
//!
//! A [`NymArchive`] is what the Nym Manager produces when the user
//! selects *store nym* (§3.5): the AnonVM and CommVM writable layers
//! serialized, plus named records for anonymizer state (Tor guards) and
//! metadata. Binary format (all integers little-endian):
//!
//! ```text
//! magic "NYM1" | record_count u32 | records...
//! record: name_len u16 | name | data_len u64 | data
//! layer payload: entry_count u32 | entries...
//! entry: path_len u16 | path | tag u8 (0=file,1=dir,2=whiteout) |
//!        data_len u64 | data (files only)
//! ```

use nymix_fs::{Layer, LayerKind, Node, Path};

/// Errors from archive parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchiveError {
    /// Bad magic or structural truncation.
    Malformed,
    /// Unknown node tag in a layer payload.
    BadTag(u8),
}

impl core::fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ArchiveError::Malformed => write!(f, "malformed nym archive"),
            ArchiveError::BadTag(t) => write!(f, "unknown layer node tag {t}"),
        }
    }
}

impl std::error::Error for ArchiveError {}

/// A named-record container for one nym's persistent state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NymArchive {
    records: Vec<(String, Vec<u8>)>,
}

const MAGIC: &[u8; 4] = b"NYM1";

impl NymArchive {
    /// An empty archive.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a named record.
    pub fn put(&mut self, name: &str, data: Vec<u8>) {
        if let Some(slot) = self.records.iter_mut().find(|(n, _)| n == name) {
            slot.1 = data;
        } else {
            self.records.push((name.to_string(), data));
        }
    }

    /// Fetches a record.
    pub fn get(&self, name: &str) -> Option<&[u8]> {
        self.records
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| d.as_slice())
    }

    /// Record names in insertion order.
    pub fn names(&self) -> Vec<&str> {
        self.records.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Total payload bytes across records.
    pub fn payload_bytes(&self) -> usize {
        self.records.iter().map(|(_, d)| d.len()).sum()
    }

    /// Adds a serialized writable layer under `name`.
    pub fn put_layer(&mut self, name: &str, layer: &Layer) {
        self.put(name, serialize_layer(layer));
    }

    /// Reconstructs a writable layer from record `name`.
    pub fn get_layer(&self, name: &str) -> Result<Layer, ArchiveError> {
        let data = self.get(name).ok_or(ArchiveError::Malformed)?;
        deserialize_layer(data)
    }

    /// Exact byte length [`NymArchive::write_into`] will append — lets
    /// callers reserve once and serialize without reallocation.
    pub fn serialized_len(&self) -> usize {
        MAGIC.len()
            + 4
            + self
                .records
                .iter()
                .map(|(name, data)| 2 + name.len() + 8 + data.len())
                .sum::<usize>()
    }

    /// Serializes the archive by appending to `out`. With
    /// [`NymArchive::serialized_len`] bytes of spare capacity this
    /// performs no allocation — the sealing pipeline serializes straight
    /// into its reusable arena.
    pub fn write_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.serialized_len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.records.len() as u32).to_le_bytes());
        for (name, data) in &self.records {
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(data.len() as u64).to_le_bytes());
            out.extend_from_slice(data);
        }
    }

    /// Serializes the archive.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.serialized_len());
        self.write_into(&mut out);
        out
    }

    /// Parses a serialized archive.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ArchiveError> {
        let mut r = Reader::new(bytes);
        if r.take(4)? != MAGIC {
            return Err(ArchiveError::Malformed);
        }
        let count = r.u32()?;
        let mut records = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let name_len = r.u16()? as usize;
            let name = String::from_utf8(r.take(name_len)?.to_vec())
                .map_err(|_| ArchiveError::Malformed)?;
            let data_len = r.u64()? as usize;
            let data = r.take(data_len)?.to_vec();
            records.push((name, data));
        }
        if !r.done() {
            return Err(ArchiveError::Malformed);
        }
        Ok(Self { records })
    }
}

fn serialize_layer(layer: &Layer) -> Vec<u8> {
    let entries: Vec<(&Path, &Node)> = layer.entries().filter(|(p, _)| !p.is_root()).collect();
    let mut out = Vec::new();
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (path, node) in entries {
        let p = path.to_string();
        out.extend_from_slice(&(p.len() as u16).to_le_bytes());
        out.extend_from_slice(p.as_bytes());
        match node {
            Node::File(data) => {
                out.push(0);
                out.extend_from_slice(&(data.len() as u64).to_le_bytes());
                out.extend_from_slice(data);
            }
            Node::Dir => out.push(1),
            Node::Whiteout => out.push(2),
        }
    }
    out
}

fn deserialize_layer(bytes: &[u8]) -> Result<Layer, ArchiveError> {
    let mut r = Reader::new(bytes);
    let count = r.u32()?;
    let mut layer = Layer::new(LayerKind::Writable);
    for _ in 0..count {
        let path_len = r.u16()? as usize;
        let path_str =
            String::from_utf8(r.take(path_len)?.to_vec()).map_err(|_| ArchiveError::Malformed)?;
        let path = Path::new(&path_str);
        match r.u8()? {
            0 => {
                let len = r.u64()? as usize;
                layer.put_file(path, r.take(len)?.to_vec());
            }
            1 => layer.put_dir(path),
            2 => layer.put_whiteout(path),
            t => return Err(ArchiveError::BadTag(t)),
        }
    }
    if !r.done() {
        return Err(ArchiveError::Malformed);
    }
    Ok(layer)
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ArchiveError> {
        if self.pos + n > self.bytes.len() {
            return Err(ArchiveError::Malformed);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ArchiveError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ArchiveError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, ArchiveError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, ArchiveError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_layer() -> Layer {
        let mut l = Layer::new(LayerKind::Writable);
        l.put_file(
            Path::new("/home/user/.config/chromium/cookies"),
            vec![9; 500],
        );
        l.put_file(Path::new("/home/user/bookmarks"), b"tor blog".to_vec());
        l.put_dir(Path::new("/home/user/cache"));
        l.put_whiteout(Path::new("/etc/motd"));
        l
    }

    #[test]
    fn record_roundtrip() {
        let mut a = NymArchive::new();
        a.put("meta", b"nym=alice".to_vec());
        a.put("tor.state", vec![1, 2, 3]);
        a.put("meta", b"nym=alice-v2".to_vec()); // replace
        let bytes = a.to_bytes();
        let b = NymArchive::from_bytes(&bytes).unwrap();
        assert_eq!(a, b);
        assert_eq!(b.get("meta").unwrap(), b"nym=alice-v2");
        assert_eq!(b.names(), vec!["meta", "tor.state"]);
        assert_eq!(b.get("missing"), None);
    }

    #[test]
    fn layer_roundtrip_preserves_everything() {
        let layer = sample_layer();
        let mut a = NymArchive::new();
        a.put_layer("anonvm.disk", &layer);
        let bytes = a.to_bytes();
        let restored = NymArchive::from_bytes(&bytes)
            .unwrap()
            .get_layer("anonvm.disk")
            .unwrap();
        // Compare every entry.
        let orig: Vec<_> = layer.entries().collect();
        let back: Vec<_> = restored.entries().collect();
        assert_eq!(orig.len(), back.len());
        for ((p1, n1), (p2, n2)) in orig.iter().zip(back.iter()) {
            assert_eq!(p1, p2);
            assert_eq!(n1, n2);
        }
    }

    #[test]
    fn truncation_rejected() {
        let mut a = NymArchive::new();
        a.put("x", vec![0u8; 100]);
        let bytes = a.to_bytes();
        for cut in [0usize, 3, 4, 8, 10, bytes.len() - 1] {
            assert!(NymArchive::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut a = NymArchive::new();
        a.put("x", vec![1]);
        let mut bytes = a.to_bytes();
        bytes.push(0);
        assert_eq!(NymArchive::from_bytes(&bytes), Err(ArchiveError::Malformed));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = NymArchive::new().to_bytes();
        bytes[0] ^= 1;
        assert_eq!(NymArchive::from_bytes(&bytes), Err(ArchiveError::Malformed));
    }

    #[test]
    fn bad_layer_tag_rejected() {
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(&2u16.to_le_bytes());
        payload.extend_from_slice(b"/x");
        payload.push(7); // bad tag
        let mut a = NymArchive::new();
        a.put("layer", payload);
        assert!(matches!(a.get_layer("layer"), Err(ArchiveError::BadTag(7))));
        assert!(matches!(
            a.get_layer("missing"),
            Err(ArchiveError::Malformed)
        ));
    }

    #[test]
    fn payload_accounting() {
        let mut a = NymArchive::new();
        a.put("a", vec![0; 10]);
        a.put("b", vec![0; 32]);
        assert_eq!(a.payload_bytes(), 42);
    }

    #[test]
    fn write_into_appends_exactly_serialized_len() {
        let mut a = NymArchive::new();
        a.put("meta", b"nym=alice".to_vec());
        a.put_layer("anonvm.disk", &sample_layer());
        let mut out = b"prefix".to_vec();
        a.write_into(&mut out);
        assert_eq!(out.len(), 6 + a.serialized_len());
        assert_eq!(&out[..6], b"prefix");
        assert_eq!(NymArchive::from_bytes(&out[6..]).unwrap(), a);
        assert_eq!(a.to_bytes().len(), a.serialized_len());
    }
}
