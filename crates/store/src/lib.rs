//! Quasi-persistent nym storage.
//!
//! §3.5: "When not in use, an encrypted copy of the data is migrated to
//! another storage device — either to another local partition or USB
//! drive, or to the cloud... the nym manager pauses the nym's AnonVM
//! and CommVM, syncs their file systems, compresses and encrypts their
//! temporary file system disk images, resumes the VMs, and uploads the
//! contents through the nym's CommVM."
//!
//! This crate implements that pipeline's storage half:
//!
//! * [`lzss`] — the compressor ("compresses ... their disk images"),
//!   with a lazy-matching encoder whose match-finder arena
//!   ([`lzss::Compressor`]) persists across seals.
//! * [`archive`] — the container: writable-layer serialization plus
//!   named records (Tor guard state, metadata);
//!   [`NymArchive::write_into`] serializes straight into a reusable
//!   buffer.
//! * [`sealed`] — password-based authenticated encryption of archives
//!   (PBKDF2 → ChaCha20-Poly1305). [`seal_into`] / [`unseal_raw_into`]
//!   run the whole serialize → compress → encrypt pipeline in a single
//!   pass over one [`SealScratch`] arena with zero hot-path
//!   allocations; [`seal_archive`] / [`open_sealed`] are the
//!   per-call-allocating wrappers. [`SealKey`] derives the KDF once
//!   per chain epoch so delta seals skip it entirely.
//! * [`delta`] — incremental snapshots: a [`DeltaArchive`] carries only
//!   dirty records plus a Merkle-root commitment to the full record
//!   set; replay verifies the root and fails closed on tampering.
//! * [`chunker`] — content-defined chunking (gear-hash rolling window,
//!   2/8/64 KiB min/avg/max): deterministic, edit-local boundaries so a
//!   sub-record write dirties O(1) chunks.
//! * [`cas`] — the content-addressed chunk store: domain-separated
//!   SHA-256 chunk IDs, `"NYMC"` per-record manifests, a refcounted
//!   chunk index with mark-and-sweep GC, and per-chunk sealing bound to
//!   the chunk's identity. Large records ship as manifests + only the
//!   chunks that changed.
//! * [`backend`] — the pluggable [`ObjectBackend`] every store
//!   implements, so snapshot chains and chunk objects move unchanged
//!   between local media and cloud accounts.
//! * [`disk`] — the crash-consistent disk-backed store: a `NYMJ`
//!   write-ahead journal ahead of a log-structured object heap over a
//!   simulated block device with deterministic fault injection, plus a
//!   bounded LRU RAM tier. The only backend whose contents survive
//!   power loss.
//! * [`cloud`] — simulated cloud providers with pseudonymous accounts;
//!   records what the provider *observes* (in a bounded
//!   [`cloud::AccessLog`] ring) so tests can verify the deniability
//!   story ("the cloud provider learns nothing about the account
//!   owner").
//! * [`local`] — local-partition/USB storage, including what a
//!   confiscating adversary finds.
//! * [`placement`] — multi-provider placement: [`PlacementStore`]
//!   stripes every object across N child backends as k-of-n
//!   Reed–Solomon shards in hash-verified `"NYMP"` headers. Reads
//!   reconstruct from any k verified shards (byzantine children
//!   excluded by hash, never decoded), writes degrade to a quorum with
//!   a repair queue, and [`placement::PlacementStore::repair`]
//!   re-achieves full redundancy.
//! * [`versioned`] — retained snapshot history with rollback (the
//!   stained-snapshot escape hatch), generic over the backend.
//!
//! # Durability model
//!
//! The backends differ in what survives which failure:
//!
//! * [`LocalStore`] and [`CloudProvider`] are in-memory models — they
//!   survive nothing; they exist to model *observability* (what a
//!   confiscator or provider sees), not durability.
//! * [`disk::DiskStore`] survives power loss at any instant: every
//!   batch commits through a checksummed write-ahead journal with
//!   explicit fsync barriers, recovery replays or discards the one
//!   in-flight batch, and corruption inside the committed region fails
//!   closed rather than yielding a partial store. `put_many` and
//!   `apply_batch` are **atomic per batch** on disk — after a crash,
//!   exactly the pre-batch or post-batch state is observable. See the
//!   [`disk`] module docs for the commit protocol and the `NYMJ`
//!   on-disk format.
//! * Above any backend, [`VersionedStore`] keeps its snapshot index in
//!   memory; [`VersionedStore::attach`] rebuilds it from a surviving
//!   backend at next open and re-runs any retention sweep a crash
//!   interrupted (sweeps are idempotent).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archive;
pub mod backend;
pub mod cas;
pub mod chunker;
pub mod cloud;
pub mod delta;
pub mod disk;
pub mod local;
pub mod lzss;
pub mod placement;
pub mod sealed;
pub mod versioned;

pub use archive::NymArchive;
pub use backend::{BackendError, ObjectBackend};
pub use cas::{
    build_manifests, chunk_id, chunk_object_name, seal_new_chunks_into, CasError, ChunkId,
    ChunkIndex, ChunkManifest, CHUNK_RECORD_THRESHOLD, INCOMPRESSIBLE_BITS_PER_BYTE,
};
pub use chunker::{chunks, AVG_CHUNK, MAX_CHUNK, MIN_CHUNK};
pub use cloud::{AccessLog, CloudError, CloudProvider, CloudSession};
pub use delta::{
    archive_merkle_root, ArchiveCommitment, DeltaArchive, DeltaError, DELTA_CHAIN_LIMIT,
};
pub use disk::{CrashMode, DiskError, DiskStore, FaultPlan, SimDisk};
pub use local::LocalStore;
pub use placement::{CloudChild, PlacementStore, RepairReport};
pub use sealed::{
    blob_salt, open_sealed, seal_archive, seal_bytes_keyed_into, seal_bytes_keyed_stored_into,
    seal_delta_keyed_into, seal_into, seal_keyed_into, unseal_keyed_raw_into, unseal_raw_into,
    SealKey, SealScratch, SealedError,
};
pub use versioned::VersionedStore;
