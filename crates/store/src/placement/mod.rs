//! Multi-provider placement: k-of-n erasure striping over child
//! backends.
//!
//! One pseudonymous cloud account is both a single point of failure
//! and a single point of surveillance. [`PlacementStore`] removes both
//! by striping every sealed object across N child [`ObjectBackend`]s
//! as k-of-n Reed–Solomon shards ([`gf256`]), each wrapped in a
//! hash-verified [`shard`] (`NYMP`) header. No child ever holds enough
//! to reconstruct an object on its own (for `k > 1`), and no single
//! child outage, throttle or lie can make one unreachable.
//!
//! # The degraded-read / repair / fail-closed model
//!
//! * **Reads** fetch shards child by child, verify each shard's hash
//!   *before* it is allowed anywhere near the decoder, group verified
//!   shards by the whole-object hash embedded in every header (so a
//!   byzantine child serving a stale-but-genuine shard can never mix
//!   versions into one decode), and reconstruct from the first k
//!   verified, version-consistent shards. The decoded bytes are
//!   checked against the object hash once more before they are
//!   returned. Fewer than k verified shards → the read **fails
//!   closed**; bytes are never fabricated from an unverified quorum.
//! * **Absence** is only reported when enough children answer
//!   authoritatively: `Ok(None)` requires at least `n − k + 1` children
//!   to report the object absent — any smaller set is consistent with
//!   the object existing on the unreachable children, so the read
//!   fails [`BackendError::Unavailable`] instead of silently
//!   truncating a delta chain.
//! * **Writes** (`put`, `put_many`, `apply_batch`) land shards on all
//!   n children and track per-child outcomes. [`BackendError::Denied`]
//!   from any child fails the whole operation closed (refused
//!   credentials are not an availability problem). Other failures
//!   degrade: if at least k children accepted, the write **succeeds**
//!   and the missing shards are queued for [`PlacementStore::repair`];
//!   below k the write fails (`Unavailable` when any child was
//!   unreachable). Deletes that miss a child are queued the same way,
//!   so a recovered child's stale shard cannot resurrect a deleted
//!   object.
//! * **Repair** ([`PlacementStore::repair`]) re-reads *only* the
//!   degraded objects, re-encodes them, and re-materializes exactly
//!   the missing shards (and flushes pending deletes), restoring full
//!   n-shard redundancy. Degraded reads feed the same queue: a shard
//!   found absent, corrupt or stale during a successful read is queued
//!   for re-materialization.
//!
//! The `k = 1` degenerate case is n-way mirroring; see [`gf256`] for
//! the coding scheme and [`crate::archive`] for the `NYMP` wire
//! format.

pub mod gf256;
pub mod shard;

use std::collections::{BTreeMap, BTreeSet};

use nymix_net::Ip;
use nymix_sim::{SimDuration, SimTime};

use crate::backend::{BackendError, ObjectBackend};
use crate::cloud::CloudProvider;

/// What one [`PlacementStore::repair`] pass accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RepairReport {
    /// Missing/stale shards successfully re-materialized.
    pub shards_rebuilt: usize,
    /// Queued deletes successfully flushed to recovered children.
    pub deletes_flushed: usize,
    /// Degraded objects that could not be read back (left queued).
    pub objects_unrecovered: usize,
    /// Shards still missing after the pass (left queued).
    pub shards_still_missing: usize,
}

/// Shards of one object version, keyed by the header's
/// `(object_len, object_hash)` — the version-consistency anchor.
type GroupKey = (u64, [u8; 32]);

/// A successful degraded-or-healthy read, before it reaches the
/// caller: the reconstructed bytes plus the children whose shard was
/// absent, corrupt or stale and should be re-materialized.
struct DecodedRead {
    bytes: Vec<u8>,
    refresh: BTreeSet<u8>,
}

/// k-of-n erasure striping over N child backends. See the module docs
/// for the degraded-read / repair / fail-closed model.
pub struct PlacementStore<B> {
    children: Vec<B>,
    k: u8,
    /// object name → children whose shard needs re-materializing.
    repair_queue: BTreeMap<String, BTreeSet<u8>>,
    /// object name → children whose delete has not landed yet.
    pending_deletes: BTreeMap<String, BTreeSet<u8>>,
    read_buf: Vec<u8>,
}

impl<B: ObjectBackend> PlacementStore<B> {
    /// A placement over `children` where any `k` of them reconstruct
    /// every object. `k = 1` is n-way mirroring.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= k <= children.len() <= gf256::MAX_SHARDS`.
    pub fn new(children: Vec<B>, k: usize) -> Self {
        assert!(
            (1..=children.len()).contains(&k) && children.len() <= gf256::MAX_SHARDS,
            "invalid placement config k={k} n={}",
            children.len()
        );
        Self {
            children,
            k: k as u8,
            repair_queue: BTreeMap::new(),
            pending_deletes: BTreeMap::new(),
            read_buf: Vec::new(),
        }
    }

    /// Stripes needed to reconstruct an object.
    pub fn k(&self) -> usize {
        self.k as usize
    }

    /// Total children (shards per object).
    pub fn n(&self) -> usize {
        self.children.len()
    }

    /// Stored-bytes amplification of this redundancy level (n / k).
    pub fn redundancy_overhead(&self) -> f64 {
        self.n() as f64 / self.k() as f64
    }

    /// The child backends.
    pub fn children(&self) -> &[B] {
        &self.children
    }

    /// Mutable access to child `i` (tests arm faults through this).
    pub fn child_mut(&mut self, i: usize) -> &mut B {
        &mut self.children[i]
    }

    /// Shards currently queued for re-materialization.
    pub fn pending_repairs(&self) -> usize {
        self.repair_queue.values().map(BTreeSet::len).sum()
    }

    /// Object names with missing shards, in name order.
    pub fn queued_objects(&self) -> Vec<String> {
        self.repair_queue.keys().cloned().collect()
    }

    /// Deletes queued for children that were unreachable when the
    /// delete ran.
    pub fn pending_delete_count(&self) -> usize {
        self.pending_deletes.values().map(BTreeSet::len).sum()
    }

    /// Objects stored on each child (shard counts, by child index).
    /// Full redundancy means every entry equals every other.
    pub fn shard_counts(&mut self) -> Result<Vec<usize>, BackendError> {
        let mut counts = Vec::with_capacity(self.children.len());
        for child in &mut self.children {
            let mut names = Vec::new();
            child.list(&mut names)?;
            counts.push(names.len());
        }
        Ok(counts)
    }

    fn encode_object(&self, name: &str, data: &[u8]) -> Vec<Vec<u8>> {
        let (k, n) = (self.k as usize, self.children.len());
        let oh = shard::object_hash(data);
        gf256::encode(data, k, n)
            .iter()
            .enumerate()
            .map(|(i, payload)| {
                shard::encode_shard(
                    name,
                    i as u8,
                    self.k,
                    n as u8,
                    data.len() as u64,
                    &oh,
                    payload,
                )
            })
            .collect()
    }

    /// Settles one fan-out write: per-child outcomes become quorum
    /// success (missing shards queued) or closed failure.
    fn settle_writes(
        &mut self,
        put_names: &[String],
        delete_names: &[String],
        outcomes: Vec<Result<(), BackendError>>,
    ) -> Result<(), BackendError> {
        let _span = nymix_obs::span!("quorum_wait", "objects" => put_names.len());
        let (k, n) = (self.k as usize, self.children.len());
        let mut failed: Vec<u8> = Vec::new();
        let mut saw_unreachable = false;
        let mut detail = String::new();
        for (ci, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Ok(()) => {
                    nymix_obs::counter!("placement.shard_writes", put_names.len());
                    // A landed write supersedes any delete still queued
                    // for this child; flushing it later would destroy
                    // the fresh shard.
                    for name in put_names {
                        if let Some(set) = self.pending_deletes.get_mut(name) {
                            set.remove(&(ci as u8));
                            if set.is_empty() {
                                self.pending_deletes.remove(name);
                            }
                        }
                    }
                }
                Err(BackendError::Denied) => return Err(BackendError::Denied),
                Err(e) => {
                    nymix_obs::counter!("placement.shard_failures", put_names.len());
                    saw_unreachable |=
                        matches!(e, BackendError::Unavailable(_) | BackendError::Transient(_));
                    detail = e.to_string();
                    failed.push(ci as u8);
                }
            }
        }
        // A delete retires the object logically even when some child
        // still holds a shard — queue the stragglers, drop any repair
        // work for a name that no longer exists.
        for name in delete_names {
            self.repair_queue.remove(name);
        }
        if n - failed.len() < k {
            let msg = format!(
                "{} of {n} children accepted (need {k}): {detail}",
                n - failed.len()
            );
            return Err(if saw_unreachable {
                BackendError::Unavailable(msg)
            } else {
                BackendError::Other(msg)
            });
        }
        for ci in failed {
            for name in put_names {
                self.repair_queue
                    .entry(name.clone())
                    .or_default()
                    .insert(ci);
            }
            for name in delete_names {
                self.pending_deletes
                    .entry(name.clone())
                    .or_default()
                    .insert(ci);
            }
        }
        self.publish_queue_gauges();
        Ok(())
    }

    /// Publishes the repair/delete backlog depths as obs gauges (only
    /// when the recorder is on — the depths are O(queue) to compute).
    fn publish_queue_gauges(&self) {
        if nymix_obs::enabled() {
            nymix_obs::gauge!("placement.repair_queue", self.pending_repairs());
            nymix_obs::gauge!("placement.pending_deletes", self.pending_delete_count());
        }
    }

    /// Fetches, verifies and reconstructs one object. Pure with
    /// respect to the queues — callers decide what to queue from
    /// `refresh` — so [`PlacementStore::repair`] can reuse it without
    /// re-queueing its own reads.
    fn fetch_decoded(&mut self, name: &str) -> Result<Option<DecodedRead>, BackendError> {
        let (k, n) = (self.k as usize, self.children.len());
        let ignore: BTreeSet<u8> = self.pending_deletes.get(name).cloned().unwrap_or_default();
        let queued: BTreeSet<u8> = self.repair_queue.get(name).cloned().unwrap_or_default();
        // Verified shards per object version; each entry keeps its
        // first shard per distinct index: (index, child, payload).
        let mut groups: BTreeMap<GroupKey, Vec<(u8, u8, Vec<u8>)>> = BTreeMap::new();
        // Children whose shard was absent, corrupt, or stale.
        let mut bad: BTreeSet<u8> = BTreeSet::new();
        // Children proven not to hold a live shard: a pending delete,
        // or an "absent" answer from a child with no queued repair for
        // this object (every write a child missed *is* queued, so a
        // clean child answering "absent" rules the object out).
        let mut strong_absent = 0usize;
        // Children whose live-shard status is known at all (answered,
        // or logically deleted) — the denominator absence is judged
        // against when some children are unreachable.
        let mut determined = 0usize;
        let mut unreachable = 0usize;
        for ci in 0..n {
            if ignore.contains(&(ci as u8)) {
                // This child's shard is scheduled for deletion; letting
                // it vote would resurrect a deleted object.
                strong_absent += 1;
                determined += 1;
                continue;
            }
            let ready = match self.children[ci].get(name) {
                Ok(None) => {
                    if !queued.contains(&(ci as u8)) {
                        strong_absent += 1;
                    }
                    determined += 1;
                    bad.insert(ci as u8);
                    false
                }
                Ok(Some(blob)) => {
                    determined += 1;
                    match shard::decode_shard(blob, name) {
                        Ok((hdr, payload))
                            if hdr.k == self.k && hdr.n as usize == n && hdr.index < hdr.n =>
                        {
                            let key = (hdr.object_len, hdr.object_hash);
                            let group = groups.entry(key).or_default();
                            if !group.iter().any(|&(idx, _, _)| idx == hdr.index) {
                                group.push((hdr.index, ci as u8, payload.to_vec()));
                            }
                            group.len() >= k
                        }
                        _ => {
                            bad.insert(ci as u8);
                            false
                        }
                    }
                }
                Err(BackendError::Denied) => return Err(BackendError::Denied),
                Err(_) => {
                    // The shard is probably intact, just unreachable —
                    // not repair work, and not an authoritative absence.
                    unreachable += 1;
                    false
                }
            };
            if ready {
                // A full quorum of one version: the healthy path reads
                // exactly k children.
                break;
            }
        }
        // Decode the best-supported version first: more children
        // agreeing beats the arbitrary map order when a byzantine
        // minority pushes a stale version.
        let mut versions: Vec<_> = groups.iter().collect();
        versions.sort_by_key(|(_, shards)| std::cmp::Reverse(shards.len()));
        for (key, shards) in versions {
            if shards.len() < k {
                continue;
            }
            let sel: Vec<(usize, &[u8])> = shards
                .iter()
                .map(|(idx, _, payload)| (*idx as usize, payload.as_slice()))
                .collect();
            let Some(bytes) = gf256::reconstruct(&sel, k, key.0 as usize) else {
                continue;
            };
            if shard::object_hash(&bytes) != key.1 {
                continue; // Correct bytes or nothing.
            }
            let winners: BTreeSet<u8> = shards.iter().map(|&(_, ci, _)| ci).collect();
            let mut refresh = bad;
            for shards in groups.values() {
                for &(_, ci, _) in shards {
                    if !winners.contains(&ci) {
                        refresh.insert(ci); // stale-version contributor
                    }
                }
            }
            return Ok(Some(DecodedRead { bytes, refresh }));
        }
        // No version reached a verified quorum. Absence is
        // authoritative when enough children *proved* they hold no
        // live shard: n−k+1 proofs normally (so no lone lying child
        // can truncate a delta chain), relaxed to "every child whose
        // status is knowable" when outages leave fewer than that —
        // an unreachable child with no queued repair would hold
        // exactly what its reachable peers hold, so their unanimous
        // "absent" settles it.
        let needed = (n - k + 1).min(determined).max(1);
        if strong_absent >= needed {
            return Ok(None);
        }
        if unreachable > 0 {
            return Err(BackendError::Unavailable(format!(
                "fewer than {k} verified shards for {name}: {unreachable} of {n} children unreachable"
            )));
        }
        Err(BackendError::Other(format!(
            "fewer than {k} verified shards for {name}: object present but unreconstructable"
        )))
    }

    /// Flushes pending deletes and re-materializes every queued shard,
    /// re-reading **only** the degraded objects. Children that are
    /// still failing leave their entries queued for the next pass;
    /// repair itself never fails the store.
    pub fn repair(&mut self) -> RepairReport {
        let _span = nymix_obs::span!("repair");
        nymix_obs::counter!("placement.repair_passes", 1u64);
        let mut report = RepairReport::default();
        // Deletes first: a queued delete and a queued re-materialize
        // for the same (object, child) must not land new-then-delete.
        let deletes: Vec<(String, BTreeSet<u8>)> = std::mem::take(&mut self.pending_deletes)
            .into_iter()
            .collect();
        for (name, children) in deletes {
            for ci in children {
                match self.children[ci as usize].delete(&name) {
                    Ok(_) => report.deletes_flushed += 1,
                    Err(_) => {
                        self.pending_deletes
                            .entry(name.clone())
                            .or_default()
                            .insert(ci);
                    }
                }
            }
        }
        let work: Vec<(String, BTreeSet<u8>)> =
            std::mem::take(&mut self.repair_queue).into_iter().collect();
        for (name, mut missing) in work {
            match self.fetch_decoded(&name) {
                Ok(Some(decoded)) => {
                    // Anything found degraded during the read joins
                    // this pass instead of waiting for the next one.
                    missing.extend(decoded.refresh.iter().copied());
                    let shards = self.encode_object(&name, &decoded.bytes);
                    for ci in missing {
                        match self.children[ci as usize].put(&name, shards[ci as usize].clone()) {
                            Ok(()) => report.shards_rebuilt += 1,
                            Err(_) => {
                                report.shards_still_missing += 1;
                                self.repair_queue
                                    .entry(name.clone())
                                    .or_default()
                                    .insert(ci);
                            }
                        }
                    }
                }
                // The object no longer exists; nothing to rebuild.
                Ok(None) => {}
                Err(_) => {
                    report.objects_unrecovered += 1;
                    report.shards_still_missing += missing.len();
                    self.repair_queue.insert(name, missing);
                }
            }
        }
        nymix_obs::counter!("placement.shards_rebuilt", report.shards_rebuilt);
        nymix_obs::counter!("placement.deletes_flushed", report.deletes_flushed);
        self.publish_queue_gauges();
        report
    }
}

impl<B: ObjectBackend> ObjectBackend for PlacementStore<B> {
    fn put(&mut self, name: &str, data: Vec<u8>) -> Result<(), BackendError> {
        let _span = nymix_obs::span!("shard_write", "objects" => 1u64, "bytes" => data.len());
        let shards = self.encode_object(name, &data);
        let outcomes: Vec<Result<(), BackendError>> = self
            .children
            .iter_mut()
            .zip(shards)
            .map(|(child, blob)| child.put(name, blob))
            .collect();
        self.settle_writes(&[name.to_string()], &[], outcomes)
    }

    fn put_many(&mut self, objects: Vec<(String, Vec<u8>)>) -> Result<(), BackendError> {
        self.apply_batch(objects, Vec::new())
    }

    /// One batch per child — the round-trip amortization survives the
    /// fan-out. A child that fails its batch is conservatively assumed
    /// to have landed none of it (the trait only promises a prefix),
    /// so every object of the batch is queued for repair on that child.
    fn apply_batch(
        &mut self,
        puts: Vec<(String, Vec<u8>)>,
        deletes: Vec<String>,
    ) -> Result<(), BackendError> {
        let _span = nymix_obs::span!("shard_write", "objects" => puts.len());
        let n = self.children.len();
        let mut per_child: Vec<Vec<(String, Vec<u8>)>> =
            (0..n).map(|_| Vec::with_capacity(puts.len())).collect();
        let put_names: Vec<String> = puts.iter().map(|(name, _)| name.clone()).collect();
        for (name, data) in &puts {
            for (ci, blob) in self.encode_object(name, data).into_iter().enumerate() {
                per_child[ci].push((name.clone(), blob));
            }
        }
        let outcomes: Vec<Result<(), BackendError>> = per_child
            .into_iter()
            .enumerate()
            .map(|(ci, batch)| self.children[ci].apply_batch(batch, deletes.clone()))
            .collect();
        self.settle_writes(&put_names, &deletes, outcomes)
    }

    fn get(&mut self, name: &str) -> Result<Option<&[u8]>, BackendError> {
        match self.fetch_decoded(name)? {
            Some(decoded) => {
                if !decoded.refresh.is_empty() {
                    self.repair_queue
                        .entry(name.to_string())
                        .or_default()
                        .extend(decoded.refresh.iter().copied());
                }
                self.read_buf = decoded.bytes;
                Ok(Some(&self.read_buf))
            }
            None => Ok(None),
        }
    }

    fn delete(&mut self, name: &str) -> Result<bool, BackendError> {
        let mut existed = false;
        let mut failed: Vec<u8> = Vec::new();
        for (ci, child) in self.children.iter_mut().enumerate() {
            match child.delete(name) {
                Ok(e) => existed |= e,
                Err(BackendError::Denied) => return Err(BackendError::Denied),
                Err(_) => failed.push(ci as u8),
            }
        }
        self.repair_queue.remove(name);
        if failed.len() == self.children.len() {
            return Err(BackendError::Unavailable(
                "no child reachable for delete".into(),
            ));
        }
        for ci in failed {
            self.pending_deletes
                .entry(name.to_string())
                .or_default()
                .insert(ci);
        }
        Ok(existed)
    }

    /// The union of child listings. Complete as long as no more than
    /// `n − k` children are unreachable (every object has at least k
    /// shards, so some reachable child lists it); beyond that the
    /// listing fails closed rather than silently omitting objects.
    fn list(&mut self, out: &mut Vec<String>) -> Result<(), BackendError> {
        let (k, n) = (self.k as usize, self.children.len());
        let mut names = BTreeSet::new();
        let mut failures = 0usize;
        for child in &mut self.children {
            let mut child_names = Vec::new();
            match child.list(&mut child_names) {
                Ok(()) => names.extend(child_names),
                Err(BackendError::Denied) => return Err(BackendError::Denied),
                Err(_) => failures += 1,
            }
        }
        if failures > n - k {
            return Err(BackendError::Unavailable(format!(
                "{failures} of {n} children unreachable: listing would be incomplete"
            )));
        }
        out.extend(names);
        Ok(())
    }
}

/// One owned cloud provider presented as a placement child: every
/// operation opens a credentialed session against the provider and is
/// observed (access-logged) at the provider with the configured source
/// address — the anonymizer exit the manager routes striped traffic
/// through. Retry backoff accrued by sessions accumulates here for the
/// save pipeline to charge to the simulated clock.
pub struct CloudChild {
    provider: CloudProvider,
    account: String,
    credential: String,
    observed_ip: Ip,
    backoff: SimDuration,
    read_buf: Vec<u8>,
}

impl CloudChild {
    /// Wraps an owned provider; `account` must already exist on it.
    pub fn new(provider: CloudProvider, account: &str, credential: &str) -> Self {
        Self {
            provider,
            account: account.to_string(),
            credential: credential.to_string(),
            observed_ip: Ip([0, 0, 0, 0]),
            backoff: SimDuration::ZERO,
            read_buf: Vec::new(),
        }
    }

    /// The wrapped provider (fault arming, access-log inspection).
    pub fn provider(&self) -> &CloudProvider {
        &self.provider
    }

    /// Mutable provider access.
    pub fn provider_mut(&mut self) -> &mut CloudProvider {
        &mut self.provider
    }

    /// The pseudonymous account this child writes under.
    pub fn account(&self) -> &str {
        &self.account
    }

    /// Sets the source address the provider will observe (an
    /// anonymizer exit, never the user).
    pub fn set_observed_ip(&mut self, ip: Ip) {
        self.observed_ip = ip;
    }

    /// Advances the provider's scheduled-fault clock.
    pub fn set_now(&mut self, now: SimTime) {
        self.provider.set_now(now);
    }

    /// Drains the simulated retry backoff accrued since the last call.
    pub fn take_accrued_backoff(&mut self) -> SimDuration {
        std::mem::take(&mut self.backoff)
    }
}

impl ObjectBackend for CloudChild {
    fn put(&mut self, name: &str, data: Vec<u8>) -> Result<(), BackendError> {
        let mut s = self
            .provider
            .session(&self.account, &self.credential, self.observed_ip);
        let r = s.put(name, data);
        self.backoff = self.backoff.saturating_add(s.take_accrued_backoff());
        r
    }

    fn put_many(&mut self, objects: Vec<(String, Vec<u8>)>) -> Result<(), BackendError> {
        let mut s = self
            .provider
            .session(&self.account, &self.credential, self.observed_ip);
        let r = s.put_many(objects);
        self.backoff = self.backoff.saturating_add(s.take_accrued_backoff());
        r
    }

    fn apply_batch(
        &mut self,
        puts: Vec<(String, Vec<u8>)>,
        deletes: Vec<String>,
    ) -> Result<(), BackendError> {
        let mut s = self
            .provider
            .session(&self.account, &self.credential, self.observed_ip);
        let r = (|| {
            s.put_many(puts)?;
            for name in &deletes {
                // Strict (unlike the best-effort single-backend sweep):
                // a delete the child never saw must be reported so the
                // placement layer queues it, or a recovered child's
                // stale shard could resurrect the object.
                s.delete(name)?;
            }
            Ok(())
        })();
        self.backoff = self.backoff.saturating_add(s.take_accrued_backoff());
        r
    }

    fn get(&mut self, name: &str) -> Result<Option<&[u8]>, BackendError> {
        let mut s = self
            .provider
            .session(&self.account, &self.credential, self.observed_ip);
        match s.get(name) {
            Ok(Some(data)) => {
                let owned = data.to_vec();
                self.read_buf = owned;
                Ok(Some(&self.read_buf))
            }
            Ok(None) => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn delete(&mut self, name: &str) -> Result<bool, BackendError> {
        self.provider
            .session(&self.account, &self.credential, self.observed_ip)
            .delete(name)
    }

    fn list(&mut self, out: &mut Vec<String>) -> Result<(), BackendError> {
        self.provider
            .session(&self.account, &self.credential, self.observed_ip)
            .list(out)
    }
}

impl PlacementStore<CloudChild> {
    /// Advances every child provider's scheduled-fault clock.
    pub fn set_now(&mut self, now: SimTime) {
        for child in &mut self.children {
            child.set_now(now);
        }
    }

    /// Routes every child's traffic through `exit` (what the providers
    /// observe).
    pub fn set_observed_ip(&mut self, exit: Ip) {
        for child in &mut self.children {
            child.set_observed_ip(exit);
        }
    }

    /// Drains simulated retry backoff accrued across all children.
    pub fn take_accrued_backoff(&mut self) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for child in &mut self.children {
            total = total.saturating_add(child.take_accrued_backoff());
        }
        total
    }

    /// The child provider named `name`, if present.
    pub fn provider(&self, name: &str) -> Option<&CloudProvider> {
        self.children
            .iter()
            .map(CloudChild::provider)
            .find(|p| p.name() == name)
    }

    /// Mutable access to the child provider named `name`.
    pub fn provider_mut(&mut self, name: &str) -> Option<&mut CloudProvider> {
        self.children
            .iter_mut()
            .find(|c| c.provider.name() == name)
            .map(CloudChild::provider_mut)
    }
}

#[cfg(test)]
mod tests;
