//! Store-level placement tests: quorum writes, verified degraded
//! reads, byzantine exclusion, fail-closed floors, and targeted
//! repair — across the (k, n) configuration space, not one layout.

use super::*;
use crate::local::LocalStore;

/// A child wrapper with switchable failure modes and operation
/// counters — the store-level stand-in for a provider outage.
struct TestChild {
    inner: LocalStore,
    fail_reads: bool,
    fail_writes: bool,
    deny: bool,
    gets: usize,
}

impl TestChild {
    fn new() -> Self {
        Self {
            inner: LocalStore::new(),
            fail_reads: false,
            fail_writes: false,
            deny: false,
            gets: 0,
        }
    }

    fn down(&mut self, down: bool) {
        self.fail_reads = down;
        self.fail_writes = down;
    }

    fn gate(&self, write: bool) -> Result<(), BackendError> {
        if self.deny {
            return Err(BackendError::Denied);
        }
        if (write && self.fail_writes) || (!write && self.fail_reads) {
            return Err(BackendError::Unavailable("child down".into()));
        }
        Ok(())
    }
}

impl ObjectBackend for TestChild {
    fn put(&mut self, name: &str, data: Vec<u8>) -> Result<(), BackendError> {
        self.gate(true)?;
        self.inner.put(name, data);
        Ok(())
    }

    fn get(&mut self, name: &str) -> Result<Option<&[u8]>, BackendError> {
        self.gate(false)?;
        self.gets += 1;
        Ok(self.inner.get(name))
    }

    fn delete(&mut self, name: &str) -> Result<bool, BackendError> {
        self.gate(true)?;
        Ok(self.inner.delete(name))
    }

    fn list(&mut self, out: &mut Vec<String>) -> Result<(), BackendError> {
        self.gate(false)?;
        out.extend(self.inner.list().into_iter().map(String::from));
        Ok(())
    }
}

fn store(k: usize, n: usize) -> PlacementStore<TestChild> {
    PlacementStore::new((0..n).map(|_| TestChild::new()).collect(), k)
}

fn payload(tag: u8, len: usize) -> Vec<u8> {
    (0..len).map(|i| (i as u8).wrapping_mul(37) ^ tag).collect()
}

#[test]
fn roundtrip_across_config_space() {
    for (k, n) in [(1, 1), (1, 2), (1, 3), (2, 3), (3, 5), (2, 2)] {
        let mut s = store(k, n);
        for (i, len) in [0usize, 1, 100, 5000].into_iter().enumerate() {
            let name = format!("obj{i}");
            let data = payload(i as u8, len);
            s.put(&name, data.clone()).unwrap();
            assert_eq!(
                s.get(&name).unwrap(),
                Some(&data[..]),
                "k={k} n={n} len={len}"
            );
        }
        assert_eq!(s.get("ghost").unwrap(), None);
        assert_eq!(s.shard_counts().unwrap(), vec![4; n]);
        assert_eq!(s.pending_repairs(), 0);
    }
}

#[test]
fn every_single_child_loss_is_survivable_in_2_of_3() {
    let data = payload(9, 4096);
    for down in 0..3 {
        let mut s = store(2, 3);
        s.put("x", data.clone()).unwrap();
        s.child_mut(down).down(true);
        assert_eq!(s.get("x").unwrap(), Some(&data[..]), "child {down} down");
    }
}

#[test]
fn degraded_write_meets_quorum_and_queues_repair() {
    let mut s = store(2, 3);
    s.child_mut(2).down(true);
    let data = payload(1, 2000);
    s.put("x", data.clone()).unwrap(); // 2 of 3 landed: success
    assert_eq!(s.pending_repairs(), 1);
    assert_eq!(s.queued_objects(), vec!["x"]);
    assert_eq!(s.get("x").unwrap(), Some(&data[..]));

    // The child recovers; repair re-materializes exactly its shard.
    s.child_mut(2).down(false);
    let report = s.repair();
    assert_eq!(report.shards_rebuilt, 1);
    assert_eq!(report.shards_still_missing, 0);
    assert_eq!(s.pending_repairs(), 0);
    assert_eq!(s.shard_counts().unwrap(), vec![1, 1, 1]);
    // Full redundancy again: any single child now suffices to fail.
    s.child_mut(0).down(true);
    assert_eq!(s.get("x").unwrap(), Some(&data[..]));
}

#[test]
fn write_below_quorum_fails_unavailable() {
    let mut s = store(2, 3);
    s.child_mut(0).down(true);
    s.child_mut(1).down(true);
    let err = s.put("x", payload(2, 100)).unwrap_err();
    assert!(matches!(err, BackendError::Unavailable(_)), "got {err:?}");
    // Nothing was queued for a write that reported failure.
    assert_eq!(s.pending_repairs(), 0);
}

#[test]
fn read_below_quorum_fails_closed_not_absent() {
    let mut s = store(2, 3);
    s.put("x", payload(3, 500)).unwrap();
    // n−k+1 = 2 children lost: the object is unreadable, and crucially
    // the error is Unavailable — never Ok(None), which would silently
    // truncate a delta chain.
    s.child_mut(0).down(true);
    s.child_mut(1).down(true);
    let err = s.get("x").unwrap_err();
    assert!(matches!(err, BackendError::Unavailable(_)), "got {err:?}");
    // A genuinely absent object still reads as absent while a minority
    // of children is down (the reachable majority is authoritative).
    s.child_mut(1).down(false);
    assert_eq!(s.get("ghost").unwrap(), None);
}

#[test]
fn denied_child_fails_everything_closed() {
    let mut s = store(2, 3);
    s.put("x", payload(4, 100)).unwrap();
    s.child_mut(1).deny = true;
    assert_eq!(s.put("y", vec![1]), Err(BackendError::Denied));
    assert_eq!(s.get("x"), Err(BackendError::Denied));
    let mut names = Vec::new();
    assert_eq!(s.list(&mut names), Err(BackendError::Denied));
}

#[test]
fn garbage_shards_are_excluded_not_decoded() {
    let mut s = store(2, 3);
    let data = payload(5, 3000);
    s.put("x", data.clone()).unwrap();
    // One child serves garbage of the right length: hash verification
    // excludes it and the read reconstructs from the two survivors.
    let shard_len = s.child_mut(0).inner.get("x").unwrap().len();
    s.child_mut(0).inner.put("x", vec![0xAA; shard_len]);
    assert_eq!(s.get("x").unwrap(), Some(&data[..]));
    // The lying child was queued for re-materialization.
    assert_eq!(s.queued_objects(), vec!["x"]);
    let report = s.repair();
    assert_eq!(report.shards_rebuilt, 1);
    assert_eq!(s.get("x").unwrap(), Some(&data[..]));
    assert_eq!(s.pending_repairs(), 0);
}

#[test]
fn stale_shards_cannot_mix_into_a_decode() {
    let mut s = store(2, 3);
    let old = payload(6, 2048);
    let new = payload(7, 2048);
    s.put("x", old.clone()).unwrap();
    // Child 0 keeps the old version (a byzantine provider serving
    // stale): snapshot its shard, overwrite everything, restore it.
    let stale = s.child_mut(0).inner.get("x").unwrap().to_vec();
    s.put("x", new.clone()).unwrap();
    s.child_mut(0).inner.put("x", stale);
    // The stale shard is hash-valid — but its object hash groups it
    // apart, so the decode uses only the two new-version shards.
    assert_eq!(s.get("x").unwrap(), Some(&new[..]));
    // And the stale child is queued for refresh.
    assert_eq!(s.queued_objects(), vec!["x"]);
}

#[test]
fn corruption_beyond_tolerance_fails_closed_with_children_up() {
    let mut s = store(2, 3);
    s.put("x", payload(8, 1000)).unwrap();
    for ci in 0..2 {
        let len = s.child_mut(ci).inner.get("x").unwrap().len();
        s.child_mut(ci).inner.put("x", vec![0x55; len]);
    }
    // Only one verified shard left: present but unreconstructable is a
    // permanent failure, not Unavailable (nothing is down) and never
    // wrong bytes.
    let err = s.get("x").unwrap_err();
    assert!(matches!(err, BackendError::Other(_)), "got {err:?}");
}

#[test]
fn mirror_mode_survives_all_but_one() {
    let mut s = store(1, 3);
    let data = payload(9, 777);
    s.put("x", data.clone()).unwrap();
    s.child_mut(0).down(true);
    s.child_mut(2).down(true);
    assert_eq!(s.get("x").unwrap(), Some(&data[..]));
}

#[test]
fn batched_writes_fan_out_one_batch_per_child_and_degrade() {
    let mut s = store(2, 3);
    s.child_mut(1).down(true);
    let objects: Vec<(String, Vec<u8>)> = (0..4)
        .map(|i| (format!("o{i}"), payload(i as u8, 800)))
        .collect();
    s.put_many(objects.clone()).unwrap();
    // Every object of the batch is queued for the failed child.
    assert_eq!(s.pending_repairs(), 4);
    for (name, data) in &objects {
        assert_eq!(s.get(name).unwrap(), Some(&data[..]));
    }
    s.child_mut(1).down(false);
    let report = s.repair();
    assert_eq!(report.shards_rebuilt, 4);
    assert_eq!(s.shard_counts().unwrap(), vec![4, 4, 4]);
}

#[test]
fn apply_batch_deletes_are_queued_on_down_children_and_do_not_resurrect() {
    let mut s = store(1, 2); // mirroring: the resurrection-prone case
    s.put("x", payload(1, 64)).unwrap();
    s.child_mut(1).down(true);
    // The delete lands on child 0 only; child 1 still holds a copy.
    s.apply_batch(vec![("y".into(), payload(2, 64))], vec!["x".into()])
        .unwrap();
    assert_eq!(s.pending_delete_count(), 1);
    // Child 1 comes back with its stale copy — the pending delete
    // keeps the object dead instead of resurrecting it.
    s.child_mut(1).down(false);
    assert_eq!(s.get("x").unwrap(), None);
    let report = s.repair();
    assert_eq!(report.deletes_flushed, 1);
    assert_eq!(s.get("x").unwrap(), None);
    assert!(s.child_mut(1).inner.get("x").is_none());
}

#[test]
fn repair_reads_only_the_degraded_objects() {
    let mut s = store(2, 3);
    for i in 0..10 {
        s.put(&format!("healthy{i}"), payload(i as u8, 256))
            .unwrap();
    }
    s.child_mut(2).down(true);
    s.put("degraded0", payload(20, 256)).unwrap();
    s.put("degraded1", payload(21, 256)).unwrap();
    s.child_mut(2).down(false);
    let before: Vec<usize> = (0..3).map(|ci| s.child_mut(ci).gets).collect();
    let report = s.repair();
    assert_eq!(report.shards_rebuilt, 2);
    let after: Vec<usize> = (0..3).map(|ci| s.child_mut(ci).gets).collect();
    // The acceptance bar: repair re-read no more than the 2 degraded
    // objects per child — the 10 healthy objects were never touched.
    for ci in 0..3 {
        assert!(
            after[ci] - before[ci] <= 2,
            "child {ci} read {} objects during repair",
            after[ci] - before[ci]
        );
    }
}

#[test]
fn repair_against_a_still_down_child_requeues() {
    let mut s = store(2, 3);
    s.child_mut(2).down(true);
    s.put("x", payload(3, 128)).unwrap();
    let report = s.repair();
    assert_eq!(report.shards_rebuilt, 0);
    assert_eq!(report.shards_still_missing, 1);
    assert_eq!(s.pending_repairs(), 1);
    s.child_mut(2).down(false);
    assert_eq!(s.repair().shards_rebuilt, 1);
    assert_eq!(s.pending_repairs(), 0);
}

#[test]
fn list_unions_children_and_fails_closed_past_tolerance() {
    let mut s = store(2, 3);
    s.put("a", payload(1, 64)).unwrap();
    s.put("b", payload(2, 64)).unwrap();
    s.child_mut(0).down(true);
    let mut names = Vec::new();
    s.list(&mut names).unwrap();
    assert_eq!(names, vec!["a", "b"]);
    s.child_mut(1).down(true);
    let mut names = Vec::new();
    let err = s.list(&mut names).unwrap_err();
    assert!(matches!(err, BackendError::Unavailable(_)), "got {err:?}");
}

#[test]
fn storage_overhead_matches_redundancy_level() {
    // n/k amplification on payload bytes (headers add a small constant
    // per shard).
    for (k, n) in [(1, 2), (2, 3), (3, 5)] {
        let mut s = store(k, n);
        let data = payload(0, 64 * 1024);
        s.put("x", data.clone()).unwrap();
        let stored: usize = (0..n)
            .map(|ci| s.child_mut(ci).inner.get("x").unwrap().len())
            .sum();
        let expected = gf256::stripe_len(data.len(), k) * n;
        assert!(stored >= expected, "k={k} n={n}");
        assert!(
            stored < expected + n * (shard::FIXED_LEN + 8),
            "k={k} n={n}: header overhead larger than expected"
        );
        assert!((s.redundancy_overhead() - n as f64 / k as f64).abs() < 1e-9);
    }
}

#[test]
#[should_panic(expected = "invalid placement config")]
fn k_above_n_rejected() {
    let _ = store(4, 3);
}
