//! GF(256) arithmetic and systematic Reed–Solomon erasure coding.
//!
//! The field is GF(2⁸) with the reducing polynomial `x⁸+x⁴+x³+x²+1`
//! (0x11D, the classic RS/QR polynomial; 2 is a primitive element).
//! Log/exp tables are built at compile time, so multiplication is two
//! lookups and an add — fast enough that reconstructing a 64 KiB
//! object is a few hundred microseconds of pure table work.
//!
//! Encoding is **systematic**: the n×k generator matrix is a
//! Vandermonde matrix (rows `[xᵢ⁰ … xᵢᵏ⁻¹]` for distinct field points
//! `xᵢ = i`) post-multiplied by the inverse of its own top k×k block,
//! so the first k rows are the identity — data shards are plain
//! stripes of the object, parity shards are field combinations of
//! them. Any k rows of the result stay invertible (the Vandermonde
//! property survives multiplication by an invertible matrix), which is
//! exactly the k-of-n reconstruction guarantee.
//!
//! `k = 1` degenerates to n-way mirroring: every row of the generator
//! is `[1]`, so every shard is a verbatim copy of the object.

/// Upper bound on shard count: indices fit a `u8` with headroom and a
/// placement wider than this models no realistic provider set.
pub const MAX_SHARDS: usize = 16;

const fn build_tables() -> ([u8; 512], [u8; 256]) {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= 0x11d;
        }
        i += 1;
    }
    // Mirror the cycle so `exp[log a + log b]` needs no reduction.
    while i < 512 {
        exp[i] = exp[i - 255];
        i += 1;
    }
    (exp, log)
}

const TABLES: ([u8; 512], [u8; 256]) = build_tables();
const EXP: [u8; 512] = TABLES.0;
const LOG: [u8; 256] = TABLES.1;

/// GF(256) multiplication.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
    }
}

/// GF(256) multiplicative inverse (`a` must be non-zero).
#[inline]
fn inv(a: u8) -> u8 {
    debug_assert!(a != 0, "zero has no inverse");
    EXP[255 - LOG[a as usize] as usize]
}

/// `x` raised to `e` in GF(256).
fn pow(x: u8, e: usize) -> u8 {
    if e == 0 {
        return 1;
    }
    if x == 0 {
        return 0;
    }
    EXP[(LOG[x as usize] as usize * e) % 255]
}

/// Inverts a k×k matrix over GF(256) by Gauss–Jordan elimination.
/// Returns `None` for a singular matrix (cannot happen for the row
/// selections this module builds, but the decoder still refuses to
/// fabricate bytes rather than panic).
fn invert(mut m: Vec<Vec<u8>>) -> Option<Vec<Vec<u8>>> {
    let k = m.len();
    let mut out: Vec<Vec<u8>> = (0..k)
        .map(|i| (0..k).map(|j| u8::from(i == j)).collect())
        .collect();
    for col in 0..k {
        let pivot = (col..k).find(|&r| m[r][col] != 0)?;
        m.swap(col, pivot);
        out.swap(col, pivot);
        let piv_inv = inv(m[col][col]);
        for j in 0..k {
            m[col][j] = mul(m[col][j], piv_inv);
            out[col][j] = mul(out[col][j], piv_inv);
        }
        for row in 0..k {
            if row == col || m[row][col] == 0 {
                continue;
            }
            let f = m[row][col];
            for j in 0..k {
                let a = mul(f, m[col][j]);
                let b = mul(f, out[col][j]);
                m[row][j] ^= a;
                out[row][j] ^= b;
            }
        }
    }
    Some(out)
}

/// Row `index` of the systematic n×k generator matrix for stripe width
/// `k`. Depends only on `(index, k)` — not on n — so the decoder can
/// rebuild exactly the rows it holds shards for.
fn generator_row(index: usize, k: usize) -> Vec<u8> {
    let vrow = |i: usize| -> Vec<u8> { (0..k).map(|j| pow(i as u8, j)).collect() };
    if index < k {
        // The top block of V·V_top⁻¹ is the identity by construction.
        return (0..k).map(|j| u8::from(index == j)).collect();
    }
    let top: Vec<Vec<u8>> = (0..k).map(vrow).collect();
    let top_inv = invert(top).expect("Vandermonde top block is invertible");
    let v = vrow(index);
    (0..k)
        .map(|j| {
            let mut acc = 0u8;
            for (t, &vt) in v.iter().enumerate() {
                acc ^= mul(vt, top_inv[t][j]);
            }
            acc
        })
        .collect()
}

/// Stripe width for an object of `len` bytes split k ways (each of the
/// k data shards carries this many bytes, the last one zero-padded).
pub fn stripe_len(len: usize, k: usize) -> usize {
    len.div_ceil(k)
}

/// Encodes `data` as n shards of which any k reconstruct it: shards
/// `0..k` are plain stripes (zero-padded to equal width), shards
/// `k..n` are Reed–Solomon parity.
///
/// # Panics
///
/// Panics if `k` or `n` is outside `1 ..= MAX_SHARDS` or `k > n`.
pub fn encode(data: &[u8], k: usize, n: usize) -> Vec<Vec<u8>> {
    assert!(
        (1..=n).contains(&k) && n <= MAX_SHARDS,
        "invalid erasure config k={k} n={n}"
    );
    let width = stripe_len(data.len(), k);
    let stripe = |j: usize| -> &[u8] {
        let start = (j * width).min(data.len());
        let end = ((j + 1) * width).min(data.len());
        &data[start..end]
    };
    let mut shards = Vec::with_capacity(n);
    for j in 0..k {
        let mut s = stripe(j).to_vec();
        s.resize(width, 0);
        shards.push(s);
    }
    for i in k..n {
        let row = generator_row(i, k);
        let mut s = vec![0u8; width];
        for (j, &coef) in row.iter().enumerate() {
            if coef == 0 {
                continue;
            }
            for (p, &b) in stripe(j).iter().enumerate() {
                s[p] ^= mul(coef, b);
            }
        }
        shards.push(s);
    }
    shards
}

/// Reconstructs the original `object_len` bytes from any k shards
/// (given as `(shard index, payload)`; the first k distinct indices
/// are used). Returns `None` when fewer than k distinct shards are
/// supplied, when payload widths disagree with `object_len`/`k`, or
/// when the selected rows are singular — the caller treats `None` as a
/// verification failure, never as data.
pub fn reconstruct(shards: &[(usize, &[u8])], k: usize, object_len: usize) -> Option<Vec<u8>> {
    if k == 0 || k > MAX_SHARDS {
        return None;
    }
    let width = stripe_len(object_len, k);
    let mut sel: Vec<(usize, &[u8])> = Vec::with_capacity(k);
    for &(idx, payload) in shards {
        if idx >= MAX_SHARDS || payload.len() != width || sel.iter().any(|&(i, _)| i == idx) {
            continue;
        }
        sel.push((idx, payload));
        if sel.len() == k {
            break;
        }
    }
    if sel.len() < k {
        return None;
    }
    let mut out = vec![0u8; width * k];
    if sel.iter().all(|&(i, _)| i < k) {
        // Fast path: all-systematic selection needs no matrix at all.
        for &(i, payload) in &sel {
            out[i * width..(i + 1) * width].copy_from_slice(payload);
        }
        out.truncate(object_len);
        return Some(out);
    }
    let rows: Vec<Vec<u8>> = sel.iter().map(|&(i, _)| generator_row(i, k)).collect();
    let inverse = invert(rows)?;
    for (j, inv_row) in inverse.iter().enumerate() {
        let dst = &mut out[j * width..(j + 1) * width];
        for (t, &coef) in inv_row.iter().enumerate() {
            if coef == 0 {
                continue;
            }
            for (p, &b) in sel[t].1.iter().enumerate() {
                dst[p] ^= mul(coef, b);
            }
        }
    }
    out.truncate(object_len);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(7))
            .collect()
    }

    #[test]
    fn field_axioms_hold() {
        // Spot-check inverse and distributivity over the whole field.
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a={a}");
        }
        for a in [1u8, 2, 3, 0x53, 0xCA, 0xFF] {
            for b in [0u8, 1, 2, 0x8E, 0xFF] {
                for c in [1u8, 7, 0x1D] {
                    assert_eq!(mul(a, b ^ c), mul(a, b) ^ mul(a, c));
                }
            }
        }
        assert_eq!(pow(2, 8), 0x1d); // x⁸ ≡ x⁴+x³+x²+1 under 0x11D.
    }

    #[test]
    fn roundtrip_every_config_and_every_k_subset() {
        // The configuration space matters, not one happy-path layout:
        // every (k, n) up to 5-wide, every k-subset of shard indices.
        let data = sample(257); // deliberately not stripe-aligned
        for n in 1..=5usize {
            for k in 1..=n {
                let shards = encode(&data, k, n);
                assert!(shards.iter().all(|s| s.len() == stripe_len(data.len(), k)));
                for mask in 0u32..(1 << n) {
                    if mask.count_ones() as usize != k {
                        continue;
                    }
                    let sel: Vec<(usize, &[u8])> = (0..n)
                        .filter(|i| mask & (1 << i) != 0)
                        .map(|i| (i, shards[i].as_slice()))
                        .collect();
                    assert_eq!(
                        reconstruct(&sel, k, data.len()).as_deref(),
                        Some(&data[..]),
                        "k={k} n={n} mask={mask:b}"
                    );
                }
            }
        }
    }

    #[test]
    fn mirroring_is_the_k1_degenerate_case() {
        let data = sample(100);
        let shards = encode(&data, 1, 3);
        for s in &shards {
            assert_eq!(s, &data);
        }
    }

    #[test]
    fn empty_object_roundtrips() {
        let shards = encode(&[], 2, 3);
        assert!(shards.iter().all(Vec::is_empty));
        let sel: Vec<(usize, &[u8])> = vec![(1, &shards[1]), (2, &shards[2])];
        assert_eq!(reconstruct(&sel, 2, 0).as_deref(), Some(&[][..]));
    }

    #[test]
    fn insufficient_or_duplicate_shards_refused() {
        let data = sample(64);
        let shards = encode(&data, 2, 3);
        assert_eq!(reconstruct(&[(0, shards[0].as_slice())], 2, 64), None);
        // A duplicate index is not a second independent shard.
        assert_eq!(
            reconstruct(
                &[(0, shards[0].as_slice()), (0, shards[0].as_slice())],
                2,
                64
            ),
            None
        );
        // Wrong-width payloads are refused, not mis-decoded.
        assert_eq!(
            reconstruct(&[(0, &shards[0][1..]), (1, shards[1].as_slice())], 2, 64),
            None
        );
    }

    #[test]
    #[should_panic(expected = "invalid erasure config")]
    fn zero_k_rejected() {
        let _ = encode(&[1, 2, 3], 0, 3);
    }
}
