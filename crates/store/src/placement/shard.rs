//! The `NYMP` shard wire format.
//!
//! Every child backend of a [`super::PlacementStore`] holds *shards*,
//! not objects: a fixed header binding the shard to its object name,
//! position and erasure geometry, followed by the stripe/parity
//! payload. The format is specified (alongside NYM1/NYMD/NYMC/NYMJ) in
//! [`crate::archive`]; this module is the parse-or-fail-closed
//! implementation. A shard fetched from a provider is hostile bytes —
//! a byzantine backend can serve garbage, a stale version, or a shard
//! transplanted from another object — so parsing uses checked
//! arithmetic, verifies every structural invariant, checks the
//! name binding, and recomputes the per-shard hash **before** the
//! payload is ever handed to the erasure decoder.

/// Domain separator of the per-shard hash.
const SHARD_HASH_DOMAIN: &[u8] = b"nymix.placement.shard.v1\0";
/// Domain separator of the whole-object hash.
const OBJECT_HASH_DOMAIN: &[u8] = b"nymix.placement.object.v1\0";

/// `NYMP` magic.
pub const MAGIC: [u8; 4] = *b"NYMP";
/// Current format version.
pub const VERSION: u8 = 1;
/// Fixed header length before the object name and payload.
pub const FIXED_LEN: usize = 4 + 1 + 1 + 1 + 1 + 8 + 4 + 32 + 32 + 2;

/// A parsed, hash-verified shard header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardHeader {
    /// Which of the n shards this is (`< n`).
    pub index: u8,
    /// Stripes needed to reconstruct.
    pub k: u8,
    /// Total shards the object was encoded into.
    pub n: u8,
    /// Length of the original object in bytes.
    pub object_len: u64,
    /// SHA-256 of the whole original object (domain-separated): the
    /// cross-shard consistency anchor — shards from different object
    /// versions never mix into one decode.
    pub object_hash: [u8; 32],
}

/// Why a shard blob was rejected. All variants fail closed: a rejected
/// shard contributes nothing to reconstruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// Structural violation (bad magic/version/bounds/lengths).
    Malformed(&'static str),
    /// The embedded object name does not match the requested one — a
    /// transplanted shard.
    WrongName,
    /// The per-shard hash does not cover these bytes — corruption or a
    /// byzantine provider.
    HashMismatch,
}

impl core::fmt::Display for ShardError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ShardError::Malformed(what) => write!(f, "malformed shard: {what}"),
            ShardError::WrongName => write!(f, "shard bound to a different object name"),
            ShardError::HashMismatch => write!(f, "shard hash mismatch"),
        }
    }
}

impl std::error::Error for ShardError {}

/// The whole-object hash embedded in every shard of an object.
pub fn object_hash(data: &[u8]) -> [u8; 32] {
    let mut h = nymix_crypto::Sha256::new();
    h.update(OBJECT_HASH_DOMAIN);
    h.update(data);
    h.finalize()
}

fn shard_hash(
    name: &str,
    index: u8,
    k: u8,
    n: u8,
    object_len: u64,
    object_hash: &[u8; 32],
    payload: &[u8],
) -> [u8; 32] {
    let mut h = nymix_crypto::Sha256::new();
    h.update(SHARD_HASH_DOMAIN);
    h.update(&crate::archive::len_u16(name.len()).to_le_bytes());
    h.update(name.as_bytes());
    h.update(&[index, k, n]);
    h.update(&object_len.to_le_bytes());
    h.update(object_hash);
    h.update(payload);
    h.finalize()
}

/// Encodes one shard: header, name, payload.
///
/// # Panics
///
/// Panics on geometry the placement layer never produces (`k`/`n`/
/// `index` out of range, a name longer than `u16::MAX`, or a payload
/// width that disagrees with `object_len / k`).
pub fn encode_shard(
    name: &str,
    index: u8,
    k: u8,
    n: u8,
    object_len: u64,
    obj_hash: &[u8; 32],
    payload: &[u8],
) -> Vec<u8> {
    // lint:allow(panic-free-parser): encode-side geometry contract (documented under # Panics); never reached by provider bytes
    assert!(k >= 1 && k <= n && (n as usize) <= super::gf256::MAX_SHARDS && index < n);
    // lint:allow(panic-free-parser): encode-side name-length contract (documented under # Panics); never reached by provider bytes
    assert!(name.len() <= u16::MAX as usize, "object name too long");
    // lint:allow(panic-free-parser): encode-side stripe-width contract (documented under # Panics); never reached by provider bytes
    assert_eq!(
        payload.len(),
        super::gf256::stripe_len(object_len as usize, k as usize),
        "payload width disagrees with object_len/k"
    );
    let mut out = Vec::with_capacity(FIXED_LEN + name.len() + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(index);
    out.push(k);
    out.push(n);
    out.extend_from_slice(&object_len.to_le_bytes());
    out.extend_from_slice(&crate::archive::len_u32(payload.len()).to_le_bytes());
    out.extend_from_slice(obj_hash);
    out.extend_from_slice(&shard_hash(
        name, index, k, n, object_len, obj_hash, payload,
    ));
    out.extend_from_slice(&crate::archive::len_u16(name.len()).to_le_bytes());
    out.extend_from_slice(name.as_bytes());
    out.extend_from_slice(payload);
    out
}

/// Parses and hash-verifies a shard blob fetched for `expect_name`.
/// Returns the header and a borrow of the payload only after **every**
/// check passes — magic, version, geometry bounds, exact lengths (no
/// trailing bytes), name binding, and the recomputed per-shard hash.
pub fn decode_shard<'a>(
    blob: &'a [u8],
    expect_name: &str,
) -> Result<(ShardHeader, &'a [u8]), ShardError> {
    let malformed = ShardError::Malformed;
    if blob.len() < FIXED_LEN {
        return Err(malformed("truncated header"));
    }
    if blob[0..4] != MAGIC {
        return Err(malformed("bad magic"));
    }
    if blob[4] != VERSION {
        return Err(malformed("unknown version"));
    }
    let (index, k, n) = (blob[5], blob[6], blob[7]);
    if k == 0 || k > n || n as usize > super::gf256::MAX_SHARDS || index >= n {
        return Err(malformed("geometry out of range"));
    }
    let object_len = match blob[8..16].try_into() {
        Ok(b) => u64::from_le_bytes(b),
        Err(_) => return Err(malformed("truncated header")),
    };
    let shard_len = match blob[16..20].try_into() {
        Ok(b) => u32::from_le_bytes(b) as usize,
        Err(_) => return Err(malformed("truncated header")),
    };
    // The stripe width is fully determined by (object_len, k); a header
    // claiming anything else is lying about one of the two.
    let Ok(olen) = usize::try_from(object_len) else {
        return Err(malformed("object length overflows"));
    };
    if shard_len != super::gf256::stripe_len(olen, k as usize) {
        return Err(malformed("shard length disagrees with object length"));
    }
    let mut obj_hash = [0u8; 32];
    obj_hash.copy_from_slice(&blob[20..52]);
    let mut claimed = [0u8; 32];
    claimed.copy_from_slice(&blob[52..84]);
    let name_len = match blob[84..86].try_into() {
        Ok(b) => u16::from_le_bytes(b) as usize,
        Err(_) => return Err(malformed("truncated header")),
    };
    let name_end = FIXED_LEN
        .checked_add(name_len)
        .ok_or(malformed("name length overflows"))?;
    let total = name_end
        .checked_add(shard_len)
        .ok_or(malformed("lengths overflow"))?;
    if blob.len() != total {
        return Err(malformed("length mismatch"));
    }
    let name = &blob[FIXED_LEN..name_end];
    if name != expect_name.as_bytes() {
        return Err(ShardError::WrongName);
    }
    let payload = &blob[name_end..];
    let computed = shard_hash(expect_name, index, k, n, object_len, &obj_hash, payload);
    if computed != claimed {
        return Err(ShardError::HashMismatch);
    }
    Ok((
        ShardHeader {
            index,
            k,
            n,
            object_len,
            object_hash: obj_hash,
        },
        payload,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_shard() -> (Vec<u8>, Vec<u8>) {
        let object = b"the quick brown fox jumps over the lazy dog".to_vec();
        let oh = object_hash(&object);
        let stripes = super::super::gf256::encode(&object, 2, 3);
        let blob = encode_shard("chain#e1.2", 1, 2, 3, object.len() as u64, &oh, &stripes[1]);
        (blob, object)
    }

    #[test]
    fn roundtrip() {
        let (blob, object) = sample_shard();
        let (hdr, payload) = decode_shard(&blob, "chain#e1.2").unwrap();
        assert_eq!((hdr.index, hdr.k, hdr.n), (1, 2, 3));
        assert_eq!(hdr.object_len, object.len() as u64);
        assert_eq!(hdr.object_hash, object_hash(&object));
        assert_eq!(payload.len(), object.len().div_ceil(2));
    }

    #[test]
    fn transplanted_name_rejected() {
        let (blob, _) = sample_shard();
        assert_eq!(decode_shard(&blob, "other"), Err(ShardError::WrongName));
    }

    #[test]
    fn every_flipped_bit_is_caught() {
        // Flip one bit at a time across the whole blob: the parser must
        // reject every variant (structurally or by hash), never accept.
        let (blob, _) = sample_shard();
        for byte in 0..blob.len() {
            for bit in 0..8 {
                let mut b = blob.clone();
                b[byte] ^= 1 << bit;
                assert!(
                    decode_shard(&b, "chain#e1.2").is_err(),
                    "accepted corrupted byte {byte} bit {bit}"
                );
            }
        }
    }

    #[test]
    fn truncations_and_extensions_rejected() {
        let (blob, _) = sample_shard();
        for cut in 0..blob.len() {
            assert!(decode_shard(&blob[..cut], "chain#e1.2").is_err());
        }
        let mut extended = blob;
        extended.push(0);
        assert!(decode_shard(&extended, "chain#e1.2").is_err());
        assert!(decode_shard(&[], "x").is_err());
    }
}
