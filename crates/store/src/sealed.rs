//! Password-sealed archives.
//!
//! The store-nym workflow asks the user for "a name for the nym, a
//! password to encrypt it with" (§3.5). Sealing pipeline:
//!
//! ```text
//! archive bytes → LZSS compress → ChaCha20-Poly1305 under a key
//! derived with PBKDF2-HMAC-SHA256(password, salt=label||random)
//! ```
//!
//! The label (nym name / storage location) is bound as AEAD associated
//! data, so an adversary — or a confused user — cannot splice one nym's
//! ciphertext into another nym's slot undetected.

use nymix_crypto::poly1305::TAG_LEN;
use nymix_crypto::{open_in_place_detached, pbkdf2_hmac_sha256, seal_in_place_detached};
use nymix_sim::Rng;

use crate::archive::NymArchive;
use crate::lzss;

/// PBKDF2 iteration count (modest: sealing happens on every save).
pub const KDF_ITERATIONS: u32 = 10_000;

const MAGIC: &[u8; 4] = b"NYS1";
const SALT_LEN: usize = 16;
const NONCE_LEN: usize = 12;

/// Errors from unsealing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SealedError {
    /// Structural problem with the sealed blob.
    Malformed,
    /// Wrong password, wrong label, or tampered ciphertext.
    AuthFailed,
    /// Decompression failed after successful authentication (archive
    /// corrupted before sealing — should be impossible).
    Corrupt,
}

impl core::fmt::Display for SealedError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SealedError::Malformed => write!(f, "malformed sealed nym"),
            SealedError::AuthFailed => write!(f, "authentication failed (wrong password/label?)"),
            SealedError::Corrupt => write!(f, "archive corrupt after decryption"),
        }
    }
}

impl std::error::Error for SealedError {}

fn derive_key(password: &str, label: &str, salt: &[u8]) -> [u8; 32] {
    let mut full_salt = label.as_bytes().to_vec();
    full_salt.push(0);
    full_salt.extend_from_slice(salt);
    let dk = pbkdf2_hmac_sha256(password.as_bytes(), &full_salt, KDF_ITERATIONS, 32);
    let mut key = [0u8; 32];
    key.copy_from_slice(&dk);
    key
}

/// Seals an archive under `password`, bound to `label`.
///
/// `rng` supplies the salt and nonce (deterministic in simulations).
///
/// # Examples
///
/// ```
/// use nymix_store::{seal_archive, open_sealed, NymArchive};
/// use nymix_sim::Rng;
///
/// let mut a = NymArchive::new();
/// a.put("meta", b"nym=alice".to_vec());
/// let blob = seal_archive(&a, "hunter2", "nym:alice", &mut Rng::seed_from(1));
/// let back = open_sealed(&blob, "hunter2", "nym:alice").unwrap();
/// assert_eq!(back.get("meta").unwrap(), b"nym=alice");
/// ```
pub fn seal_archive(archive: &NymArchive, password: &str, label: &str, rng: &mut Rng) -> Vec<u8> {
    let mut salt = [0u8; SALT_LEN];
    rng.fill_bytes(&mut salt);
    let mut nonce = [0u8; NONCE_LEN];
    rng.fill_bytes(&mut nonce);
    let key = derive_key(password, label, &salt);
    // Build the blob once and seal the LZSS payload in place inside it:
    // header || ciphertext || tag, with no intermediate boxed copy.
    let mut out = MAGIC.to_vec();
    out.extend_from_slice(&salt);
    out.extend_from_slice(&nonce);
    let body_start = out.len();
    out.extend_from_slice(&lzss::compress(&archive.to_bytes()));
    let tag = seal_in_place_detached(&key, &nonce, label.as_bytes(), &mut out[body_start..]);
    out.extend_from_slice(&tag);
    out
}

/// Opens a sealed blob.
pub fn open_sealed(blob: &[u8], password: &str, label: &str) -> Result<NymArchive, SealedError> {
    if blob.len() < 4 + SALT_LEN + NONCE_LEN || &blob[..4] != MAGIC {
        return Err(SealedError::Malformed);
    }
    let salt = &blob[4..4 + SALT_LEN];
    let mut nonce = [0u8; NONCE_LEN];
    nonce.copy_from_slice(&blob[4 + SALT_LEN..4 + SALT_LEN + NONCE_LEN]);
    let boxed = &blob[4 + SALT_LEN + NONCE_LEN..];
    if boxed.len() < TAG_LEN {
        // Matches the seed behavior: a body shorter than a tag fails
        // authentication rather than structural validation.
        return Err(SealedError::AuthFailed);
    }
    let key = derive_key(password, label, salt);
    // Single working copy of the ciphertext, decrypted in place.
    let (ciphertext, tag) = boxed.split_at(boxed.len() - TAG_LEN);
    let mut compressed = ciphertext.to_vec();
    open_in_place_detached(&key, &nonce, label.as_bytes(), &mut compressed, tag)
        .map_err(|_| SealedError::AuthFailed)?;
    let bytes = lzss::decompress(&compressed).map_err(|_| SealedError::Corrupt)?;
    NymArchive::from_bytes(&bytes).map_err(|_| SealedError::Corrupt)
}

/// The sealed size an archive would produce (for storage accounting
/// without materializing the ciphertext twice).
pub fn sealed_size(archive: &NymArchive) -> usize {
    lzss::compress(&archive.to_bytes()).len() + 4 + SALT_LEN + NONCE_LEN + 16
}

#[cfg(test)]
mod tests {
    use super::*;

    fn archive() -> NymArchive {
        let mut a = NymArchive::new();
        a.put("meta", b"nym=bob;site=twitter".to_vec());
        a.put("anonvm.disk", b"<html>cache</html>".repeat(200).to_vec());
        a
    }

    #[test]
    fn roundtrip() {
        let a = archive();
        let blob = seal_archive(&a, "pw", "nym:bob", &mut Rng::seed_from(5));
        let b = open_sealed(&blob, "pw", "nym:bob").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn wrong_password_fails() {
        let blob = seal_archive(&archive(), "pw", "nym:bob", &mut Rng::seed_from(5));
        assert_eq!(
            open_sealed(&blob, "wrong", "nym:bob"),
            Err(SealedError::AuthFailed)
        );
    }

    #[test]
    fn wrong_label_fails() {
        // Splicing bob's blob into alice's slot must not decrypt.
        let blob = seal_archive(&archive(), "pw", "nym:bob", &mut Rng::seed_from(5));
        assert_eq!(
            open_sealed(&blob, "pw", "nym:alice"),
            Err(SealedError::AuthFailed)
        );
    }

    #[test]
    fn tamper_fails() {
        let mut blob = seal_archive(&archive(), "pw", "nym:bob", &mut Rng::seed_from(5));
        let last = blob.len() - 1;
        blob[last] ^= 1;
        assert_eq!(
            open_sealed(&blob, "pw", "nym:bob"),
            Err(SealedError::AuthFailed)
        );
        assert_eq!(
            open_sealed(b"junk", "pw", "nym:bob"),
            Err(SealedError::Malformed)
        );
    }

    #[test]
    fn ciphertext_looks_random() {
        // The provider stores only high-entropy bytes: no plaintext
        // marker from the archive appears in the sealed blob.
        let blob = seal_archive(&archive(), "pw", "nym:bob", &mut Rng::seed_from(5));
        let needle = b"twitter";
        assert!(!blob.windows(needle.len()).any(|w| w == needle));
    }

    #[test]
    fn compression_helps_repetitive_state() {
        let a = archive();
        let sealed = seal_archive(&a, "pw", "l", &mut Rng::seed_from(1));
        assert!(sealed.len() < a.to_bytes().len() / 2);
        assert_eq!(sealed_size(&a), sealed.len());
    }

    #[test]
    fn salts_differ_across_seals() {
        let mut rng = Rng::seed_from(9);
        let a = seal_archive(&archive(), "pw", "l", &mut rng);
        let b = seal_archive(&archive(), "pw", "l", &mut rng);
        assert_ne!(a, b, "fresh salt/nonce per save");
        // Both still open.
        assert!(open_sealed(&a, "pw", "l").is_ok());
        assert!(open_sealed(&b, "pw", "l").is_ok());
    }
}
