//! Password-sealed archives.
//!
//! The store-nym workflow asks the user for "a name for the nym, a
//! password to encrypt it with" (§3.5). Sealing pipeline:
//!
//! ```text
//! archive bytes → LZSS compress → ChaCha20-Poly1305 under a key
//! derived with PBKDF2-HMAC-SHA256(password, salt=label||random)
//! ```
//!
//! The label (nym name / storage location) is bound as AEAD associated
//! data, so an adversary — or a confused user — cannot splice one nym's
//! ciphertext into another nym's slot undetected.
//!
//! The pipeline is single-pass and allocation-free on the hot path:
//! [`seal_into`] serializes the archive into a reusable arena
//! ([`SealScratch`]), LZSS-compresses from that arena directly into the
//! output blob (after the header), and encrypts the compressed body in
//! place with the detached-tag AEAD — no intermediate `Vec` is
//! materialized at any stage. [`unseal_raw_into`] is the symmetric
//! decrypt-and-decompress half. The convenience wrappers
//! [`seal_archive`] / [`open_sealed`] allocate fresh buffers per call.
//!
//! ## Keyed sealing for delta chains
//!
//! PBKDF2 dominates seal latency by design (~90%, password hardening),
//! which would erase the point of incremental snapshots: a delta
//! carrying 2 KiB of dirty records would still pay the full multi-ms
//! KDF. A [`SealKey`] therefore derives the key **once per chain
//! epoch** — the full-archive save draws a fresh salt, and every delta
//! sealed on that base reuses the same key with a fresh random nonce
//! (safe for ChaCha20-Poly1305: distinct nonces under one key). Each
//! blob in the chain binds its own storage label as associated data, so
//! a provider cannot splice delta *i* into slot *j* undetected, and
//! restore recovers the key with a single KDF from the base blob's salt
//! ([`blob_salt`]) before opening the whole chain.

use nymix_crypto::poly1305::TAG_LEN;
use nymix_crypto::{open_in_place_detached, pbkdf2_hmac_sha256_into, seal_in_place_detached};
use nymix_sim::Rng;

use crate::archive::NymArchive;
use crate::delta::DeltaArchive;
use crate::lzss;

/// PBKDF2 iteration count (modest: sealing happens on every save).
pub const KDF_ITERATIONS: u32 = 10_000;

const MAGIC: &[u8; 4] = b"NYS1";
const SALT_LEN: usize = 16;
const NONCE_LEN: usize = 12;

/// Errors from unsealing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SealedError {
    /// Structural problem with the sealed blob.
    Malformed,
    /// Wrong password, wrong label, or tampered ciphertext.
    AuthFailed,
    /// Decompression failed after successful authentication (archive
    /// corrupted before sealing — should be impossible).
    Corrupt,
}

impl core::fmt::Display for SealedError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SealedError::Malformed => write!(f, "malformed sealed nym"),
            SealedError::AuthFailed => write!(f, "authentication failed (wrong password/label?)"),
            SealedError::Corrupt => write!(f, "archive corrupt after decryption"),
        }
    }
}

impl std::error::Error for SealedError {}

fn derive_key(password: &str, label: &str, salt: &[u8]) -> [u8; 32] {
    // Salt = label ‖ 0 ‖ random, passed as parts — no concatenation buffer.
    let mut key = [0u8; 32];
    pbkdf2_hmac_sha256_into(
        password.as_bytes(),
        &[label.as_bytes(), &[0], salt],
        KDF_ITERATIONS,
        &mut key,
    );
    key
}

/// A password-derived sealing key bound to one chain epoch: the KDF
/// runs once, and every blob sealed with this key carries the same
/// salt (with a fresh nonce per seal). Restore re-derives the same key
/// from the base blob's salt with [`SealKey::from_salt`].
pub struct SealKey {
    salt: [u8; SALT_LEN],
    key: [u8; 32],
}

// Manual Debug: never print key material.
impl core::fmt::Debug for SealKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SealKey")
            .field("salt", &self.salt)
            .field("key", &"[redacted]")
            .finish()
    }
}

impl Drop for SealKey {
    fn drop(&mut self) {
        // The salt is public (it rides in every blob header); the derived
        // key is the password-equivalent secret.
        nymix_crypto::zeroize::wipe_bytes(&mut self.key);
    }
}

impl SealKey {
    /// Derives a fresh key for a new chain epoch: `rng` supplies the
    /// salt, the KDF binds `label` (the base archive's storage label).
    pub fn derive(password: &str, label: &str, rng: &mut Rng) -> Self {
        let mut salt = [0u8; SALT_LEN];
        rng.fill_bytes(&mut salt);
        Self {
            key: derive_key(password, label, &salt),
            salt,
        }
    }

    /// Re-derives the key of an existing chain from the base blob's
    /// salt (see [`blob_salt`]). One KDF opens the whole chain.
    pub fn from_salt(password: &str, label: &str, salt: &[u8; SALT_LEN]) -> Self {
        Self {
            key: derive_key(password, label, salt),
            salt: *salt,
        }
    }

    /// The salt this key was derived under.
    pub fn salt(&self) -> &[u8; SALT_LEN] {
        &self.salt
    }
}

/// The salt a sealed blob was keyed under, or `None` if the blob is
/// structurally not a sealed archive.
pub fn blob_salt(blob: &[u8]) -> Option<&[u8; SALT_LEN]> {
    if blob.len() < 4 + SALT_LEN + NONCE_LEN || &blob[..4] != MAGIC {
        return None;
    }
    blob[4..4 + SALT_LEN].try_into().ok()
}

/// Reusable working memory for [`seal_into`] / [`unseal_raw_into`]: the
/// serialized-archive arena and the LZSS match-finder state. Holding one
/// of these across saves makes repeated sealing allocation-free.
#[derive(Debug, Default, Clone)]
pub struct SealScratch {
    /// Serialized (or decompressed) archive bytes.
    plain: Vec<u8>,
    /// LZSS encoder arena.
    compressor: lzss::Compressor,
}

impl SealScratch {
    /// Empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Seals `archive` under `password` bound to `label`, writing the blob
/// into `out` (cleared first). `rng` supplies the salt and nonce
/// (deterministic in simulations).
///
/// With warm `scratch` and `out` buffers the whole pipeline — serialize,
/// compress, encrypt, tag — performs zero heap allocations.
pub fn seal_into(
    archive: &NymArchive,
    password: &str,
    label: &str,
    rng: &mut Rng,
    scratch: &mut SealScratch,
    out: &mut Vec<u8>,
) {
    let key = SealKey::derive(password, label, rng);
    seal_keyed_into(archive, &key, label, rng, scratch, out);
}

/// [`seal_into`] with an already-derived [`SealKey`]: skips the KDF.
/// `label` is bound as AEAD associated data (and should be the blob's
/// storage label); the key's salt rides in the header so restore can
/// re-derive.
pub fn seal_keyed_into(
    archive: &NymArchive,
    key: &SealKey,
    label: &str,
    rng: &mut Rng,
    scratch: &mut SealScratch,
    out: &mut Vec<u8>,
) {
    scratch.plain.clear();
    archive.write_into(&mut scratch.plain);
    seal_plain(key, label, rng, scratch, out, true);
}

/// Seals a [`DeltaArchive`] through the identical zero-copy pipeline
/// (serialize into the arena → LZSS → in-place detached AEAD), under a
/// chain key. `label` must be the delta's own storage label (e.g.
/// `"nym:alice@local#e3.2"`) so chain positions cannot be spliced.
pub fn seal_delta_keyed_into(
    delta: &DeltaArchive,
    key: &SealKey,
    label: &str,
    rng: &mut Rng,
    scratch: &mut SealScratch,
    out: &mut Vec<u8>,
) {
    scratch.plain.clear();
    delta.write_into(&mut scratch.plain);
    seal_plain(key, label, rng, scratch, out, true);
}

/// Seals arbitrary plaintext bytes through the identical zero-copy
/// pipeline (stage into the arena → LZSS → in-place detached AEAD)
/// under a chain key. The chunk store seals each content-addressed
/// chunk this way, with the chunk's storage label — which embeds the
/// chunk ID — bound as AEAD associated data, so a chunk served under
/// another chunk's name (or another nym's) fails authentication.
pub fn seal_bytes_keyed_into(
    plain: &[u8],
    key: &SealKey,
    label: &str,
    rng: &mut Rng,
    scratch: &mut SealScratch,
    out: &mut Vec<u8>,
) {
    scratch.plain.clear();
    scratch.plain.extend_from_slice(plain);
    seal_plain(key, label, rng, scratch, out, true);
}

/// [`seal_bytes_keyed_into`] for payloads the caller knows are
/// incompressible: the body is emitted as an all-literal *stored* LZSS
/// stream ([`crate::lzss::store_into`]) — no match finder runs — and
/// unsealing is unchanged (the stored stream decompresses like any
/// other). The chunk store entropy-gates its per-chunk seals through
/// this path; see [`crate::cas`].
pub fn seal_bytes_keyed_stored_into(
    plain: &[u8],
    key: &SealKey,
    label: &str,
    rng: &mut Rng,
    scratch: &mut SealScratch,
    out: &mut Vec<u8>,
) {
    scratch.plain.clear();
    scratch.plain.extend_from_slice(plain);
    seal_plain(key, label, rng, scratch, out, false);
}

/// Compress-and-encrypt `scratch.plain` into `out` under `key`,
/// binding `label` as associated data. Shared tail of every seal path;
/// `compress` false emits the stored (all-literal) body instead of
/// running the match finder.
fn seal_plain(
    key: &SealKey,
    label: &str,
    rng: &mut Rng,
    scratch: &mut SealScratch,
    out: &mut Vec<u8>,
    compress: bool,
) {
    let mut nonce = [0u8; NONCE_LEN];
    rng.fill_bytes(&mut nonce);

    out.clear();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&key.salt);
    out.extend_from_slice(&nonce);
    let body_start = out.len();

    if compress {
        scratch.compressor.compress_into(&scratch.plain, out);
    } else {
        lzss::store_into(&scratch.plain, out);
    }

    let tag = seal_in_place_detached(&key.key, &nonce, label.as_bytes(), &mut out[body_start..]);
    out.extend_from_slice(&tag);
}

/// Seals an archive under `password`, bound to `label`.
///
/// `rng` supplies the salt and nonce (deterministic in simulations).
///
/// # Examples
///
/// ```
/// use nymix_store::{seal_archive, open_sealed, NymArchive};
/// use nymix_sim::Rng;
///
/// let mut a = NymArchive::new();
/// a.put("meta", b"nym=alice".to_vec());
/// let blob = seal_archive(&a, "hunter2", "nym:alice", &mut Rng::seed_from(1));
/// let back = open_sealed(&blob, "hunter2", "nym:alice").unwrap();
/// assert_eq!(back.get("meta").unwrap(), b"nym=alice");
/// ```
pub fn seal_archive(archive: &NymArchive, password: &str, label: &str, rng: &mut Rng) -> Vec<u8> {
    let mut out = Vec::new();
    seal_into(
        archive,
        password,
        label,
        rng,
        &mut SealScratch::new(),
        &mut out,
    );
    out
}

/// Authenticates, decrypts and decompresses `blob`, leaving the
/// serialized archive bytes in `scratch.plain` and returning a view of
/// them. The ciphertext working copy lives in `work`; with warm buffers
/// the whole path performs zero heap allocations.
pub fn unseal_raw_into<'s>(
    blob: &[u8],
    password: &str,
    label: &str,
    work: &mut Vec<u8>,
    scratch: &'s mut SealScratch,
) -> Result<&'s [u8], SealedError> {
    let salt = blob_salt(blob).ok_or(SealedError::Malformed)?;
    let key = derive_key(password, label, salt);
    unseal_body(blob, &key, label, work, scratch)
}

/// [`unseal_raw_into`] with an already-derived chain key: no KDF. The
/// blob's salt must match the key's (a mismatched salt means the blob
/// belongs to a different chain epoch and could never authenticate).
pub fn unseal_keyed_raw_into<'s>(
    blob: &[u8],
    key: &SealKey,
    label: &str,
    work: &mut Vec<u8>,
    scratch: &'s mut SealScratch,
) -> Result<&'s [u8], SealedError> {
    let salt = blob_salt(blob).ok_or(SealedError::Malformed)?;
    if !nymix_crypto::ct::eq(salt, &key.salt) {
        return Err(SealedError::AuthFailed);
    }
    unseal_body(blob, &key.key, label, work, scratch)
}

/// Authenticate-decrypt-decompress tail shared by both unseal paths.
fn unseal_body<'s>(
    blob: &[u8],
    key: &[u8; 32],
    label: &str,
    work: &mut Vec<u8>,
    scratch: &'s mut SealScratch,
) -> Result<&'s [u8], SealedError> {
    let mut nonce = [0u8; NONCE_LEN];
    nonce.copy_from_slice(&blob[4 + SALT_LEN..4 + SALT_LEN + NONCE_LEN]);
    let boxed = &blob[4 + SALT_LEN + NONCE_LEN..];
    if boxed.len() < TAG_LEN {
        // Matches the seed behavior: a body shorter than a tag fails
        // authentication rather than structural validation.
        return Err(SealedError::AuthFailed);
    }
    // Single working copy of the ciphertext, decrypted in place.
    let (ciphertext, tag) = boxed.split_at(boxed.len() - TAG_LEN);
    work.clear();
    work.extend_from_slice(ciphertext);
    open_in_place_detached(key, &nonce, label.as_bytes(), work, tag)
        .map_err(|_| SealedError::AuthFailed)?;
    lzss::decompress_into(work, &mut scratch.plain).map_err(|_| SealedError::Corrupt)?;
    Ok(&scratch.plain)
}

/// Opens a sealed blob.
pub fn open_sealed(blob: &[u8], password: &str, label: &str) -> Result<NymArchive, SealedError> {
    let mut work = Vec::new();
    let mut scratch = SealScratch::new();
    let bytes = unseal_raw_into(blob, password, label, &mut work, &mut scratch)?;
    NymArchive::from_bytes(bytes).map_err(|_| SealedError::Corrupt)
}

/// The sealed size an archive would produce (for storage accounting
/// without materializing the ciphertext twice).
pub fn sealed_size(archive: &NymArchive) -> usize {
    let mut compressed = Vec::new();
    lzss::Compressor::new().compress_into(&archive.to_bytes(), &mut compressed);
    compressed.len() + 4 + SALT_LEN + NONCE_LEN + 16
}

#[cfg(test)]
mod tests {
    use super::*;

    fn archive() -> NymArchive {
        let mut a = NymArchive::new();
        a.put("meta", b"nym=bob;site=twitter".to_vec());
        a.put("anonvm.disk", b"<html>cache</html>".repeat(200).to_vec());
        a
    }

    #[test]
    fn roundtrip() {
        let a = archive();
        let blob = seal_archive(&a, "pw", "nym:bob", &mut Rng::seed_from(5));
        let b = open_sealed(&blob, "pw", "nym:bob").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn reused_scratch_roundtrips_and_matches_fresh() {
        // The steady-state save path: one scratch + one blob buffer
        // across many seals must produce byte-identical blobs to the
        // allocating wrapper.
        let a = archive();
        let mut scratch = SealScratch::new();
        let mut out = Vec::new();
        let mut work = Vec::new();
        for seed in [1u64, 2, 3] {
            seal_into(
                &a,
                "pw",
                "l",
                &mut Rng::seed_from(seed),
                &mut scratch,
                &mut out,
            );
            assert_eq!(
                out,
                seal_archive(&a, "pw", "l", &mut Rng::seed_from(seed)),
                "seed {seed}"
            );
            let bytes = unseal_raw_into(&out, "pw", "l", &mut work, &mut scratch).unwrap();
            assert_eq!(NymArchive::from_bytes(bytes).unwrap(), a);
        }
    }

    #[test]
    fn keyed_seal_interoperates_with_password_unseal() {
        // A full archive sealed under a pre-derived key opens through
        // the ordinary password path (same wire format, salt in header).
        let a = archive();
        let mut rng = Rng::seed_from(11);
        let key = SealKey::derive("pw", "nym:bob", &mut rng);
        let mut scratch = SealScratch::new();
        let mut blob = Vec::new();
        seal_keyed_into(&a, &key, "nym:bob", &mut rng, &mut scratch, &mut blob);
        assert_eq!(open_sealed(&blob, "pw", "nym:bob").unwrap(), a);
        // And the other direction: password-sealed blob, keyed open.
        let blob2 = seal_archive(&a, "pw", "nym:bob", &mut Rng::seed_from(3));
        let salt = *blob_salt(&blob2).unwrap();
        let key2 = SealKey::from_salt("pw", "nym:bob", &salt);
        let mut work = Vec::new();
        let bytes =
            unseal_keyed_raw_into(&blob2, &key2, "nym:bob", &mut work, &mut scratch).unwrap();
        assert_eq!(NymArchive::from_bytes(bytes).unwrap(), a);
    }

    #[test]
    fn delta_seal_roundtrips_under_chain_key() {
        use crate::delta::DeltaArchive;
        let prev = archive();
        let mut next = prev.clone();
        next.put("meta", b"nym=bob;site=twitter;v=2".to_vec());
        let delta = DeltaArchive::diff(&prev, &next);

        let mut rng = Rng::seed_from(7);
        let key = SealKey::derive("pw", "nym:bob", &mut rng);
        let mut scratch = SealScratch::new();
        let mut blob = Vec::new();
        seal_delta_keyed_into(
            &delta,
            &key,
            "nym:bob#e1.1",
            &mut rng,
            &mut scratch,
            &mut blob,
        );

        let mut work = Vec::new();
        let bytes =
            unseal_keyed_raw_into(&blob, &key, "nym:bob#e1.1", &mut work, &mut scratch).unwrap();
        let opened = DeltaArchive::from_bytes(bytes).unwrap();
        assert_eq!(opened, delta);
        let mut replayed = prev.clone();
        opened.apply(&mut replayed).unwrap();
        assert_eq!(replayed, next);
    }

    #[test]
    fn stored_body_seal_roundtrips_and_authenticates() {
        // The entropy-gated chunk path: an incompressible payload sealed
        // with the stored body opens through the ordinary keyed unseal,
        // and still authenticates its label binding.
        let mut rng = Rng::seed_from(13);
        let key = SealKey::derive("pw", "l", &mut rng);
        let mut noise = vec![0u8; 8192];
        nymix_crypto::ChaCha20::new(&[3u8; 32], &[0u8; 12], 0).xor_into(&mut noise);
        let mut scratch = SealScratch::new();
        let (mut blob, mut work) = (Vec::new(), Vec::new());
        seal_bytes_keyed_stored_into(&noise, &key, "l#e1/c/ab", &mut rng, &mut scratch, &mut blob);
        let plain =
            unseal_keyed_raw_into(&blob, &key, "l#e1/c/ab", &mut work, &mut scratch).unwrap();
        assert_eq!(plain, &noise[..]);
        assert_eq!(
            unseal_keyed_raw_into(&blob, &key, "l#e1/c/cd", &mut work, &mut scratch).unwrap_err(),
            SealedError::AuthFailed
        );
        // Size envelope matches what the matcher would have produced on
        // incompressible input (flag byte per 8 literals).
        let mut compressed = Vec::new();
        seal_bytes_keyed_into(
            &noise,
            &key,
            "l#e1/c/ab",
            &mut rng,
            &mut scratch,
            &mut compressed,
        );
        assert!(blob.len() <= compressed.len() + 16);
    }

    #[test]
    fn chain_position_cannot_be_spliced() {
        // Two deltas sealed under one chain key but different slot
        // labels: serving slot 1's blob in slot 2 must fail auth.
        use crate::delta::DeltaArchive;
        let a = archive();
        let delta = DeltaArchive::diff(&a, &a);
        let mut rng = Rng::seed_from(9);
        let key = SealKey::derive("pw", "l", &mut rng);
        let mut scratch = SealScratch::new();
        let (mut b1, mut work) = (Vec::new(), Vec::new());
        seal_delta_keyed_into(&delta, &key, "l#e1.1", &mut rng, &mut scratch, &mut b1);
        assert_eq!(
            unseal_keyed_raw_into(&b1, &key, "l#e1.2", &mut work, &mut scratch).unwrap_err(),
            SealedError::AuthFailed
        );
        // A blob from a different chain epoch (different salt) is
        // rejected before any decryption happens.
        let other = SealKey::derive("pw", "l", &mut Rng::seed_from(99));
        assert_eq!(
            unseal_keyed_raw_into(&b1, &other, "l#e1.1", &mut work, &mut scratch).unwrap_err(),
            SealedError::AuthFailed
        );
    }

    #[test]
    fn blob_salt_extraction() {
        let blob = seal_archive(&archive(), "pw", "l", &mut Rng::seed_from(5));
        assert_eq!(blob_salt(&blob), Some(&blob[4..20].try_into().unwrap()));
        assert_eq!(blob_salt(b"junk"), None);
        assert_eq!(blob_salt(&blob[..10]), None);
    }

    #[test]
    fn wrong_password_fails() {
        let blob = seal_archive(&archive(), "pw", "nym:bob", &mut Rng::seed_from(5));
        assert_eq!(
            open_sealed(&blob, "wrong", "nym:bob"),
            Err(SealedError::AuthFailed)
        );
    }

    #[test]
    fn wrong_label_fails() {
        // Splicing bob's blob into alice's slot must not decrypt.
        let blob = seal_archive(&archive(), "pw", "nym:bob", &mut Rng::seed_from(5));
        assert_eq!(
            open_sealed(&blob, "pw", "nym:alice"),
            Err(SealedError::AuthFailed)
        );
    }

    #[test]
    fn tamper_fails() {
        let mut blob = seal_archive(&archive(), "pw", "nym:bob", &mut Rng::seed_from(5));
        let last = blob.len() - 1;
        blob[last] ^= 1;
        assert_eq!(
            open_sealed(&blob, "pw", "nym:bob"),
            Err(SealedError::AuthFailed)
        );
        assert_eq!(
            open_sealed(b"junk", "pw", "nym:bob"),
            Err(SealedError::Malformed)
        );
    }

    #[test]
    fn ciphertext_looks_random() {
        // The provider stores only high-entropy bytes: no plaintext
        // marker from the archive appears in the sealed blob.
        let blob = seal_archive(&archive(), "pw", "nym:bob", &mut Rng::seed_from(5));
        let needle = b"twitter";
        assert!(!blob.windows(needle.len()).any(|w| w == needle));
    }

    #[test]
    fn compression_helps_repetitive_state() {
        let a = archive();
        let sealed = seal_archive(&a, "pw", "l", &mut Rng::seed_from(1));
        assert!(sealed.len() < a.to_bytes().len() / 2);
        assert_eq!(sealed_size(&a), sealed.len());
    }

    #[test]
    fn salts_differ_across_seals() {
        let mut rng = Rng::seed_from(9);
        let a = seal_archive(&archive(), "pw", "l", &mut rng);
        let b = seal_archive(&archive(), "pw", "l", &mut rng);
        assert_ne!(a, b, "fresh salt/nonce per save");
        // Both still open.
        assert!(open_sealed(&a, "pw", "l").is_ok());
        assert!(open_sealed(&b, "pw", "l").is_ok());
    }
}
