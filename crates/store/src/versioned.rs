//! Versioned nym snapshots.
//!
//! The paper's store-nym workflow overwrites one object per nym. A
//! practical deployment wants a small history: the pre-configured model
//! (§3.5) is "never updating the stored nym state unless the user
//! explicitly requests another snapshot", and keeping the previous
//! snapshot(s) protects against a save that captures a freshly stained
//! session — the user can roll back past the stain.
//!
//! [`VersionedStore`] wraps any put/get key-value backend with
//! `name@vN` keys, retention, and rollback.

use std::collections::BTreeMap;

/// A store keeping up to `retain` versions per nym name.
///
/// Objects are keyed by the `(name, version)` pair directly rather than
/// a formatted `"{name}@v{version}"` string: string keys invite
/// collisions between a nym actually *named* `a@v1` and version 1 of a
/// nym named `a`, and make range scans over one nym's versions
/// impossible.
#[derive(Debug, Clone)]
pub struct VersionedStore {
    objects: BTreeMap<(String, u64), Vec<u8>>,
    latest: BTreeMap<String, u64>,
    retain: usize,
}

impl VersionedStore {
    /// A store retaining `retain` versions per name.
    ///
    /// # Panics
    ///
    /// Panics if `retain` is zero.
    pub fn new(retain: usize) -> Self {
        assert!(retain > 0, "must retain at least one version");
        Self {
            objects: BTreeMap::new(),
            latest: BTreeMap::new(),
            retain,
        }
    }

    /// Saves a new version of `name`; returns its version number.
    /// Old versions beyond the retention window are pruned (and their
    /// bytes forgotten — a real backend would also shred them).
    pub fn save(&mut self, name: &str, blob: Vec<u8>) -> u64 {
        let version = self.latest.get(name).map_or(1, |v| v + 1);
        self.objects.insert((name.to_string(), version), blob);
        self.latest.insert(name.to_string(), version);
        // Prune everything below the retention window in one range scan.
        if version as usize > self.retain {
            let cutoff = version - self.retain as u64;
            let stale: Vec<u64> = self
                .versions_range(name)
                .take_while(|v| *v <= cutoff)
                .collect();
            for v in stale {
                self.objects.remove(&(name.to_string(), v));
            }
        }
        version
    }

    /// Loads a specific version.
    pub fn load(&self, name: &str, version: u64) -> Option<&[u8]> {
        self.objects
            .get(&(name.to_string(), version))
            .map(Vec::as_slice)
    }

    /// Iterates the versions held for `name`, ascending, via a key-range
    /// scan (tuple keys make this a contiguous slice of the map).
    fn versions_range<'a>(&'a self, name: &'a str) -> impl Iterator<Item = u64> + 'a {
        self.objects
            .range((name.to_string(), 0)..=(name.to_string(), u64::MAX))
            .map(|((_, v), _)| *v)
    }

    /// Loads the newest version, with its number.
    pub fn load_latest(&self, name: &str) -> Option<(u64, &[u8])> {
        let v = *self.latest.get(name)?;
        Some((v, self.load(name, v)?))
    }

    /// Rolls back: deletes the newest version so the previous one
    /// becomes latest (the stained-snapshot escape hatch). Returns the
    /// new latest version, or `None` if no older version remains.
    pub fn rollback(&mut self, name: &str) -> Option<u64> {
        let v = *self.latest.get(name)?;
        self.objects.remove(&(name.to_string(), v));
        let prev = v
            .checked_sub(1)
            .filter(|p| *p > 0 && self.objects.contains_key(&(name.to_string(), *p)))?;
        self.latest.insert(name.to_string(), prev);
        Some(prev)
    }

    /// Versions currently held for `name`, ascending.
    pub fn versions(&self, name: &str) -> Vec<u64> {
        self.versions_range(name).collect()
    }

    /// Total bytes held.
    pub fn total_bytes(&self) -> usize {
        self.objects.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_load_latest() {
        let mut s = VersionedStore::new(3);
        assert_eq!(s.save("alice", vec![1]), 1);
        assert_eq!(s.save("alice", vec![2]), 2);
        let (v, blob) = s.load_latest("alice").unwrap();
        assert_eq!((v, blob), (2, &[2u8][..]));
        assert_eq!(s.load("alice", 1), Some(&[1u8][..]));
        assert!(s.load_latest("bob").is_none());
    }

    #[test]
    fn retention_prunes_old_versions() {
        let mut s = VersionedStore::new(2);
        for i in 1..=5u8 {
            s.save("n", vec![i]);
        }
        assert_eq!(s.versions("n"), vec![4, 5]);
        assert_eq!(s.load("n", 3), None);
        assert_eq!(s.load("n", 5), Some(&[5u8][..]));
        assert_eq!(s.total_bytes(), 2);
    }

    #[test]
    fn rollback_escapes_a_stained_snapshot() {
        let mut s = VersionedStore::new(3);
        s.save("n", b"clean".to_vec());
        s.save("n", b"stained".to_vec());
        assert_eq!(s.load_latest("n").unwrap().1, b"stained");
        let v = s.rollback("n").unwrap();
        assert_eq!(v, 1);
        assert_eq!(s.load_latest("n").unwrap().1, b"clean");
        // No older version left: rollback now fails and latest is gone
        // with a further rollback attempt refused.
        assert!(s.rollback("n").is_none());
    }

    #[test]
    fn rollback_without_history_fails() {
        let mut s = VersionedStore::new(2);
        assert!(s.rollback("ghost").is_none());
        s.save("n", vec![1]);
        // Only one version: rolling back would leave nothing.
        assert!(s.rollback("n").is_none());
    }

    #[test]
    #[should_panic(expected = "at least one version")]
    fn zero_retention_rejected() {
        let _ = VersionedStore::new(0);
    }

    #[test]
    fn version_like_names_cannot_collide() {
        // Regression: with formatted string keys, a nym literally named
        // "a@v1" shared the keyspace with version 1 of nym "a". Tuple
        // keys keep the namespaces disjoint.
        let mut s = VersionedStore::new(3);
        s.save("a", b"version-one-of-a".to_vec());
        s.save("a@v1", b"the-nym-called-a@v1".to_vec());
        s.save("a", b"version-two-of-a".to_vec());

        assert_eq!(s.load("a", 1), Some(&b"version-one-of-a"[..]));
        assert_eq!(s.load("a@v1", 1), Some(&b"the-nym-called-a@v1"[..]));
        assert_eq!(s.versions("a"), vec![1, 2]);
        assert_eq!(s.versions("a@v1"), vec![1]);

        // Deleting the odd nym's history must not disturb "a".
        assert!(s.rollback("a@v1").is_none()); // only one version held
        assert_eq!(s.load_latest("a").unwrap().1, b"version-two-of-a");
        assert_eq!(s.versions("a"), vec![1, 2]);
    }
}
