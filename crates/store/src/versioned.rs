//! Versioned nym snapshots.
//!
//! The paper's store-nym workflow overwrites one object per nym. A
//! practical deployment wants a small history: the pre-configured model
//! (§3.5) is "never updating the stored nym state unless the user
//! explicitly requests another snapshot", and keeping the previous
//! snapshot(s) protects against a save that captures a freshly stained
//! session — the user can roll back past the stain.
//!
//! [`VersionedStore`] layers version numbering, retention, and rollback
//! over any [`ObjectBackend`] — a local partition by default, a
//! pseudonymous cloud session ([`crate::cloud::CloudSession`]) or
//! anything else implementing the trait via
//! [`VersionedStore::with_backend`]. Blobs live on the backend under
//! collision-free derived object names; the store keeps only the
//! version index (kind + size per version) in memory.
//!
//! ## Delta chains
//!
//! A version is either a **full** archive or a **delta**
//! ([`crate::delta::DeltaArchive`]) chained on the most recent full
//! version. [`VersionedStore::save_delta`] appends to the current
//! chain and — once the run reaches the store's delta limit
//! ([`DELTA_CHAIN_LIMIT`] by default) — automatically compacts: the
//! chain is replayed (each hop Merkle-verified), merged with the
//! incoming delta, and stored as a new full archive, bounding both
//! restore latency and the blast radius of a lost object.
//! [`VersionedStore::load_latest_archive`] replays base + deltas and
//! fails closed on any root mismatch. Retention counts **full**
//! versions only; deltas ride with the base they depend on, so pruning
//! can never orphan a chain.

use std::collections::BTreeMap;

use crate::archive::NymArchive;
use crate::backend::{BackendError, ObjectBackend};
use crate::delta::{DeltaArchive, DeltaError, DELTA_CHAIN_LIMIT};
use crate::local::LocalStore;

/// Whether a stored version is a full archive or a delta on the chain
/// of the preceding full version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotKind {
    /// A self-contained archive.
    Full,
    /// A dirty-record delta; meaningful only replayed onto its base.
    Delta,
}

/// Backend object name of `(name, version)`. The fixed-width version
/// prefix plus separator makes the mapping injective for arbitrary nym
/// names — a nym actually *named* `a@v1` can never collide with
/// version 1 of a nym named `a` (the regression the tuple-keyed store
/// fixed, preserved across the move onto string-named backends).
fn object_key(name: &str, version: u64) -> String {
    format!("v{version:016x}/{name}")
}

/// A store keeping up to `retain` full-snapshot chains per nym name,
/// generic over the [`ObjectBackend`] holding the blobs (an in-process
/// [`LocalStore`] unless [`VersionedStore::with_backend`] says
/// otherwise).
///
/// The version index — which versions exist, their kind and size — is
/// store-side state; the backend sees only opaque named blobs.
#[derive(Debug, Clone)]
pub struct VersionedStore<B: ObjectBackend = LocalStore> {
    backend: B,
    index: BTreeMap<(String, u64), (SnapshotKind, usize)>,
    latest: BTreeMap<String, u64>,
    retain: usize,
    delta_limit: usize,
    /// Backend object keys already retired from the index whose delete
    /// failed — re-attempted opportunistically before the next save so
    /// a flaky backend can't strand blobs forever.
    pending_sweep: Vec<String>,
}

/// Parses an [`object_key`] back into `(version, name)`. `None` for
/// keys this store never produced (foreign objects on a shared
/// backend).
fn parse_object_key(key: &str) -> Option<(u64, &str)> {
    let rest = key.strip_prefix('v')?;
    let (hex, name) = (rest.get(..16)?, rest.get(16..)?.strip_prefix('/')?);
    if !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    let version = u64::from_str_radix(hex, 16).ok()?;
    Some((version, name))
}

impl VersionedStore {
    /// A store over a fresh in-memory [`LocalStore`] backend, retaining
    /// `retain` full versions per name (deltas ride with their base),
    /// compacting chains after [`DELTA_CHAIN_LIMIT`] deltas.
    ///
    /// # Panics
    ///
    /// Panics if `retain` is zero.
    pub fn new(retain: usize) -> Self {
        Self::with_backend(LocalStore::new(), retain)
    }
}

impl<B: ObjectBackend> VersionedStore<B> {
    /// A store writing its blobs through `backend`.
    ///
    /// # Panics
    ///
    /// Panics if `retain` is zero.
    pub fn with_backend(backend: B, retain: usize) -> Self {
        assert!(retain > 0, "must retain at least one version");
        Self {
            backend,
            index: BTreeMap::new(),
            latest: BTreeMap::new(),
            retain,
            delta_limit: DELTA_CHAIN_LIMIT,
            pending_sweep: Vec::new(),
        }
    }

    /// Reopens a store over a backend that already holds snapshot
    /// blobs — the recovery path for the in-memory index after a
    /// process death. Every object whose key parses as a version key
    /// and whose bytes carry a recognized archive magic (`NYM1` full /
    /// `NYMD` delta) is re-indexed; foreign objects are left untouched.
    /// The retention sweep then re-runs for every name, so a compaction
    /// that died between writing its new base and deleting the retired
    /// chain strands nothing: the sweep is idempotent and finishes at
    /// next open (regression-tested).
    ///
    /// # Panics
    ///
    /// Panics if `retain` is zero.
    pub fn attach(backend: B, retain: usize) -> Result<Self, BackendError> {
        let mut store = Self::with_backend(backend, retain);
        let mut keys = Vec::new();
        store.backend.list(&mut keys)?;
        for key in keys {
            let Some((version, name)) = parse_object_key(&key) else {
                continue;
            };
            let (version, name) = (version, name.to_string());
            let Some(blob) = store.backend.get(&key)? else {
                continue;
            };
            let kind = match blob.get(..4) {
                Some(b"NYM1") => SnapshotKind::Full,
                Some(b"NYMD") => SnapshotKind::Delta,
                _ => continue,
            };
            let len = blob.len();
            store.index.insert((name.clone(), version), (kind, len));
            let latest = store.latest.entry(name).or_insert(version);
            *latest = (*latest).max(version);
        }
        // Finish any sweep a crash interrupted.
        let names: Vec<String> = store.latest.keys().cloned().collect();
        for name in names {
            store.prune(&name);
        }
        Ok(store)
    }

    /// Overrides the compaction threshold (deltas allowed per chain).
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero (every save would be a full archive —
    /// use [`VersionedStore::save`] directly instead).
    pub fn with_delta_limit(mut self, limit: usize) -> Self {
        assert!(limit > 0, "delta limit must be at least one");
        self.delta_limit = limit;
        self
    }

    /// The underlying backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Saves a new full version of `name`; returns its version number.
    /// Old chains beyond the retention window are pruned (and deleted
    /// from the backend — a real device would also shred them).
    ///
    /// # Panics
    ///
    /// Panics if the backend refuses the write. Infallible over the
    /// default in-memory [`LocalStore`]; against a fallible backend
    /// (e.g. a credentialed cloud session) use
    /// [`VersionedStore::try_save`].
    pub fn save(&mut self, name: &str, blob: Vec<u8>) -> u64 {
        self.try_save(name, blob)
            .unwrap_or_else(|e| panic!("backend refused snapshot write: {e}"))
    }

    /// [`VersionedStore::save`] propagating backend failures instead of
    /// panicking. Nothing is recorded in the version index unless the
    /// backend accepted the blob.
    pub fn try_save(&mut self, name: &str, blob: Vec<u8>) -> Result<u64, BackendError> {
        self.insert(name, SnapshotKind::Full, blob)
    }

    /// Saves a full version of every `(name, blob)` pair through one
    /// [`ObjectBackend::put_many`] batch — a fleet of nyms snapshotting
    /// together pays the backend's per-operation overhead once. Returns
    /// the assigned version numbers in input order. On backend failure
    /// nothing is recorded in the index (the backend may hold a prefix
    /// of the batch, matching the `put_many` contract).
    pub fn try_save_many(
        &mut self,
        items: Vec<(String, Vec<u8>)>,
    ) -> Result<Vec<u64>, BackendError> {
        self.sweep_pending();
        // Duplicate names inside one batch get consecutive versions.
        let mut next: BTreeMap<String, u64> = BTreeMap::new();
        let mut versions = Vec::with_capacity(items.len());
        let mut staged = Vec::with_capacity(items.len());
        let mut meta = Vec::with_capacity(items.len());
        for (name, blob) in items {
            let version = next
                .get(&name)
                .copied()
                .unwrap_or_else(|| self.latest.get(&name).map_or(1, |v| v + 1));
            next.insert(name.clone(), version + 1);
            meta.push((name.clone(), blob.len()));
            staged.push((object_key(&name, version), blob));
            versions.push(version);
        }
        self.backend.put_many(staged)?;
        for ((name, len), version) in meta.into_iter().zip(&versions) {
            self.index
                .insert((name.clone(), *version), (SnapshotKind::Full, len));
            self.latest.insert(name.clone(), *version);
            self.prune(&name);
        }
        Ok(versions)
    }

    /// Chains a delta on `name`'s current snapshot. The existing chain
    /// plus the incoming delta is fully replayed (each hop
    /// Merkle-verified) *before* anything is stored, so a delta that
    /// could never verify — diffed against the wrong base, or offered
    /// to a name whose chain lost its full base — is rejected instead
    /// of poisoning every later load. Once the chain already holds
    /// `delta_limit` deltas, the store compacts: the verified merged
    /// archive is stored as a new **full** version.
    ///
    /// Fails without storing anything if no full base exists in the
    /// chain, if the chain bytes don't parse, if any replay hop fails
    /// verification, or if the backend refuses the write
    /// ([`DeltaError::Backend`]).
    pub fn save_delta(&mut self, name: &str, delta: &DeltaArchive) -> Result<u64, DeltaError> {
        // replay_latest also rejects a chain with no reachable full
        // base (e.g. after a rollback emptied it) with `NoBase`.
        let mut replayed = self.replay_latest(name)?;
        delta.apply(&mut replayed)?;
        let result = if self.deltas_since_full(name) >= self.delta_limit {
            self.insert(name, SnapshotKind::Full, replayed.to_bytes())
        } else {
            self.insert(name, SnapshotKind::Delta, delta.to_bytes())
        };
        result.map_err(DeltaError::Backend)
    }

    fn insert(
        &mut self,
        name: &str,
        kind: SnapshotKind,
        blob: Vec<u8>,
    ) -> Result<u64, BackendError> {
        self.sweep_pending();
        let version = self.latest.get(name).map_or(1, |v| v + 1);
        let len = blob.len();
        self.backend.put(&object_key(name, version), blob)?;
        self.index.insert((name.to_string(), version), (kind, len));
        self.latest.insert(name.to_string(), version);
        if kind == SnapshotKind::Full {
            self.prune(name);
        }
        Ok(version)
    }

    /// Drops every version older than the oldest retained full
    /// snapshot. Counting fulls (not raw versions) guarantees a
    /// retained delta's base is always retained with it.
    fn prune(&mut self, name: &str) {
        let fulls: Vec<u64> = self
            .versions_range(name)
            .filter(|v| self.kind(name, *v) == Some(SnapshotKind::Full))
            .collect();
        if fulls.len() <= self.retain {
            return;
        }
        let oldest_kept = fulls[fulls.len() - self.retain];
        let stale: Vec<u64> = self
            .versions_range(name)
            .take_while(|v| *v < oldest_kept)
            .collect();
        for v in stale {
            self.index.remove(&(name.to_string(), v));
            self.delete_or_queue(object_key(name, v));
        }
    }

    /// Deletes a retired blob, queueing the key for a later retry if
    /// the backend fails — the index entry is already gone either way,
    /// so the sweep must eventually happen backend-side too or the
    /// blob is stranded forever.
    fn delete_or_queue(&mut self, key: String) {
        if self.backend.delete(&key).is_err() {
            self.pending_sweep.push(key);
        }
    }

    /// Retries every queued failed delete; keys that fail again stay
    /// queued. Returns how many were swept. Runs opportunistically
    /// before each save, and callers recovering a store can invoke it
    /// directly.
    pub fn sweep_pending(&mut self) -> usize {
        let queued = std::mem::take(&mut self.pending_sweep);
        let mut swept = 0;
        for key in queued {
            if self.backend.delete(&key).is_ok() {
                swept += 1;
            } else {
                self.pending_sweep.push(key);
            }
        }
        swept
    }

    /// Retired blobs whose backend delete still needs retrying.
    pub fn pending_sweep_len(&self) -> usize {
        self.pending_sweep.len()
    }

    /// Loads a specific version's raw bytes. `None` covers both "no
    /// such version" and a failing backend — chain replay
    /// ([`VersionedStore::load_latest_archive`]) goes through
    /// [`VersionedStore::try_load`] instead so backend faults are never
    /// misread as tampering or absence.
    pub fn load(&mut self, name: &str, version: u64) -> Option<&[u8]> {
        self.try_load(name, version).ok().flatten()
    }

    /// Loads a specific version's raw bytes, distinguishing an absent
    /// version (`Ok(None)`) from a backend failure.
    pub fn try_load(&mut self, name: &str, version: u64) -> Result<Option<&[u8]>, BackendError> {
        if !self.index.contains_key(&(name.to_string(), version)) {
            return Ok(None);
        }
        self.backend.get(&object_key(name, version))
    }

    /// The kind of a stored version.
    pub fn kind(&self, name: &str, version: u64) -> Option<SnapshotKind> {
        self.index
            .get(&(name.to_string(), version))
            .map(|(kind, _)| *kind)
    }

    /// Deltas accumulated on top of the most recent full version.
    pub fn deltas_since_full(&self, name: &str) -> usize {
        let Some(latest) = self.latest.get(name) else {
            return 0;
        };
        self.versions_range(name)
            .filter(|v| v <= latest)
            .rev()
            .take_while(|v| self.kind(name, *v) == Some(SnapshotKind::Delta))
            .count()
    }

    /// Replays `name`'s latest chain — most recent full version plus
    /// every delta after it — verifying each hop's Merkle commitment.
    /// Any parse failure or root mismatch fails the whole load.
    pub fn load_latest_archive(&mut self, name: &str) -> Result<NymArchive, DeltaError> {
        self.replay_latest(name)
    }

    fn replay_latest(&mut self, name: &str) -> Result<NymArchive, DeltaError> {
        let latest = *self.latest.get(name).ok_or(DeltaError::NoBase)?;
        let chain: Vec<u64> = self.versions_range(name).filter(|v| *v <= latest).collect();
        let base_idx = chain
            .iter()
            .rposition(|v| self.kind(name, *v) == Some(SnapshotKind::Full))
            .ok_or(DeltaError::NoBase)?;
        let base_bytes = self
            .try_load(name, chain[base_idx])
            .map_err(DeltaError::Backend)?
            .ok_or(DeltaError::NoBase)?;
        let mut archive = NymArchive::from_bytes(base_bytes)?;
        for v in &chain[base_idx + 1..] {
            let delta_bytes = self
                .try_load(name, *v)
                .map_err(DeltaError::Backend)?
                .ok_or(DeltaError::Malformed)?;
            let delta = DeltaArchive::from_bytes(delta_bytes)?;
            delta.apply(&mut archive)?;
        }
        Ok(archive)
    }

    /// Iterates the versions held for `name`, ascending, via a key-range
    /// scan of the index (tuple keys make this a contiguous slice).
    fn versions_range<'a>(&'a self, name: &'a str) -> impl DoubleEndedIterator<Item = u64> + 'a {
        self.index
            .range((name.to_string(), 0)..=(name.to_string(), u64::MAX))
            .map(|((_, v), _)| *v)
    }

    /// Loads the newest version, with its number.
    pub fn load_latest(&mut self, name: &str) -> Option<(u64, &[u8])> {
        let v = *self.latest.get(name)?;
        Some((v, self.load(name, v)?))
    }

    /// Rolls back: deletes the newest version so the previous one
    /// becomes latest (the stained-snapshot escape hatch). Returns the
    /// new latest version, or `None` if no older version remains.
    pub fn rollback(&mut self, name: &str) -> Option<u64> {
        let v = *self.latest.get(name)?;
        self.index.remove(&(name.to_string(), v));
        self.delete_or_queue(object_key(name, v));
        let prev = v
            .checked_sub(1)
            .filter(|p| *p > 0 && self.index.contains_key(&(name.to_string(), *p)))?;
        self.latest.insert(name.to_string(), prev);
        Some(prev)
    }

    /// Versions currently held for `name`, ascending.
    pub fn versions(&self, name: &str) -> Vec<u64> {
        self.versions_range(name).collect()
    }

    /// Total bytes held across every version (from the index — no
    /// backend round-trips).
    pub fn total_bytes(&self) -> usize {
        self.index.values().map(|(_, len)| len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn archive(v: u8) -> NymArchive {
        let mut a = NymArchive::new();
        a.put("anonvm.disk", vec![v; 400]);
        a.put("meta", format!("rev={v}").into_bytes());
        a
    }

    #[test]
    fn save_many_batches_versions_like_serial_saves() {
        let mut batched = VersionedStore::new(2);
        let mut serial = VersionedStore::new(2);
        serial.save("a", archive(1).to_bytes());
        let versions = batched
            .try_save_many(vec![
                ("a".to_string(), archive(1).to_bytes()),
                ("b".to_string(), archive(2).to_bytes()),
                ("a".to_string(), archive(3).to_bytes()), // same-batch successor
            ])
            .unwrap();
        serial.save("b", archive(2).to_bytes());
        serial.save("a", archive(3).to_bytes());
        assert_eq!(versions, vec![1, 1, 2]);
        for name in ["a", "b"] {
            assert_eq!(
                batched.load_latest_archive(name).unwrap(),
                serial.load_latest_archive(name).unwrap(),
                "{name}"
            );
        }
        // Retention applies to batched saves too.
        let versions = batched
            .try_save_many(vec![
                ("a".to_string(), archive(4).to_bytes()),
                ("a".to_string(), archive(5).to_bytes()),
            ])
            .unwrap();
        assert_eq!(versions, vec![3, 4]);
        assert_eq!(batched.kind("a", 1), None, "pruned past retain=2");
        assert_eq!(
            batched.load_latest_archive("a").unwrap(),
            archive(5),
            "latest wins"
        );
    }

    #[test]
    fn delta_chain_replays_to_exact_archive() {
        let mut s = VersionedStore::new(2);
        let mut cur = archive(1);
        s.save("n", cur.to_bytes());
        for v in 2..=3u8 {
            let mut next = cur.clone();
            next.put("meta", format!("rev={v}").into_bytes());
            let delta = DeltaArchive::diff(&cur, &next);
            let ver = s.save_delta("n", &delta).unwrap();
            assert_eq!(s.kind("n", ver), Some(SnapshotKind::Delta));
            cur = next;
        }
        assert_eq!(s.deltas_since_full("n"), 2);
        assert_eq!(s.load_latest_archive("n").unwrap(), cur);
        // Deltas are tiny relative to the base they patch.
        let delta_len = s.load("n", 3).unwrap().len();
        let base_len = s.load("n", 1).unwrap().len();
        assert!(delta_len < base_len / 4);
    }

    #[test]
    fn chain_compacts_after_limit() {
        let mut s = VersionedStore::new(3).with_delta_limit(2);
        let mut cur = archive(0);
        s.save("n", cur.to_bytes());
        for v in 1..=3u8 {
            let mut next = cur.clone();
            next.put("meta", format!("rev={v}").into_bytes());
            let delta = DeltaArchive::diff(&cur, &next);
            s.save_delta("n", &delta).unwrap();
            cur = next;
        }
        // Versions: 1=Full, 2=Delta, 3=Delta, 4=Full (auto-compacted).
        assert_eq!(
            (1..=4).map(|v| s.kind("n", v).unwrap()).collect::<Vec<_>>(),
            vec![
                SnapshotKind::Full,
                SnapshotKind::Delta,
                SnapshotKind::Delta,
                SnapshotKind::Full
            ]
        );
        assert_eq!(s.deltas_since_full("n"), 0);
        // The compacted full equals the incremental state.
        assert_eq!(s.load_latest_archive("n").unwrap(), cur);
        assert_eq!(
            NymArchive::from_bytes(s.load("n", 4).unwrap()).unwrap(),
            cur
        );
    }

    #[test]
    fn retention_never_orphans_a_chain() {
        let mut s = VersionedStore::new(1).with_delta_limit(10);
        let base = archive(1);
        s.save("n", base.to_bytes());
        let mut next = base.clone();
        next.put("meta", b"rev=2".to_vec());
        s.save_delta("n", &DeltaArchive::diff(&base, &next))
            .unwrap();
        // A second full chain starts; the old full + its delta go away
        // together (retain=1 counts full versions, not raw versions).
        s.save("n", archive(9).to_bytes());
        assert_eq!(s.versions("n"), vec![3]);
        assert_eq!(s.load_latest_archive("n").unwrap(), archive(9));
        // Pruned blobs are deleted from the backend too, not just the
        // index.
        assert_eq!(s.backend().get(&object_key("n", 1)), None);
        assert_eq!(s.backend().get(&object_key("n", 2)), None);
    }

    #[test]
    fn delta_without_base_refused() {
        let mut s = VersionedStore::new(2);
        let a = archive(1);
        let delta = DeltaArchive::diff(&a, &a);
        assert_eq!(s.save_delta("ghost", &delta), Err(DeltaError::NoBase));
        // Regression: rolling the only version off leaves a dangling
        // `latest` entry; a delta offered then has no base to chain on
        // and must be refused, not stored unreadably.
        s.save("n", a.to_bytes());
        assert!(s.rollback("n").is_none());
        assert_eq!(s.save_delta("n", &delta), Err(DeltaError::NoBase));
    }

    #[test]
    fn unverifiable_delta_never_stored() {
        // A delta diffed against a base this chain never held fails
        // verification at save time (not at some later load), and the
        // store is untouched.
        let mut s = VersionedStore::new(2);
        let base = archive(1);
        s.save("n", base.to_bytes());
        let other = archive(7);
        let mut other2 = other.clone();
        other2.put("meta", b"other-branch".to_vec());
        let stale = DeltaArchive::diff(&other, &other2);
        assert_eq!(s.save_delta("n", &stale), Err(DeltaError::RootMismatch));
        assert_eq!(s.versions("n"), vec![1]);
        assert_eq!(s.load_latest_archive("n").unwrap(), base);
    }

    #[test]
    fn tampered_chain_fails_closed() {
        let mut s = VersionedStore::new(2);
        let base = archive(1);
        s.save("n", base.to_bytes());
        let mut next = base.clone();
        next.put("meta", b"rev=2".to_vec());
        s.save_delta("n", &DeltaArchive::diff(&base, &next))
            .unwrap();
        // Corrupt the *base* record bytes behind the store's back: the
        // delta doesn't carry that record, so only the Merkle
        // commitment can notice.
        let mut evil = base.clone();
        evil.put("anonvm.disk", vec![0xEE; 400]);
        LocalStore::put(&mut s.backend, &object_key("n", 1), evil.to_bytes());
        assert_eq!(s.load_latest_archive("n"), Err(DeltaError::RootMismatch));
        // A delta refusing to verify also refuses to compact.
        let mut s2 = VersionedStore::new(2).with_delta_limit(1);
        s2.save("n", base.to_bytes());
        s2.save_delta("n", &DeltaArchive::diff(&base, &next))
            .unwrap();
        // A delta computed against a *different* base (its commitment
        // covers records this chain never held).
        let other = archive(7);
        let mut other2 = other.clone();
        other2.put("meta", b"other-branch".to_vec());
        let stale = DeltaArchive::diff(&other, &other2);
        let before = s2.versions("n");
        assert_eq!(s2.save_delta("n", &stale), Err(DeltaError::RootMismatch));
        assert_eq!(s2.versions("n"), before, "failed compaction stores nothing");
    }

    #[test]
    fn rollback_across_chain_boundary() {
        let mut s = VersionedStore::new(2);
        let base = archive(1);
        s.save("n", base.to_bytes());
        let mut next = base.clone();
        next.put("meta", b"stained".to_vec());
        s.save_delta("n", &DeltaArchive::diff(&base, &next))
            .unwrap();
        assert_eq!(s.load_latest_archive("n").unwrap(), next);
        // Roll the stained delta off: latest is the clean base again.
        assert_eq!(s.rollback("n"), Some(1));
        assert_eq!(s.load_latest_archive("n").unwrap(), base);
    }

    #[test]
    fn save_load_latest() {
        let mut s = VersionedStore::new(3);
        assert_eq!(s.save("alice", vec![1]), 1);
        assert_eq!(s.save("alice", vec![2]), 2);
        let (v, blob) = s.load_latest("alice").unwrap();
        assert_eq!((v, blob), (2, &[2u8][..]));
        assert_eq!(s.load("alice", 1), Some(&[1u8][..]));
        assert!(s.load_latest("bob").is_none());
    }

    #[test]
    fn retention_prunes_old_versions() {
        let mut s = VersionedStore::new(2);
        for i in 1..=5u8 {
            s.save("n", vec![i]);
        }
        assert_eq!(s.versions("n"), vec![4, 5]);
        assert_eq!(s.load("n", 3), None);
        assert_eq!(s.load("n", 5), Some(&[5u8][..]));
        assert_eq!(s.total_bytes(), 2);
    }

    #[test]
    fn rollback_escapes_a_stained_snapshot() {
        let mut s = VersionedStore::new(3);
        s.save("n", b"clean".to_vec());
        s.save("n", b"stained".to_vec());
        assert_eq!(s.load_latest("n").unwrap().1, b"stained");
        let v = s.rollback("n").unwrap();
        assert_eq!(v, 1);
        assert_eq!(s.load_latest("n").unwrap().1, b"clean");
        // The rolled-off blob is shredded from the backend.
        assert_eq!(s.backend().get(&object_key("n", 2)), None);
        // No older version left: rollback now fails and latest is gone
        // with a further rollback attempt refused.
        assert!(s.rollback("n").is_none());
    }

    #[test]
    fn rollback_without_history_fails() {
        let mut s = VersionedStore::new(2);
        assert!(s.rollback("ghost").is_none());
        s.save("n", vec![1]);
        // Only one version: rolling back would leave nothing.
        assert!(s.rollback("n").is_none());
    }

    #[test]
    #[should_panic(expected = "at least one version")]
    fn zero_retention_rejected() {
        let _ = VersionedStore::new(0);
    }

    #[test]
    fn version_like_names_cannot_collide() {
        // Regression: with formatted string keys, a nym literally named
        // "a@v1" shared the keyspace with version 1 of nym "a". The
        // injective object-key encoding keeps the namespaces disjoint
        // even on a flat string-named backend.
        let mut s = VersionedStore::new(3);
        s.save("a", b"version-one-of-a".to_vec());
        s.save("a@v1", b"the-nym-called-a@v1".to_vec());
        s.save("a", b"version-two-of-a".to_vec());

        assert_eq!(s.load("a", 1), Some(&b"version-one-of-a"[..]));
        assert_eq!(s.load("a@v1", 1), Some(&b"the-nym-called-a@v1"[..]));
        assert_eq!(s.versions("a"), vec![1, 2]);
        assert_eq!(s.versions("a@v1"), vec![1]);

        // Deleting the odd nym's history must not disturb "a".
        assert!(s.rollback("a@v1").is_none()); // only one version held
        assert_eq!(s.load_latest("a").unwrap().1, b"version-two-of-a");
        assert_eq!(s.versions("a"), vec![1, 2]);
    }

    #[test]
    fn generic_over_a_cloud_session_backend() {
        // The same store logic runs unchanged against a pseudonymous
        // cloud account; the provider observes only the session's exit
        // address and opaque derived object names.
        use crate::cloud::CloudProvider;
        use nymix_net::Ip;

        let mut provider = CloudProvider::new("drive");
        provider.create_account("anon", "tok");
        let exit = Ip::parse("198.18.0.9");
        {
            let session = provider.session("anon", "tok", exit);
            let mut s = VersionedStore::with_backend(session, 2);
            let base = archive(1);
            s.save("n", base.to_bytes());
            let mut next = base.clone();
            next.put("meta", b"rev=2".to_vec());
            s.save_delta("n", &DeltaArchive::diff(&base, &next))
                .unwrap();
            assert_eq!(s.load_latest_archive("n").unwrap(), next);
        }
        assert!(!p_is_empty(&provider));
        for entry in provider.access_log() {
            assert_eq!(entry.observed_ip, exit);
        }
    }

    fn p_is_empty(p: &crate::cloud::CloudProvider) -> bool {
        p.subpoena("anon").is_empty()
    }

    /// A backend whose deletes fail while `fail_deletes > 0` — the
    /// flaky-provider model for sweep-retry tests.
    struct FlakyDeletes {
        inner: LocalStore,
        fail_deletes: u32,
    }

    impl ObjectBackend for FlakyDeletes {
        fn put(&mut self, name: &str, data: Vec<u8>) -> Result<(), BackendError> {
            ObjectBackend::put(&mut self.inner, name, data)
        }

        fn get(&mut self, name: &str) -> Result<Option<&[u8]>, BackendError> {
            ObjectBackend::get(&mut self.inner, name)
        }

        fn delete(&mut self, name: &str) -> Result<bool, BackendError> {
            if self.fail_deletes > 0 {
                self.fail_deletes -= 1;
                return Err(BackendError::Transient("delete dropped".into()));
            }
            ObjectBackend::delete(&mut self.inner, name)
        }

        fn list(&mut self, out: &mut Vec<String>) -> Result<(), BackendError> {
            ObjectBackend::list(&mut self.inner, out)
        }
    }

    #[test]
    fn failed_prune_deletes_are_requeued_and_swept() {
        // Regression: prune/rollback used `let _ = delete(...)`, so a
        // backend that failed the delete stranded the blob forever
        // (index entry gone, bytes still on the backend).
        let backend = FlakyDeletes {
            inner: LocalStore::new(),
            fail_deletes: 2,
        };
        let mut s = VersionedStore::with_backend(backend, 1);
        s.try_save("n", archive(1).to_bytes()).unwrap();
        s.try_save("n", archive(2).to_bytes()).unwrap(); // prune v1: delete fails
        assert_eq!(s.pending_sweep_len(), 1);
        assert!(
            s.backend().inner.get(&object_key("n", 1)).is_some(),
            "stranded for now"
        );
        // One more failure left; rollback's delete also queues.
        assert!(s.rollback("n").is_none());
        assert_eq!(s.pending_sweep_len(), 2);
        // Backend healed: next save opportunistically sweeps the queue.
        s.try_save("n", archive(3).to_bytes()).unwrap();
        assert_eq!(s.pending_sweep_len(), 0);
        assert_eq!(s.backend().inner.get(&object_key("n", 1)), None);
        assert_eq!(s.backend().inner.get(&object_key("n", 2)), None);
    }

    #[test]
    fn attach_finishes_an_interrupted_compaction_sweep() {
        // Regression: a compaction that wrote its new full base and
        // died before deleting the retired chain left the old blobs on
        // the backend forever. `attach` rebuilds the index from the
        // backend and re-runs the (idempotent) retention sweep.
        let mut first = VersionedStore::new(1).with_delta_limit(2);
        let base = archive(1);
        first.save("n", base.to_bytes());
        let mut cur = base.clone();
        for v in 2..=3u8 {
            let mut next = cur.clone();
            next.put("meta", format!("rev={v}").into_bytes());
            first
                .save_delta("n", &DeltaArchive::diff(&cur, &next))
                .unwrap();
            cur = next;
        }
        // Simulate "new base written, retired chain not yet deleted":
        // copy every blob (v1 full + v2/v3 deltas) onto a fresh
        // backend, then add the compacted v4 full the dying process
        // managed to write.
        let mut crashed_backend = LocalStore::new();
        for v in 1..=3 {
            let blob = first.load("n", v).unwrap().to_vec();
            LocalStore::put(&mut crashed_backend, &object_key("n", v), blob);
        }
        let mut compacted = cur.clone();
        compacted.put("meta", b"rev=4".to_vec());
        LocalStore::put(
            &mut crashed_backend,
            &object_key("n", 4),
            compacted.to_bytes(),
        );

        let mut reopened = VersionedStore::attach(crashed_backend, 1).unwrap();
        // The sweep finished: only the new chain remains, on backend
        // and in index alike.
        assert_eq!(reopened.versions("n"), vec![4]);
        for v in 1..=3 {
            assert_eq!(
                reopened.backend().get(&object_key("n", v)),
                None,
                "v{v} was stranded"
            );
        }
        assert_eq!(reopened.load_latest_archive("n").unwrap(), compacted);
        // Attaching again is a no-op (sweep is idempotent).
        let backend = reopened.backend().clone();
        let mut again = VersionedStore::attach(backend, 1).unwrap();
        assert_eq!(again.versions("n"), vec![4]);
        assert_eq!(again.load_latest_archive("n").unwrap(), compacted);
    }

    #[test]
    fn attach_ignores_foreign_objects() {
        let mut backend = LocalStore::new();
        LocalStore::put(&mut backend, &object_key("n", 1), archive(1).to_bytes());
        // Not version keys / not archive magic: must be left alone.
        LocalStore::put(&mut backend, "nym:x@local/c/abcd", vec![0xAA; 32]);
        LocalStore::put(&mut backend, "vnothex0000000000/n", vec![1, 2, 3]);
        LocalStore::put(
            &mut backend,
            &object_key("junk", 2),
            b"not-an-archive".to_vec(),
        );
        let mut s = VersionedStore::attach(backend, 2).unwrap();
        assert_eq!(s.versions("n"), vec![1]);
        assert!(s.versions("junk").is_empty());
        assert_eq!(s.load_latest_archive("n").unwrap(), archive(1));
        // Foreign blobs untouched.
        assert!(s.backend().get("nym:x@local/c/abcd").is_some());
        assert!(s.backend().get(&object_key("junk", 2)).is_some());
    }

    #[test]
    fn object_key_parse_round_trips() {
        for (name, ver) in [("a", 1u64), ("weird/name@v1", 0xdead), ("", 42)] {
            let key = object_key(name, ver);
            assert_eq!(parse_object_key(&key), Some((ver, name)));
        }
        assert_eq!(parse_object_key("plain"), None);
        assert_eq!(parse_object_key("v123/short-hex"), None);
        assert_eq!(parse_object_key("v0000000000000001no-slash"), None);
    }
}
