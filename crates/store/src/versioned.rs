//! Versioned nym snapshots.
//!
//! The paper's store-nym workflow overwrites one object per nym. A
//! practical deployment wants a small history: the pre-configured model
//! (§3.5) is "never updating the stored nym state unless the user
//! explicitly requests another snapshot", and keeping the previous
//! snapshot(s) protects against a save that captures a freshly stained
//! session — the user can roll back past the stain.
//!
//! [`VersionedStore`] layers version numbering, retention, and rollback
//! over any [`ObjectBackend`] — a local partition by default, a
//! pseudonymous cloud session ([`crate::cloud::CloudSession`]) or
//! anything else implementing the trait via
//! [`VersionedStore::with_backend`]. Blobs live on the backend under
//! collision-free derived object names; the store keeps only the
//! version index (kind + size per version) in memory.
//!
//! ## Delta chains
//!
//! A version is either a **full** archive or a **delta**
//! ([`crate::delta::DeltaArchive`]) chained on the most recent full
//! version. [`VersionedStore::save_delta`] appends to the current
//! chain and — once the run reaches the store's delta limit
//! ([`DELTA_CHAIN_LIMIT`] by default) — automatically compacts: the
//! chain is replayed (each hop Merkle-verified), merged with the
//! incoming delta, and stored as a new full archive, bounding both
//! restore latency and the blast radius of a lost object.
//! [`VersionedStore::load_latest_archive`] replays base + deltas and
//! fails closed on any root mismatch. Retention counts **full**
//! versions only; deltas ride with the base they depend on, so pruning
//! can never orphan a chain.

use std::collections::BTreeMap;

use crate::archive::NymArchive;
use crate::backend::{BackendError, ObjectBackend};
use crate::delta::{DeltaArchive, DeltaError, DELTA_CHAIN_LIMIT};
use crate::local::LocalStore;

/// Whether a stored version is a full archive or a delta on the chain
/// of the preceding full version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotKind {
    /// A self-contained archive.
    Full,
    /// A dirty-record delta; meaningful only replayed onto its base.
    Delta,
}

/// Backend object name of `(name, version)`. The fixed-width version
/// prefix plus separator makes the mapping injective for arbitrary nym
/// names — a nym actually *named* `a@v1` can never collide with
/// version 1 of a nym named `a` (the regression the tuple-keyed store
/// fixed, preserved across the move onto string-named backends).
fn object_key(name: &str, version: u64) -> String {
    format!("v{version:016x}/{name}")
}

/// A store keeping up to `retain` full-snapshot chains per nym name,
/// generic over the [`ObjectBackend`] holding the blobs (an in-process
/// [`LocalStore`] unless [`VersionedStore::with_backend`] says
/// otherwise).
///
/// The version index — which versions exist, their kind and size — is
/// store-side state; the backend sees only opaque named blobs.
#[derive(Debug, Clone)]
pub struct VersionedStore<B: ObjectBackend = LocalStore> {
    backend: B,
    index: BTreeMap<(String, u64), (SnapshotKind, usize)>,
    latest: BTreeMap<String, u64>,
    retain: usize,
    delta_limit: usize,
}

impl VersionedStore {
    /// A store over a fresh in-memory [`LocalStore`] backend, retaining
    /// `retain` full versions per name (deltas ride with their base),
    /// compacting chains after [`DELTA_CHAIN_LIMIT`] deltas.
    ///
    /// # Panics
    ///
    /// Panics if `retain` is zero.
    pub fn new(retain: usize) -> Self {
        Self::with_backend(LocalStore::new(), retain)
    }
}

impl<B: ObjectBackend> VersionedStore<B> {
    /// A store writing its blobs through `backend`.
    ///
    /// # Panics
    ///
    /// Panics if `retain` is zero.
    pub fn with_backend(backend: B, retain: usize) -> Self {
        assert!(retain > 0, "must retain at least one version");
        Self {
            backend,
            index: BTreeMap::new(),
            latest: BTreeMap::new(),
            retain,
            delta_limit: DELTA_CHAIN_LIMIT,
        }
    }

    /// Overrides the compaction threshold (deltas allowed per chain).
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero (every save would be a full archive —
    /// use [`VersionedStore::save`] directly instead).
    pub fn with_delta_limit(mut self, limit: usize) -> Self {
        assert!(limit > 0, "delta limit must be at least one");
        self.delta_limit = limit;
        self
    }

    /// The underlying backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Saves a new full version of `name`; returns its version number.
    /// Old chains beyond the retention window are pruned (and deleted
    /// from the backend — a real device would also shred them).
    ///
    /// # Panics
    ///
    /// Panics if the backend refuses the write. Infallible over the
    /// default in-memory [`LocalStore`]; against a fallible backend
    /// (e.g. a credentialed cloud session) use
    /// [`VersionedStore::try_save`].
    pub fn save(&mut self, name: &str, blob: Vec<u8>) -> u64 {
        self.try_save(name, blob)
            .unwrap_or_else(|e| panic!("backend refused snapshot write: {e}"))
    }

    /// [`VersionedStore::save`] propagating backend failures instead of
    /// panicking. Nothing is recorded in the version index unless the
    /// backend accepted the blob.
    pub fn try_save(&mut self, name: &str, blob: Vec<u8>) -> Result<u64, BackendError> {
        self.insert(name, SnapshotKind::Full, blob)
    }

    /// Saves a full version of every `(name, blob)` pair through one
    /// [`ObjectBackend::put_many`] batch — a fleet of nyms snapshotting
    /// together pays the backend's per-operation overhead once. Returns
    /// the assigned version numbers in input order. On backend failure
    /// nothing is recorded in the index (the backend may hold a prefix
    /// of the batch, matching the `put_many` contract).
    pub fn try_save_many(
        &mut self,
        items: Vec<(String, Vec<u8>)>,
    ) -> Result<Vec<u64>, BackendError> {
        // Duplicate names inside one batch get consecutive versions.
        let mut next: BTreeMap<String, u64> = BTreeMap::new();
        let mut versions = Vec::with_capacity(items.len());
        let mut staged = Vec::with_capacity(items.len());
        let mut meta = Vec::with_capacity(items.len());
        for (name, blob) in items {
            let version = next
                .get(&name)
                .copied()
                .unwrap_or_else(|| self.latest.get(&name).map_or(1, |v| v + 1));
            next.insert(name.clone(), version + 1);
            meta.push((name.clone(), blob.len()));
            staged.push((object_key(&name, version), blob));
            versions.push(version);
        }
        self.backend.put_many(staged)?;
        for ((name, len), version) in meta.into_iter().zip(&versions) {
            self.index
                .insert((name.clone(), *version), (SnapshotKind::Full, len));
            self.latest.insert(name.clone(), *version);
            self.prune(&name);
        }
        Ok(versions)
    }

    /// Chains a delta on `name`'s current snapshot. The existing chain
    /// plus the incoming delta is fully replayed (each hop
    /// Merkle-verified) *before* anything is stored, so a delta that
    /// could never verify — diffed against the wrong base, or offered
    /// to a name whose chain lost its full base — is rejected instead
    /// of poisoning every later load. Once the chain already holds
    /// `delta_limit` deltas, the store compacts: the verified merged
    /// archive is stored as a new **full** version.
    ///
    /// Fails without storing anything if no full base exists in the
    /// chain, if the chain bytes don't parse, if any replay hop fails
    /// verification, or if the backend refuses the write
    /// ([`DeltaError::Backend`]).
    pub fn save_delta(&mut self, name: &str, delta: &DeltaArchive) -> Result<u64, DeltaError> {
        // replay_latest also rejects a chain with no reachable full
        // base (e.g. after a rollback emptied it) with `NoBase`.
        let mut replayed = self.replay_latest(name)?;
        delta.apply(&mut replayed)?;
        let result = if self.deltas_since_full(name) >= self.delta_limit {
            self.insert(name, SnapshotKind::Full, replayed.to_bytes())
        } else {
            self.insert(name, SnapshotKind::Delta, delta.to_bytes())
        };
        result.map_err(DeltaError::Backend)
    }

    fn insert(
        &mut self,
        name: &str,
        kind: SnapshotKind,
        blob: Vec<u8>,
    ) -> Result<u64, BackendError> {
        let version = self.latest.get(name).map_or(1, |v| v + 1);
        let len = blob.len();
        self.backend.put(&object_key(name, version), blob)?;
        self.index.insert((name.to_string(), version), (kind, len));
        self.latest.insert(name.to_string(), version);
        if kind == SnapshotKind::Full {
            self.prune(name);
        }
        Ok(version)
    }

    /// Drops every version older than the oldest retained full
    /// snapshot. Counting fulls (not raw versions) guarantees a
    /// retained delta's base is always retained with it.
    fn prune(&mut self, name: &str) {
        let fulls: Vec<u64> = self
            .versions_range(name)
            .filter(|v| self.kind(name, *v) == Some(SnapshotKind::Full))
            .collect();
        if fulls.len() <= self.retain {
            return;
        }
        let oldest_kept = fulls[fulls.len() - self.retain];
        let stale: Vec<u64> = self
            .versions_range(name)
            .take_while(|v| *v < oldest_kept)
            .collect();
        for v in stale {
            self.index.remove(&(name.to_string(), v));
            let _ = self.backend.delete(&object_key(name, v));
        }
    }

    /// Loads a specific version's raw bytes. `None` covers both "no
    /// such version" and a failing backend — chain replay
    /// ([`VersionedStore::load_latest_archive`]) goes through
    /// [`VersionedStore::try_load`] instead so backend faults are never
    /// misread as tampering or absence.
    pub fn load(&mut self, name: &str, version: u64) -> Option<&[u8]> {
        self.try_load(name, version).ok().flatten()
    }

    /// Loads a specific version's raw bytes, distinguishing an absent
    /// version (`Ok(None)`) from a backend failure.
    pub fn try_load(&mut self, name: &str, version: u64) -> Result<Option<&[u8]>, BackendError> {
        if !self.index.contains_key(&(name.to_string(), version)) {
            return Ok(None);
        }
        self.backend.get(&object_key(name, version))
    }

    /// The kind of a stored version.
    pub fn kind(&self, name: &str, version: u64) -> Option<SnapshotKind> {
        self.index
            .get(&(name.to_string(), version))
            .map(|(kind, _)| *kind)
    }

    /// Deltas accumulated on top of the most recent full version.
    pub fn deltas_since_full(&self, name: &str) -> usize {
        let Some(latest) = self.latest.get(name) else {
            return 0;
        };
        self.versions_range(name)
            .filter(|v| v <= latest)
            .rev()
            .take_while(|v| self.kind(name, *v) == Some(SnapshotKind::Delta))
            .count()
    }

    /// Replays `name`'s latest chain — most recent full version plus
    /// every delta after it — verifying each hop's Merkle commitment.
    /// Any parse failure or root mismatch fails the whole load.
    pub fn load_latest_archive(&mut self, name: &str) -> Result<NymArchive, DeltaError> {
        self.replay_latest(name)
    }

    fn replay_latest(&mut self, name: &str) -> Result<NymArchive, DeltaError> {
        let latest = *self.latest.get(name).ok_or(DeltaError::NoBase)?;
        let chain: Vec<u64> = self.versions_range(name).filter(|v| *v <= latest).collect();
        let base_idx = chain
            .iter()
            .rposition(|v| self.kind(name, *v) == Some(SnapshotKind::Full))
            .ok_or(DeltaError::NoBase)?;
        let base_bytes = self
            .try_load(name, chain[base_idx])
            .map_err(DeltaError::Backend)?
            .ok_or(DeltaError::NoBase)?;
        let mut archive = NymArchive::from_bytes(base_bytes)?;
        for v in &chain[base_idx + 1..] {
            let delta_bytes = self
                .try_load(name, *v)
                .map_err(DeltaError::Backend)?
                .ok_or(DeltaError::Malformed)?;
            let delta = DeltaArchive::from_bytes(delta_bytes)?;
            delta.apply(&mut archive)?;
        }
        Ok(archive)
    }

    /// Iterates the versions held for `name`, ascending, via a key-range
    /// scan of the index (tuple keys make this a contiguous slice).
    fn versions_range<'a>(&'a self, name: &'a str) -> impl DoubleEndedIterator<Item = u64> + 'a {
        self.index
            .range((name.to_string(), 0)..=(name.to_string(), u64::MAX))
            .map(|((_, v), _)| *v)
    }

    /// Loads the newest version, with its number.
    pub fn load_latest(&mut self, name: &str) -> Option<(u64, &[u8])> {
        let v = *self.latest.get(name)?;
        Some((v, self.load(name, v)?))
    }

    /// Rolls back: deletes the newest version so the previous one
    /// becomes latest (the stained-snapshot escape hatch). Returns the
    /// new latest version, or `None` if no older version remains.
    pub fn rollback(&mut self, name: &str) -> Option<u64> {
        let v = *self.latest.get(name)?;
        self.index.remove(&(name.to_string(), v));
        let _ = self.backend.delete(&object_key(name, v));
        let prev = v
            .checked_sub(1)
            .filter(|p| *p > 0 && self.index.contains_key(&(name.to_string(), *p)))?;
        self.latest.insert(name.to_string(), prev);
        Some(prev)
    }

    /// Versions currently held for `name`, ascending.
    pub fn versions(&self, name: &str) -> Vec<u64> {
        self.versions_range(name).collect()
    }

    /// Total bytes held across every version (from the index — no
    /// backend round-trips).
    pub fn total_bytes(&self) -> usize {
        self.index.values().map(|(_, len)| len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn archive(v: u8) -> NymArchive {
        let mut a = NymArchive::new();
        a.put("anonvm.disk", vec![v; 400]);
        a.put("meta", format!("rev={v}").into_bytes());
        a
    }

    #[test]
    fn save_many_batches_versions_like_serial_saves() {
        let mut batched = VersionedStore::new(2);
        let mut serial = VersionedStore::new(2);
        serial.save("a", archive(1).to_bytes());
        let versions = batched
            .try_save_many(vec![
                ("a".to_string(), archive(1).to_bytes()),
                ("b".to_string(), archive(2).to_bytes()),
                ("a".to_string(), archive(3).to_bytes()), // same-batch successor
            ])
            .unwrap();
        serial.save("b", archive(2).to_bytes());
        serial.save("a", archive(3).to_bytes());
        assert_eq!(versions, vec![1, 1, 2]);
        for name in ["a", "b"] {
            assert_eq!(
                batched.load_latest_archive(name).unwrap(),
                serial.load_latest_archive(name).unwrap(),
                "{name}"
            );
        }
        // Retention applies to batched saves too.
        let versions = batched
            .try_save_many(vec![
                ("a".to_string(), archive(4).to_bytes()),
                ("a".to_string(), archive(5).to_bytes()),
            ])
            .unwrap();
        assert_eq!(versions, vec![3, 4]);
        assert_eq!(batched.kind("a", 1), None, "pruned past retain=2");
        assert_eq!(
            batched.load_latest_archive("a").unwrap(),
            archive(5),
            "latest wins"
        );
    }

    #[test]
    fn delta_chain_replays_to_exact_archive() {
        let mut s = VersionedStore::new(2);
        let mut cur = archive(1);
        s.save("n", cur.to_bytes());
        for v in 2..=3u8 {
            let mut next = cur.clone();
            next.put("meta", format!("rev={v}").into_bytes());
            let delta = DeltaArchive::diff(&cur, &next);
            let ver = s.save_delta("n", &delta).unwrap();
            assert_eq!(s.kind("n", ver), Some(SnapshotKind::Delta));
            cur = next;
        }
        assert_eq!(s.deltas_since_full("n"), 2);
        assert_eq!(s.load_latest_archive("n").unwrap(), cur);
        // Deltas are tiny relative to the base they patch.
        let delta_len = s.load("n", 3).unwrap().len();
        let base_len = s.load("n", 1).unwrap().len();
        assert!(delta_len < base_len / 4);
    }

    #[test]
    fn chain_compacts_after_limit() {
        let mut s = VersionedStore::new(3).with_delta_limit(2);
        let mut cur = archive(0);
        s.save("n", cur.to_bytes());
        for v in 1..=3u8 {
            let mut next = cur.clone();
            next.put("meta", format!("rev={v}").into_bytes());
            let delta = DeltaArchive::diff(&cur, &next);
            s.save_delta("n", &delta).unwrap();
            cur = next;
        }
        // Versions: 1=Full, 2=Delta, 3=Delta, 4=Full (auto-compacted).
        assert_eq!(
            (1..=4).map(|v| s.kind("n", v).unwrap()).collect::<Vec<_>>(),
            vec![
                SnapshotKind::Full,
                SnapshotKind::Delta,
                SnapshotKind::Delta,
                SnapshotKind::Full
            ]
        );
        assert_eq!(s.deltas_since_full("n"), 0);
        // The compacted full equals the incremental state.
        assert_eq!(s.load_latest_archive("n").unwrap(), cur);
        assert_eq!(
            NymArchive::from_bytes(s.load("n", 4).unwrap()).unwrap(),
            cur
        );
    }

    #[test]
    fn retention_never_orphans_a_chain() {
        let mut s = VersionedStore::new(1).with_delta_limit(10);
        let base = archive(1);
        s.save("n", base.to_bytes());
        let mut next = base.clone();
        next.put("meta", b"rev=2".to_vec());
        s.save_delta("n", &DeltaArchive::diff(&base, &next))
            .unwrap();
        // A second full chain starts; the old full + its delta go away
        // together (retain=1 counts full versions, not raw versions).
        s.save("n", archive(9).to_bytes());
        assert_eq!(s.versions("n"), vec![3]);
        assert_eq!(s.load_latest_archive("n").unwrap(), archive(9));
        // Pruned blobs are deleted from the backend too, not just the
        // index.
        assert_eq!(s.backend().get(&object_key("n", 1)), None);
        assert_eq!(s.backend().get(&object_key("n", 2)), None);
    }

    #[test]
    fn delta_without_base_refused() {
        let mut s = VersionedStore::new(2);
        let a = archive(1);
        let delta = DeltaArchive::diff(&a, &a);
        assert_eq!(s.save_delta("ghost", &delta), Err(DeltaError::NoBase));
        // Regression: rolling the only version off leaves a dangling
        // `latest` entry; a delta offered then has no base to chain on
        // and must be refused, not stored unreadably.
        s.save("n", a.to_bytes());
        assert!(s.rollback("n").is_none());
        assert_eq!(s.save_delta("n", &delta), Err(DeltaError::NoBase));
    }

    #[test]
    fn unverifiable_delta_never_stored() {
        // A delta diffed against a base this chain never held fails
        // verification at save time (not at some later load), and the
        // store is untouched.
        let mut s = VersionedStore::new(2);
        let base = archive(1);
        s.save("n", base.to_bytes());
        let other = archive(7);
        let mut other2 = other.clone();
        other2.put("meta", b"other-branch".to_vec());
        let stale = DeltaArchive::diff(&other, &other2);
        assert_eq!(s.save_delta("n", &stale), Err(DeltaError::RootMismatch));
        assert_eq!(s.versions("n"), vec![1]);
        assert_eq!(s.load_latest_archive("n").unwrap(), base);
    }

    #[test]
    fn tampered_chain_fails_closed() {
        let mut s = VersionedStore::new(2);
        let base = archive(1);
        s.save("n", base.to_bytes());
        let mut next = base.clone();
        next.put("meta", b"rev=2".to_vec());
        s.save_delta("n", &DeltaArchive::diff(&base, &next))
            .unwrap();
        // Corrupt the *base* record bytes behind the store's back: the
        // delta doesn't carry that record, so only the Merkle
        // commitment can notice.
        let mut evil = base.clone();
        evil.put("anonvm.disk", vec![0xEE; 400]);
        LocalStore::put(&mut s.backend, &object_key("n", 1), evil.to_bytes());
        assert_eq!(s.load_latest_archive("n"), Err(DeltaError::RootMismatch));
        // A delta refusing to verify also refuses to compact.
        let mut s2 = VersionedStore::new(2).with_delta_limit(1);
        s2.save("n", base.to_bytes());
        s2.save_delta("n", &DeltaArchive::diff(&base, &next))
            .unwrap();
        // A delta computed against a *different* base (its commitment
        // covers records this chain never held).
        let other = archive(7);
        let mut other2 = other.clone();
        other2.put("meta", b"other-branch".to_vec());
        let stale = DeltaArchive::diff(&other, &other2);
        let before = s2.versions("n");
        assert_eq!(s2.save_delta("n", &stale), Err(DeltaError::RootMismatch));
        assert_eq!(s2.versions("n"), before, "failed compaction stores nothing");
    }

    #[test]
    fn rollback_across_chain_boundary() {
        let mut s = VersionedStore::new(2);
        let base = archive(1);
        s.save("n", base.to_bytes());
        let mut next = base.clone();
        next.put("meta", b"stained".to_vec());
        s.save_delta("n", &DeltaArchive::diff(&base, &next))
            .unwrap();
        assert_eq!(s.load_latest_archive("n").unwrap(), next);
        // Roll the stained delta off: latest is the clean base again.
        assert_eq!(s.rollback("n"), Some(1));
        assert_eq!(s.load_latest_archive("n").unwrap(), base);
    }

    #[test]
    fn save_load_latest() {
        let mut s = VersionedStore::new(3);
        assert_eq!(s.save("alice", vec![1]), 1);
        assert_eq!(s.save("alice", vec![2]), 2);
        let (v, blob) = s.load_latest("alice").unwrap();
        assert_eq!((v, blob), (2, &[2u8][..]));
        assert_eq!(s.load("alice", 1), Some(&[1u8][..]));
        assert!(s.load_latest("bob").is_none());
    }

    #[test]
    fn retention_prunes_old_versions() {
        let mut s = VersionedStore::new(2);
        for i in 1..=5u8 {
            s.save("n", vec![i]);
        }
        assert_eq!(s.versions("n"), vec![4, 5]);
        assert_eq!(s.load("n", 3), None);
        assert_eq!(s.load("n", 5), Some(&[5u8][..]));
        assert_eq!(s.total_bytes(), 2);
    }

    #[test]
    fn rollback_escapes_a_stained_snapshot() {
        let mut s = VersionedStore::new(3);
        s.save("n", b"clean".to_vec());
        s.save("n", b"stained".to_vec());
        assert_eq!(s.load_latest("n").unwrap().1, b"stained");
        let v = s.rollback("n").unwrap();
        assert_eq!(v, 1);
        assert_eq!(s.load_latest("n").unwrap().1, b"clean");
        // The rolled-off blob is shredded from the backend.
        assert_eq!(s.backend().get(&object_key("n", 2)), None);
        // No older version left: rollback now fails and latest is gone
        // with a further rollback attempt refused.
        assert!(s.rollback("n").is_none());
    }

    #[test]
    fn rollback_without_history_fails() {
        let mut s = VersionedStore::new(2);
        assert!(s.rollback("ghost").is_none());
        s.save("n", vec![1]);
        // Only one version: rolling back would leave nothing.
        assert!(s.rollback("n").is_none());
    }

    #[test]
    #[should_panic(expected = "at least one version")]
    fn zero_retention_rejected() {
        let _ = VersionedStore::new(0);
    }

    #[test]
    fn version_like_names_cannot_collide() {
        // Regression: with formatted string keys, a nym literally named
        // "a@v1" shared the keyspace with version 1 of nym "a". The
        // injective object-key encoding keeps the namespaces disjoint
        // even on a flat string-named backend.
        let mut s = VersionedStore::new(3);
        s.save("a", b"version-one-of-a".to_vec());
        s.save("a@v1", b"the-nym-called-a@v1".to_vec());
        s.save("a", b"version-two-of-a".to_vec());

        assert_eq!(s.load("a", 1), Some(&b"version-one-of-a"[..]));
        assert_eq!(s.load("a@v1", 1), Some(&b"the-nym-called-a@v1"[..]));
        assert_eq!(s.versions("a"), vec![1, 2]);
        assert_eq!(s.versions("a@v1"), vec![1]);

        // Deleting the odd nym's history must not disturb "a".
        assert!(s.rollback("a@v1").is_none()); // only one version held
        assert_eq!(s.load_latest("a").unwrap().1, b"version-two-of-a");
        assert_eq!(s.versions("a"), vec![1, 2]);
    }

    #[test]
    fn generic_over_a_cloud_session_backend() {
        // The same store logic runs unchanged against a pseudonymous
        // cloud account; the provider observes only the session's exit
        // address and opaque derived object names.
        use crate::cloud::CloudProvider;
        use nymix_net::Ip;

        let mut provider = CloudProvider::new("drive");
        provider.create_account("anon", "tok");
        let exit = Ip::parse("198.18.0.9");
        {
            let session = provider.session("anon", "tok", exit);
            let mut s = VersionedStore::with_backend(session, 2);
            let base = archive(1);
            s.save("n", base.to_bytes());
            let mut next = base.clone();
            next.put("meta", b"rev=2".to_vec());
            s.save_delta("n", &DeltaArchive::diff(&base, &next))
                .unwrap();
            assert_eq!(s.load_latest_archive("n").unwrap(), next);
        }
        assert!(!p_is_empty(&provider));
        for entry in provider.access_log() {
            assert_eq!(entry.observed_ip, exit);
        }
    }

    fn p_is_empty(p: &crate::cloud::CloudProvider) -> bool {
        p.subpoena("anon").is_empty()
    }
}
