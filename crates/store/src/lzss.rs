//! LZSS compression.
//!
//! A windowed dictionary compressor in the LZSS family: output is a
//! stream of flag-grouped items, each either a literal byte or a
//! `(distance, length)` back-reference into a 4 KiB sliding window.
//! Nym archives are mostly browser profile/cache data — a mix of highly
//! repetitive text (HTML, JSON, SQLite) and incompressible media — so a
//! simple LZSS captures the right size behaviour for Figure 6.
//!
//! Format: repeated groups of `flag_byte` + 8 items. Flag bit *i* set
//! means item *i* is a literal byte; clear means a 2-byte match token:
//! 12 bits of distance (1-based) and 4 bits of length-3 (match lengths
//! 3..=18). The stream is prefixed with the 8-byte plaintext length.
//!
//! The encoder is built for the sealing hot path:
//!
//! * [`Compressor`] owns the hash-chain match-finder arena, so repeated
//!   seals reuse it; [`Compressor::compress_into`] appends to a caller
//!   buffer and performs no allocation once the arena is warm.
//! * Output is emitted incrementally — the flag byte of each 8-item
//!   group is reserved and patched — instead of staging an item list.
//! * Matching is lazy (one-step deferred): when position `i` matches, the
//!   encoder also probes `i + 1` and emits a literal first if the next
//!   position matches strictly longer, which is worth a few percent on
//!   HTML/JSON-like input over the greedy parse.

const WINDOW: usize = 4096;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 18;

const HASH_BITS: usize = 13;
/// Match-finder probe budget per position.
const MAX_TRIES: usize = 32;

#[inline]
fn hash3(a: u8, b: u8, c: u8) -> usize {
    ((a as usize) << 6 ^ (b as usize) << 3 ^ c as usize) & ((1 << HASH_BITS) - 1)
}

/// A reusable LZSS encoder: the hash-chain arena persists across calls.
#[derive(Debug, Default, Clone)]
pub struct Compressor {
    /// Most recent position per 3-byte-prefix hash bucket, or -1.
    head: Vec<i64>,
    /// Previous position with the same hash, per position, or -1.
    prev: Vec<i64>,
}

impl Compressor {
    /// A compressor with an empty (lazily grown) arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compresses `data`, appending the stream to `out`. With a warm
    /// arena and sufficient `out` capacity this performs no allocation.
    pub fn compress_into(&mut self, data: &[u8], out: &mut Vec<u8>) {
        self.compress_impl(data, out, true);
    }

    /// Greedy (non-lazy) parse of the same format. Kept for ratio
    /// comparison in tests and benches; sealing uses the lazy parse.
    #[doc(hidden)]
    pub fn compress_greedy_into(&mut self, data: &[u8], out: &mut Vec<u8>) {
        self.compress_impl(data, out, false);
    }

    fn compress_impl(&mut self, data: &[u8], out: &mut Vec<u8>, lazy: bool) {
        out.reserve(data.len() + data.len() / 8 + 16);
        out.extend_from_slice(&(data.len() as u64).to_le_bytes());

        self.head.clear();
        self.head.resize(1 << HASH_BITS, -1);
        self.prev.clear();
        self.prev.resize(data.len(), -1);

        // Incremental flag-group emission: reserve the flag byte, push
        // the group's items, patch the flags once 8 items are out.
        let mut flag_pos = 0usize;
        let mut flag = 0u8;
        let mut flag_count = 0u8;
        macro_rules! begin_item {
            () => {
                if flag_count == 0 {
                    flag_pos = out.len();
                    out.push(0);
                }
            };
        }
        macro_rules! end_item {
            () => {
                flag_count += 1;
                if flag_count == 8 {
                    out[flag_pos] = flag;
                    flag = 0;
                    flag_count = 0;
                }
            };
        }

        // Positions `.. inserted` are in the chains; insertion is lazy so
        // both the greedy and deferred paths index identically.
        let mut inserted = 0usize;
        macro_rules! insert_below {
            ($limit:expr) => {
                while inserted < $limit {
                    if inserted + MIN_MATCH <= data.len() {
                        let h = hash3(data[inserted], data[inserted + 1], data[inserted + 2]);
                        self.prev[inserted] = self.head[h];
                        self.head[h] = inserted as i64;
                    }
                    inserted += 1;
                }
            };
        }

        let mut i = 0usize;
        // A match found while probing `i + 1` for the lazy decision,
        // carried into the next loop step.
        let mut pending: Option<(usize, usize)> = None;
        while i < data.len() {
            insert_below!(i);
            let (best_len, best_dist) = pending
                .take()
                .unwrap_or_else(|| find_match(data, &self.head, &self.prev, i));
            if best_len >= MIN_MATCH {
                // Lazy probe: if the very next position matches strictly
                // longer, emit this byte as a literal and defer.
                if lazy && best_len < MAX_MATCH && i + 1 + MIN_MATCH <= data.len() {
                    insert_below!(i + 1);
                    let next = find_match(data, &self.head, &self.prev, i + 1);
                    if next.0 > best_len {
                        begin_item!();
                        flag |= 1 << flag_count;
                        out.push(data[i]);
                        end_item!();
                        pending = Some(next);
                        i += 1;
                        continue;
                    }
                }
                // lint:allow(panic-free-parser): compressor-side pack; find_match bounds dist to the window and len to MAX_MATCH by construction
                let token = (((best_dist - 1) as u16) << 4) | ((best_len - MIN_MATCH) as u16);
                begin_item!();
                out.extend_from_slice(&token.to_le_bytes());
                end_item!();
                i += best_len;
            } else {
                begin_item!();
                flag |= 1 << flag_count;
                out.push(data[i]);
                end_item!();
                i += 1;
            }
        }
        if flag_count > 0 {
            out[flag_pos] = flag;
        }
    }
}

/// Longest match for position `i` among chained earlier positions,
/// returned as `(len, dist)`; `len` is 0 when nothing reaches
/// [`MIN_MATCH`].
#[inline]
fn find_match(data: &[u8], head: &[i64], prev: &[i64], i: usize) -> (usize, usize) {
    let mut best_len = 0usize;
    let mut best_dist = 0usize;
    if i + MIN_MATCH > data.len() {
        return (0, 0);
    }
    let h = hash3(data[i], data[i + 1], data[i + 2]);
    let mut candidate = head[h];
    let mut tries = MAX_TRIES;
    let max = MAX_MATCH.min(data.len() - i);
    while candidate >= 0 && tries > 0 {
        let c = candidate as usize;
        let dist = i - c;
        if dist > WINDOW {
            break;
        }
        let mut len = 0usize;
        while len < max && data[c + len] == data[i + len] {
            len += 1;
        }
        if len > best_len {
            best_len = len;
            best_dist = dist;
            if len == MAX_MATCH {
                break;
            }
        }
        candidate = prev[c];
        tries -= 1;
    }
    (best_len, best_dist)
}

/// Compresses `data`.
///
/// # Examples
///
/// ```
/// let data = b"abcabcabcabcabcabc".to_vec();
/// let packed = nymix_store::lzss::compress(&data);
/// assert!(packed.len() < data.len() + 9);
/// assert_eq!(nymix_store::lzss::decompress(&packed).unwrap(), data);
/// ```
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    Compressor::new().compress_into(data, &mut out);
    out
}

/// Emits `data` as a *stored* (all-literal) stream of the same format:
/// header + flag bytes of all ones + the raw bytes. [`decompress_into`]
/// reads it like any other stream, so callers that know their payload
/// is incompressible (see [`entropy_bits_per_byte`]) can skip the
/// match finder — no hash-chain build, no probing — at the cost LZSS
/// already pays on such input anyway (one flag byte per 8 literals).
pub fn store_into(data: &[u8], out: &mut Vec<u8>) {
    out.reserve(8 + data.len() + data.len() / 8 + 1);
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    let mut chunks = data.chunks_exact(8);
    for group in &mut chunks {
        out.push(0xFF);
        out.extend_from_slice(group);
    }
    let tail = chunks.remainder();
    if !tail.is_empty() {
        out.push(0xFF);
        out.extend_from_slice(tail);
    }
}

/// Sampled Shannon entropy estimate of `data`'s byte distribution, in
/// bits per byte (0.0 for empty input, 8.0 for uniform bytes). Up to
/// 4 KiB is sampled at an even stride, so the probe is O(1) for large
/// inputs and allocation-free. Byte entropy overestimates LZSS
/// compressibility on byte-uniform-but-repetitive input (repeated
/// random blocks), so treat a high reading as "not worth compressing",
/// not as a guarantee in the other direction.
pub fn entropy_bits_per_byte(data: &[u8]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    const SAMPLE: usize = 4096;
    let stride = data.len().div_ceil(SAMPLE).max(1);
    let mut histogram = [0u32; 256];
    let mut sampled = 0u32;
    let mut i = 0;
    while i < data.len() {
        histogram[data[i] as usize] += 1;
        sampled += 1;
        i += stride;
    }
    let n = f64::from(sampled);
    let mut bits = 0.0;
    for &count in &histogram {
        if count > 0 {
            let p = f64::from(count) / n;
            bits -= p * p.log2();
        }
    }
    bits
}

/// Error from [`decompress`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LzssError {
    /// Input ended mid-stream.
    Truncated,
    /// A back-reference pointed before the start of output.
    BadReference,
    /// Output length disagreed with the header.
    LengthMismatch,
}

impl core::fmt::Display for LzssError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LzssError::Truncated => write!(f, "compressed stream truncated"),
            LzssError::BadReference => write!(f, "back-reference out of range"),
            LzssError::LengthMismatch => write!(f, "decompressed length mismatch"),
        }
    }
}

impl std::error::Error for LzssError {}

/// Decompresses a [`compress`] stream, appending the plaintext to `out`
/// (which is cleared first). With sufficient capacity in `out` this
/// performs no allocation.
pub fn decompress_into(packed: &[u8], out: &mut Vec<u8>) -> Result<(), LzssError> {
    out.clear();
    if packed.len() < 8 {
        return Err(LzssError::Truncated);
    }
    let expect_len = match packed[..8].try_into() {
        Ok(bytes) => u64::from_le_bytes(bytes) as usize,
        Err(_) => return Err(LzssError::Truncated),
    };
    // The header is untrusted input: a match token encodes at most
    // MAX_MATCH bytes per 2 wire bytes, so anything claiming more than
    // that is malformed — reject before allocating.
    if expect_len > 8 + (packed.len().saturating_sub(8)).saturating_mul(MAX_MATCH) {
        return Err(LzssError::Truncated);
    }
    out.reserve(expect_len);
    let mut pos = 8usize;
    while out.len() < expect_len {
        if pos >= packed.len() {
            return Err(LzssError::Truncated);
        }
        let flag = packed[pos];
        pos += 1;
        for k in 0..8 {
            if out.len() >= expect_len {
                break;
            }
            if flag & (1 << k) != 0 {
                let Some(&b) = packed.get(pos) else {
                    return Err(LzssError::Truncated);
                };
                out.push(b);
                pos += 1;
            } else {
                if pos + 2 > packed.len() {
                    return Err(LzssError::Truncated);
                }
                let token = u16::from_le_bytes([packed[pos], packed[pos + 1]]);
                pos += 2;
                let dist = (token >> 4) as usize + 1;
                let len = (token & 0x0f) as usize + MIN_MATCH;
                if dist > out.len() {
                    return Err(LzssError::BadReference);
                }
                let start = out.len() - dist;
                if dist >= len {
                    // Non-overlapping: one block copy.
                    out.extend_from_within(start..start + len);
                } else {
                    for j in 0..len {
                        let b = out[start + j];
                        out.push(b);
                    }
                }
            }
        }
    }
    if out.len() != expect_len {
        return Err(LzssError::LengthMismatch);
    }
    Ok(())
}

/// Decompresses a [`compress`] stream.
pub fn decompress(packed: &[u8]) -> Result<Vec<u8>, LzssError> {
    let mut out = Vec::new();
    decompress_into(packed, &mut out)?;
    Ok(out)
}

/// Compression ratio achieved on `data` (compressed/original; lower is
/// better; >1 means expansion).
pub fn ratio(data: &[u8]) -> f64 {
    if data.is_empty() {
        return 1.0;
    }
    compress(data).len() as f64 / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_roundtrip() {
        let packed = compress(b"");
        assert_eq!(decompress(&packed).unwrap(), b"");
    }

    #[test]
    fn short_roundtrip() {
        for data in [&b"a"[..], b"ab", b"abc", b"aaaa", b"abcd"] {
            let packed = compress(data);
            assert_eq!(decompress(&packed).unwrap(), data, "{data:?}");
        }
    }

    #[test]
    fn repetitive_text_compresses_well() {
        let data: Vec<u8> = b"<div class=\"tweet\">hello world</div>\n"
            .iter()
            .copied()
            .cycle()
            .take(50_000)
            .collect();
        let packed = compress(&data);
        assert!(
            packed.len() < data.len() / 4,
            "ratio {}",
            packed.len() as f64 / data.len() as f64
        );
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn random_data_barely_expands() {
        // Keystream bytes are incompressible; expansion is bounded by
        // the flag bytes (1/8) plus the header.
        let key = [1u8; 32];
        let mut data = vec![0u8; 10_000];
        nymix_crypto::ChaCha20::new(&key, &[0u8; 12], 0).xor_into(&mut data);
        let packed = compress(&data);
        assert!(packed.len() <= data.len() + data.len() / 8 + 9 + 8);
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn long_match_chains() {
        let mut data = vec![0u8; 100_000];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i / 1000) as u8;
        }
        let packed = compress(&data);
        assert!(packed.len() < data.len() / 5);
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn window_boundary_matches() {
        // Repetition farther apart than the window cannot match, but
        // the stream must still round-trip.
        let mut data = Vec::new();
        data.extend_from_slice(&[7u8; 100]);
        data.extend(std::iter::repeat_n(0u8, WINDOW + 50));
        data.extend_from_slice(&[7u8; 100]);
        let packed = compress(&data);
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn truncation_detected() {
        let packed = compress(b"hello hello hello hello");
        for cut in [0usize, 4, 8, 9, packed.len() - 1] {
            assert!(decompress(&packed[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn bad_reference_detected() {
        // Handcraft: header len 3, one group with a match token first.
        let mut packed = Vec::new();
        packed.extend_from_slice(&3u64.to_le_bytes());
        packed.push(0x00); // all matches
        packed.extend_from_slice(&(0xffu16 << 4).to_le_bytes()); // dist 256 into empty output
        assert_eq!(decompress(&packed), Err(LzssError::BadReference));
    }

    #[test]
    fn ratio_helper() {
        assert_eq!(ratio(b""), 1.0);
        let text: Vec<u8> = b"abcabcabc".iter().copied().cycle().take(5000).collect();
        assert!(ratio(&text) < 0.3);
    }

    #[test]
    fn lazy_beats_greedy_on_html() {
        // The classic lazy-match win: a short match at i hides a longer
        // one at i+1. On repetitive markup the deferred parse should be
        // measurably smaller.
        let data: Vec<u8> =
            b"<a href=\"/user/profile\">profile</a><a href=\"/user/settings\">settings</a>\n"
                .iter()
                .copied()
                .cycle()
                .take(40_000)
                .collect();
        let mut c = Compressor::new();
        let mut lazy = Vec::new();
        c.compress_into(&data, &mut lazy);
        let mut greedy = Vec::new();
        c.compress_greedy_into(&data, &mut greedy);
        assert!(
            lazy.len() <= greedy.len(),
            "lazy {} greedy {}",
            lazy.len(),
            greedy.len()
        );
        assert_eq!(decompress(&lazy).unwrap(), data);
        assert_eq!(decompress(&greedy).unwrap(), data);
    }

    #[test]
    fn compressor_reuse_is_deterministic() {
        let mut c = Compressor::new();
        let data = b"the quick brown fox jumps over the lazy dog; the quick brown fox".to_vec();
        let mut first = Vec::new();
        c.compress_into(&data, &mut first);
        let mut second = Vec::new();
        c.compress_into(&data, &mut second);
        assert_eq!(first, second, "arena reuse must not change the stream");
        assert_eq!(first, compress(&data), "fresh arena must agree too");
    }

    #[test]
    fn stored_stream_roundtrips() {
        for len in [0usize, 1, 7, 8, 9, 4096, 10_001] {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 + i / 251) as u8).collect();
            let mut packed = Vec::new();
            store_into(&data, &mut packed);
            assert_eq!(decompress(&packed).unwrap(), data, "len {len}");
        }
    }

    #[test]
    fn stored_stream_size_matches_incompressible_lzss_bound() {
        let mut data = vec![0u8; 10_000];
        nymix_crypto::ChaCha20::new(&[1u8; 32], &[0u8; 12], 0).xor_into(&mut data);
        let mut stored = Vec::new();
        store_into(&data, &mut stored);
        // Same worst-case envelope the matcher pays on random input.
        assert!(stored.len() <= 8 + data.len() + data.len() / 8 + 1);
        let packed = compress(&data);
        assert!(
            stored.len() <= packed.len() + 16,
            "stored {} lzss {}",
            stored.len(),
            packed.len()
        );
    }

    #[test]
    fn entropy_estimate_separates_text_from_keystream() {
        assert_eq!(entropy_bits_per_byte(b""), 0.0);
        assert_eq!(entropy_bits_per_byte(&[7u8; 4096]), 0.0);
        let html: Vec<u8> = b"<div class=\"post\">entry</div>\n"
            .iter()
            .copied()
            .cycle()
            .take(64 * 1024)
            .collect();
        let mut noise = vec![0u8; 64 * 1024];
        nymix_crypto::ChaCha20::new(&[2u8; 32], &[0u8; 12], 0).xor_into(&mut noise);
        let text_bits = entropy_bits_per_byte(&html);
        let noise_bits = entropy_bits_per_byte(&noise);
        assert!(text_bits < 6.0, "html measured {text_bits}");
        assert!(noise_bits > 7.5, "keystream measured {noise_bits}");
    }

    #[test]
    fn compress_into_appends_after_existing_bytes() {
        let mut out = b"header:".to_vec();
        Compressor::new().compress_into(b"abcabcabcabc", &mut out);
        assert_eq!(&out[..7], b"header:");
        assert_eq!(decompress(&out[7..]).unwrap(), b"abcabcabcabc");
    }
}
