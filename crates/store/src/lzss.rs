//! LZSS compression.
//!
//! A windowed dictionary compressor in the LZSS family: output is a
//! stream of flag-grouped items, each either a literal byte or a
//! `(distance, length)` back-reference into a 4 KiB sliding window.
//! Nym archives are mostly browser profile/cache data — a mix of highly
//! repetitive text (HTML, JSON, SQLite) and incompressible media — so a
//! simple LZSS captures the right size behaviour for Figure 6.
//!
//! Format: repeated groups of `flag_byte` + 8 items. Flag bit *i* set
//! means item *i* is a literal byte; clear means a 2-byte match token:
//! 12 bits of distance (1-based) and 4 bits of length-3 (match lengths
//! 3..=18). The stream is prefixed with the 8-byte plaintext length.

const WINDOW: usize = 4096;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 18;

/// Compresses `data`.
///
/// # Examples
///
/// ```
/// let data = b"abcabcabcabcabcabc".to_vec();
/// let packed = nymix_store::lzss::compress(&data);
/// assert!(packed.len() < data.len() + 9);
/// assert_eq!(nymix_store::lzss::decompress(&packed).unwrap(), data);
/// ```
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());

    // Hash chains over 3-byte prefixes for match finding.
    let mut head: Vec<i64> = vec![-1; 1 << 13];
    let mut prev: Vec<i64> = vec![-1; data.len().max(1)];
    let hash = |a: u8, b: u8, c: u8| -> usize {
        ((a as usize) << 6 ^ (b as usize) << 3 ^ c as usize) & ((1 << 13) - 1)
    };

    let mut items: Vec<(bool, u8, u16)> = Vec::new(); // (is_literal, lit, token)
    let mut i = 0usize;
    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= data.len() {
            let h = hash(data[i], data[i + 1], data[i + 2]);
            let mut candidate = head[h];
            let mut tries = 32;
            while candidate >= 0 && tries > 0 {
                let c = candidate as usize;
                let dist = i - c;
                if dist > WINDOW {
                    break;
                }
                let mut len = 0usize;
                let max = MAX_MATCH.min(data.len() - i);
                while len < max && data[c + len] == data[i + len] {
                    len += 1;
                }
                if len > best_len {
                    best_len = len;
                    best_dist = dist;
                    if len == MAX_MATCH {
                        break;
                    }
                }
                candidate = prev[c];
                tries -= 1;
            }
        }
        if best_len >= MIN_MATCH {
            let token = (((best_dist - 1) as u16) << 4) | ((best_len - MIN_MATCH) as u16);
            items.push((false, 0, token));
            // Insert every covered position into the chains.
            for k in i..i + best_len {
                if k + MIN_MATCH <= data.len() {
                    let h = hash(data[k], data[k + 1], data[k + 2]);
                    prev[k] = head[h];
                    head[h] = k as i64;
                }
            }
            i += best_len;
        } else {
            items.push((true, data[i], 0));
            if i + MIN_MATCH <= data.len() {
                let h = hash(data[i], data[i + 1], data[i + 2]);
                prev[i] = head[h];
                head[h] = i as i64;
            }
            i += 1;
        }
    }

    for group in items.chunks(8) {
        let mut flag = 0u8;
        for (k, (is_lit, _, _)) in group.iter().enumerate() {
            if *is_lit {
                flag |= 1 << k;
            }
        }
        out.push(flag);
        for (is_lit, lit, token) in group {
            if *is_lit {
                out.push(*lit);
            } else {
                out.extend_from_slice(&token.to_le_bytes());
            }
        }
    }
    out
}

/// Error from [`decompress`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LzssError {
    /// Input ended mid-stream.
    Truncated,
    /// A back-reference pointed before the start of output.
    BadReference,
    /// Output length disagreed with the header.
    LengthMismatch,
}

impl core::fmt::Display for LzssError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LzssError::Truncated => write!(f, "compressed stream truncated"),
            LzssError::BadReference => write!(f, "back-reference out of range"),
            LzssError::LengthMismatch => write!(f, "decompressed length mismatch"),
        }
    }
}

impl std::error::Error for LzssError {}

/// Decompresses a [`compress`] stream.
pub fn decompress(packed: &[u8]) -> Result<Vec<u8>, LzssError> {
    if packed.len() < 8 {
        return Err(LzssError::Truncated);
    }
    let expect_len = u64::from_le_bytes(packed[..8].try_into().expect("8 bytes")) as usize;
    // The header is untrusted input: a match token encodes at most
    // MAX_MATCH bytes per 2 wire bytes, so anything claiming more than
    // that is malformed — reject before allocating.
    if expect_len > 8 + (packed.len().saturating_sub(8)).saturating_mul(MAX_MATCH) {
        return Err(LzssError::Truncated);
    }
    let mut out = Vec::with_capacity(expect_len);
    let mut pos = 8usize;
    while out.len() < expect_len {
        if pos >= packed.len() {
            return Err(LzssError::Truncated);
        }
        let flag = packed[pos];
        pos += 1;
        for k in 0..8 {
            if out.len() >= expect_len {
                break;
            }
            if flag & (1 << k) != 0 {
                let Some(&b) = packed.get(pos) else {
                    return Err(LzssError::Truncated);
                };
                out.push(b);
                pos += 1;
            } else {
                if pos + 2 > packed.len() {
                    return Err(LzssError::Truncated);
                }
                let token = u16::from_le_bytes([packed[pos], packed[pos + 1]]);
                pos += 2;
                let dist = (token >> 4) as usize + 1;
                let len = (token & 0x0f) as usize + MIN_MATCH;
                if dist > out.len() {
                    return Err(LzssError::BadReference);
                }
                let start = out.len() - dist;
                for j in 0..len {
                    let b = out[start + j];
                    out.push(b);
                }
            }
        }
    }
    if out.len() != expect_len {
        return Err(LzssError::LengthMismatch);
    }
    Ok(out)
}

/// Compression ratio achieved on `data` (compressed/original; lower is
/// better; >1 means expansion).
pub fn ratio(data: &[u8]) -> f64 {
    if data.is_empty() {
        return 1.0;
    }
    compress(data).len() as f64 / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_roundtrip() {
        let packed = compress(b"");
        assert_eq!(decompress(&packed).unwrap(), b"");
    }

    #[test]
    fn short_roundtrip() {
        for data in [&b"a"[..], b"ab", b"abc", b"aaaa", b"abcd"] {
            let packed = compress(data);
            assert_eq!(decompress(&packed).unwrap(), data, "{data:?}");
        }
    }

    #[test]
    fn repetitive_text_compresses_well() {
        let data: Vec<u8> = b"<div class=\"tweet\">hello world</div>\n"
            .iter()
            .copied()
            .cycle()
            .take(50_000)
            .collect();
        let packed = compress(&data);
        assert!(
            packed.len() < data.len() / 4,
            "ratio {}",
            packed.len() as f64 / data.len() as f64
        );
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn random_data_barely_expands() {
        // Keystream bytes are incompressible; expansion is bounded by
        // the flag bytes (1/8) plus the header.
        let key = [1u8; 32];
        let mut data = vec![0u8; 10_000];
        nymix_crypto::ChaCha20::new(&key, &[0u8; 12], 0).xor_into(&mut data);
        let packed = compress(&data);
        assert!(packed.len() <= data.len() + data.len() / 8 + 9 + 8);
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn long_match_chains() {
        let mut data = vec![0u8; 100_000];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i / 1000) as u8;
        }
        let packed = compress(&data);
        assert!(packed.len() < data.len() / 5);
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn window_boundary_matches() {
        // Repetition farther apart than the window cannot match, but
        // the stream must still round-trip.
        let mut data = Vec::new();
        data.extend_from_slice(&[7u8; 100]);
        data.extend(std::iter::repeat_n(0u8, WINDOW + 50));
        data.extend_from_slice(&[7u8; 100]);
        let packed = compress(&data);
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn truncation_detected() {
        let packed = compress(b"hello hello hello hello");
        for cut in [0usize, 4, 8, 9, packed.len() - 1] {
            assert!(decompress(&packed[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn bad_reference_detected() {
        // Handcraft: header len 3, one group with a match token first.
        let mut packed = Vec::new();
        packed.extend_from_slice(&3u64.to_le_bytes());
        packed.push(0x00); // all matches
        packed.extend_from_slice(&(0xffu16 << 4).to_le_bytes()); // dist 256 into empty output
        assert_eq!(decompress(&packed), Err(LzssError::BadReference));
    }

    #[test]
    fn ratio_helper() {
        assert_eq!(ratio(b""), 1.0);
        let text: Vec<u8> = b"abcabcabc".iter().copied().cycle().take(5000).collect();
        assert!(ratio(&text) < 0.3);
    }
}
