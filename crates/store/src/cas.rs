//! Content-addressed chunk store.
//!
//! Record-granular deltas ([`crate::delta`]) stop paying off once one
//! record dominates the archive: any AnonVM write dirties the whole
//! `anonvm.disk` record (~85% of a nym's payload), so every browser
//! session re-ships tens of kilobytes for a 4 KiB write. This module
//! splits large records into content-defined chunks
//! ([`crate::chunker`]), names each chunk by its content hash, and
//! ships only the chunks a save actually changed:
//!
//! * A **chunk ID** ([`chunk_id`]) is the domain-separated SHA-256 of
//!   the chunk's plaintext; runs of equal-length chunks hash four at a
//!   time on the `sha256_x4` batch kernel.
//! * A **chunk manifest** ([`ChunkManifest`], magic `"NYMC"`) replaces
//!   the record's bytes inside the archive: the record's total length
//!   plus the ordered `(chunk ID, length)` list. Manifests ride the
//!   ordinary NYMD delta path, so the chain's Merkle commitment covers
//!   them and replay fails closed on any tampering.
//! * The **chunk index** ([`ChunkIndex`]) refcounts which chunks the
//!   live manifests reference; [`upload_new_chunks`] skips every chunk
//!   already present (dedup across versions and across records), and
//!   retired versions are garbage-collected by refcount decrement or
//!   [`ChunkIndex::mark_and_sweep`].
//! * Chunks are sealed individually under the chain-epoch
//!   [`SealKey`] with their storage name — which embeds
//!   the chunk ID and the chain's label — bound as AEAD associated
//!   data, so a backend cannot transplant a chunk between nyms, epochs,
//!   or IDs undetected. [`fetch_record_into`] additionally re-hashes
//!   every fetched chunk against the manifest entry before use.
//!
//! Chunk objects live on any [`ObjectBackend`] beside the sealed
//! archive blobs, named `"{prefix}/c/{hex(chunk_id)}"`.
//!
//! Like the archive and delta parsers, [`ChunkManifest::from_bytes`]
//! treats its input as hostile: bounds-checked reads, pre-allocation
//! clamped by the bytes present, structural invariants (chunk lengths
//! in range, lengths summing to the committed total) enforced — it
//! parses or errors, never panics.

use nymix_crypto::{sha256_x4, Sha256};
use nymix_sim::Rng;

use crate::archive::{clamp_count, len_u32, ArchiveError, Reader};
use crate::backend::{BackendError, ObjectBackend};
use crate::chunker::{self, MAX_CHUNK};
use crate::lzss;
use crate::sealed::{
    seal_bytes_keyed_into, seal_bytes_keyed_stored_into, unseal_keyed_raw_into, SealKey,
    SealScratch,
};
use crate::SealedError;

/// A 32-byte content address: the domain-separated SHA-256 of a
/// chunk's plaintext.
pub type ChunkId = [u8; 32];

/// Records at or above this size are stored as chunk manifests by the
/// incremental save path; smaller records ride the NYMD delta whole
/// (a manifest plus per-chunk seal overhead would not pay for itself).
pub const CHUNK_RECORD_THRESHOLD: usize = 32 * 1024;

/// Domain-separation prefix for chunk IDs, so a chunk hash can never
/// collide with the Merkle tree's leaf/node hashes or any other SHA-256
/// use in the system.
const CHUNK_TAG: &[u8] = b"nymix:cas:chunk\x00";

/// Sampled byte-entropy threshold (bits per byte) above which a chunk
/// is treated as incompressible and sealed with the stored LZSS body —
/// the match finder never runs. Browser-cache media and ciphertext sit
/// near 8.0; text, JSON and SQLite pages sit well below 6.0. The gate
/// only skips work: a high-entropy chunk that would have compressed
/// (byte-uniform but repetitive) ships a few percent larger, and the
/// restore path cannot tell the difference.
pub const INCOMPRESSIBLE_BITS_PER_BYTE: f64 = 7.0;

const MAGIC: &[u8; 4] = b"NYMC";

/// Serialized size of one manifest entry: `id [32] | len u32`.
const ENTRY_LEN: usize = 32 + 4;

/// Errors from chunk storage and retrieval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CasError {
    /// The object backend failed.
    Backend(BackendError),
    /// A chunk object the manifest references is gone — garbage
    /// collected away, withheld by the provider, or never uploaded.
    MissingChunk,
    /// A chunk blob failed authentication or decompression (tampered
    /// ciphertext, or a chunk served under another chunk's name).
    ChunkSeal(SealedError),
    /// A chunk decrypted fine but its plaintext doesn't match the
    /// manifest's ID or length.
    ChunkMismatch,
}

impl core::fmt::Display for CasError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CasError::Backend(e) => write!(f, "chunk backend: {e}"),
            CasError::MissingChunk => write!(f, "chunk object missing from backend"),
            CasError::ChunkSeal(e) => write!(f, "chunk unseal failed: {e}"),
            CasError::ChunkMismatch => write!(f, "chunk plaintext mismatches manifest"),
        }
    }
}

impl std::error::Error for CasError {}

impl From<BackendError> for CasError {
    fn from(e: BackendError) -> Self {
        CasError::Backend(e)
    }
}

/// The content address of `data`.
pub fn chunk_id(data: &[u8]) -> ChunkId {
    let mut h = Sha256::new();
    h.update(CHUNK_TAG);
    h.update(data);
    h.finalize()
}

/// Storage object name of chunk `id` under a chain's `prefix` (the
/// chain label plus epoch, e.g. `"nym:alice@local#e3"`). The name is
/// also the AEAD label the chunk is sealed under, binding chain, epoch
/// and chunk ID into the ciphertext.
pub fn chunk_object_name(prefix: &str, id: &ChunkId) -> String {
    let mut name = String::with_capacity(prefix.len() + 3 + 64);
    name.push_str(prefix);
    name.push_str("/c/");
    for byte in id {
        const HEX: &[u8; 16] = b"0123456789abcdef";
        name.push(HEX[(byte >> 4) as usize] as char);
        name.push(HEX[(byte & 0xF) as usize] as char);
    }
    name
}

/// One record's content expressed as an ordered list of content-
/// addressed chunks. Wire format (little-endian):
///
/// ```text
/// magic "NYMC" | total_len u64 | chunk_count u32 |
/// (chunk_id [32]u8 | chunk_len u32)...
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkManifest {
    total_len: u64,
    entries: Vec<(ChunkId, u32)>,
}

impl ChunkManifest {
    /// Chunks `data` and builds its manifest. Runs of four equal-length
    /// chunks (common for max-capped chunks of huge records) hash in
    /// one interleaved `sha256_x4` pass.
    pub fn build(data: &[u8]) -> Self {
        let chunks: Vec<&[u8]> = chunker::chunks(data).collect();
        let mut entries = Vec::with_capacity(chunks.len());
        let mut i = 0;
        while i < chunks.len() {
            if i + 4 <= chunks.len()
                && chunks[i + 1..i + 4]
                    .iter()
                    .all(|c| c.len() == chunks[i].len())
            {
                let ids = sha256_x4(
                    CHUNK_TAG,
                    [chunks[i], chunks[i + 1], chunks[i + 2], chunks[i + 3]],
                );
                for (j, id) in ids.into_iter().enumerate() {
                    entries.push((id, len_u32(chunks[i + j].len())));
                }
                i += 4;
            } else {
                entries.push((chunk_id(chunks[i]), len_u32(chunks[i].len())));
                i += 1;
            }
        }
        Self {
            total_len: data.len() as u64,
            entries,
        }
    }

    /// Total plaintext bytes the manifest describes.
    pub fn total_len(&self) -> usize {
        self.total_len as usize
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.entries.len()
    }

    /// `(chunk ID, plaintext length)` entries in record order.
    pub fn chunks(&self) -> impl Iterator<Item = (&ChunkId, usize)> {
        self.entries.iter().map(|(id, len)| (id, *len as usize))
    }

    /// Exact byte length [`ChunkManifest::write_into`] will append.
    pub fn serialized_len(&self) -> usize {
        MAGIC.len() + 8 + 4 + self.entries.len() * ENTRY_LEN
    }

    /// Serializes the manifest by appending to `out`.
    pub fn write_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.serialized_len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.total_len.to_le_bytes());
        out.extend_from_slice(&len_u32(self.entries.len()).to_le_bytes());
        for (id, len) in &self.entries {
            out.extend_from_slice(id);
            out.extend_from_slice(&len.to_le_bytes());
        }
    }

    /// Serializes the manifest.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.serialized_len());
        self.write_into(&mut out);
        out
    }

    /// Parses a serialized manifest, enforcing every structural
    /// invariant [`ChunkManifest::build`] guarantees: at least one
    /// chunk, each length in `1..=`[`MAX_CHUNK`], lengths summing to
    /// the committed total, no trailing bytes. The strictness doubles
    /// as collision armor — a record whose raw bytes accidentally
    /// start with `"NYMC"` will virtually never satisfy all of it, so
    /// manifest detection on restore cannot misfire silently (and the
    /// chain's Merkle commitment fails closed regardless). Never
    /// panics and never over-reserves.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ArchiveError> {
        let mut r = Reader::new(bytes);
        if r.take(4)? != MAGIC {
            return Err(ArchiveError::Malformed);
        }
        let total_len = r.u64()?;
        let count = r.u32()?;
        let mut entries = Vec::with_capacity(clamp_count(count, r.remaining(), ENTRY_LEN));
        let mut sum: u64 = 0;
        for _ in 0..count {
            let id: ChunkId = r.take_array()?;
            let len = r.u32()?;
            if len == 0 || len as usize > MAX_CHUNK {
                return Err(ArchiveError::Malformed);
            }
            sum = sum.checked_add(len as u64).ok_or(ArchiveError::Malformed)?;
            entries.push((id, len));
        }
        if entries.is_empty() || sum != total_len || !r.done() {
            return Err(ArchiveError::Malformed);
        }
        Ok(Self { total_len, entries })
    }
}

/// Refcounted index of the chunks the live manifests reference. One
/// count per manifest occurrence: a chunk shared by two records (or two
/// records' versions) stays alive until the last reference retires.
#[derive(Debug, Clone, Default)]
pub struct ChunkIndex {
    refs: std::collections::BTreeMap<ChunkId, usize>,
}

impl ChunkIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct chunks referenced.
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// Whether no chunk is referenced.
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// Whether `id` is referenced.
    pub fn contains(&self, id: &ChunkId) -> bool {
        self.refs.contains_key(id)
    }

    /// Current reference count of `id`.
    pub fn refcount(&self, id: &ChunkId) -> usize {
        self.refs.get(id).copied().unwrap_or(0)
    }

    /// Iterates every referenced chunk ID (the epoch's live object
    /// set — what a retiring epoch's sweep must delete).
    pub fn ids(&self) -> impl Iterator<Item = &ChunkId> {
        self.refs.keys()
    }

    /// Adds a reference; returns `true` when the chunk is new to the
    /// index (i.e. its object must be uploaded).
    pub fn retain(&mut self, id: &ChunkId) -> bool {
        let count = self.refs.entry(*id).or_insert(0);
        *count += 1;
        *count == 1
    }

    /// Drops a reference; returns `true` when the count reached zero
    /// (i.e. the chunk's object is now garbage).
    pub fn release(&mut self, id: &ChunkId) -> bool {
        match self.refs.get_mut(id) {
            Some(count) if *count > 1 => {
                *count -= 1;
                false
            }
            Some(_) => {
                self.refs.remove(id);
                true
            }
            None => false,
        }
    }

    /// Adds one reference per entry of `manifest`.
    pub fn retain_manifest(&mut self, manifest: &ChunkManifest) {
        for (id, _) in manifest.chunks() {
            self.retain(id);
        }
    }

    /// Drops one reference per entry of `manifest` (a retired version),
    /// appending every chunk that became garbage to `dead`.
    pub fn release_manifest_into(&mut self, manifest: &ChunkManifest, dead: &mut Vec<ChunkId>) {
        for (id, _) in manifest.chunks() {
            if self.release(id) {
                dead.push(*id);
            }
        }
    }

    /// Mark-and-sweep over the full live set: rebuilds the index from
    /// `live` manifests and returns every previously-referenced chunk
    /// no live manifest mentions — the sweep list a caller deletes from
    /// the backend when a whole chain epoch retires.
    pub fn mark_and_sweep<'a>(
        &mut self,
        live: impl IntoIterator<Item = &'a ChunkManifest>,
    ) -> Vec<ChunkId> {
        let mut marked = Self::new();
        for manifest in live {
            marked.retain_manifest(manifest);
        }
        let dead = self
            .refs
            .keys()
            .filter(|id| !marked.contains(id))
            .copied()
            .collect();
        *self = marked;
        dead
    }
}

/// Builds manifests for several records in one pass, batching chunk
/// hashing **across records**: all chunks of every input are grouped by
/// length and hashed four lanes at a time on `sha256_x4`, so the
/// scalar-hashed remainder shrinks from one-per-record-tail to
/// one-per-distinct-length. Produces exactly the IDs
/// [`ChunkManifest::build`] would — the store pipeline uses this to
/// amortize hashing across every session of a fleet save.
pub fn build_manifests(datas: &[&[u8]]) -> Vec<ChunkManifest> {
    let mut manifests: Vec<ChunkManifest> = datas
        .iter()
        .map(|d| ChunkManifest {
            total_len: d.len() as u64,
            entries: Vec::new(),
        })
        .collect();
    // Flat view of every chunk with its write-back slot.
    let mut all: Vec<(usize, usize, &[u8])> = Vec::new();
    for (ri, data) in datas.iter().enumerate() {
        for (ei, chunk) in chunker::chunks(data).enumerate() {
            manifests[ri]
                .entries
                .push(([0u8; 32], len_u32(chunk.len())));
            all.push((ri, ei, chunk));
        }
    }
    // Equal lengths batch regardless of which record they came from.
    let mut by_len: std::collections::BTreeMap<usize, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (i, (_, _, chunk)) in all.iter().enumerate() {
        by_len.entry(chunk.len()).or_default().push(i);
    }
    for indices in by_len.values() {
        let mut quads = indices.chunks_exact(4);
        for quad in &mut quads {
            let ids = sha256_x4(
                CHUNK_TAG,
                [
                    all[quad[0]].2,
                    all[quad[1]].2,
                    all[quad[2]].2,
                    all[quad[3]].2,
                ],
            );
            for (lane, &flat) in quad.iter().enumerate() {
                let (ri, ei, _) = all[flat];
                manifests[ri].entries[ei].0 = ids[lane];
            }
        }
        for &flat in quads.remainder() {
            let (ri, ei, chunk) = all[flat];
            manifests[ri].entries[ei].0 = chunk_id(chunk);
        }
    }
    manifests
}

/// Seals one chunk under its name-bound AEAD label, entropy-gated:
/// high-entropy (incompressible) chunks skip the LZSS match finder and
/// ship a stored body — same wire format, no CPU spent discovering that
/// ciphertext-like bytes don't compress.
fn seal_chunk_into(
    chunk: &[u8],
    key: &SealKey,
    name: &str,
    rng: &mut Rng,
    scratch: &mut SealScratch,
    blob: &mut Vec<u8>,
) {
    if lzss::entropy_bits_per_byte(chunk) >= INCOMPRESSIBLE_BITS_PER_BYTE {
        seal_bytes_keyed_stored_into(chunk, key, name, rng, scratch, blob);
    } else {
        seal_bytes_keyed_into(chunk, key, name, rng, scratch, blob);
    }
}

/// Seals every chunk of `data` that `index` doesn't already hold,
/// walking `manifest` (which must be `ChunkManifest::build(data)`) in
/// order, **staging** the sealed objects into `staged` instead of
/// touching a backend. Each chunk is sealed under `key` with its object
/// name — `"{prefix}/c/{id}"` — as AEAD label, entropy-gated through
/// [`INCOMPRESSIBLE_BITS_PER_BYTE`]. Returns the sealed bytes staged:
/// the dedup savings are exactly what this number omits. The store
/// pipeline stages all sessions' chunks this way, then lands them in
/// one [`ObjectBackend::put_many`] batch.
#[allow(clippy::too_many_arguments)]
pub fn seal_new_chunks_into(
    data: &[u8],
    manifest: &ChunkManifest,
    index: &mut ChunkIndex,
    key: &SealKey,
    prefix: &str,
    rng: &mut Rng,
    scratch: &mut SealScratch,
    staged: &mut Vec<(String, Vec<u8>)>,
) -> usize {
    debug_assert_eq!(manifest.total_len(), data.len());
    let mut sealed = 0usize;
    let mut offset = 0usize;
    let mut blob = Vec::new();
    for (id, len) in manifest.chunks() {
        let chunk = &data[offset..offset + len];
        offset += len;
        if !index.retain(id) {
            continue; // Already stored: dedup across versions/records.
        }
        let name = chunk_object_name(prefix, id);
        seal_chunk_into(chunk, key, &name, rng, scratch, &mut blob);
        sealed += blob.len();
        staged.push((name, std::mem::take(&mut blob)));
    }
    sealed
}

/// Seals and uploads every chunk of `data` that `index` doesn't already
/// hold — [`seal_new_chunks_into`] landed immediately through one
/// [`ObjectBackend::put_many`] batch. Returns the sealed bytes
/// actually uploaded.
#[allow(clippy::too_many_arguments)]
pub fn upload_new_chunks(
    data: &[u8],
    manifest: &ChunkManifest,
    index: &mut ChunkIndex,
    key: &SealKey,
    prefix: &str,
    rng: &mut Rng,
    scratch: &mut SealScratch,
    backend: &mut dyn ObjectBackend,
) -> Result<usize, CasError> {
    let mut staged = Vec::new();
    let uploaded = seal_new_chunks_into(
        data,
        manifest,
        index,
        key,
        prefix,
        rng,
        scratch,
        &mut staged,
    );
    backend.put_many(staged)?;
    Ok(uploaded)
}

/// Fetches, authenticates and reassembles a manifest's record from the
/// backend into `out` (cleared first). Fails closed on a missing chunk
/// (GC'd away or withheld), a chunk that doesn't authenticate under its
/// name-bound AEAD label (tampered or transplanted), or a plaintext
/// that doesn't re-hash to the manifest's chunk ID. Returns the sealed
/// bytes fetched (for transfer accounting).
pub fn fetch_record_into(
    manifest: &ChunkManifest,
    key: &SealKey,
    prefix: &str,
    backend: &mut dyn ObjectBackend,
    work: &mut Vec<u8>,
    scratch: &mut SealScratch,
    out: &mut Vec<u8>,
) -> Result<usize, CasError> {
    out.clear();
    out.reserve(manifest.total_len());
    let mut fetched = 0usize;
    for (id, len) in manifest.chunks() {
        let name = chunk_object_name(prefix, id);
        let blob = backend.get(&name)?.ok_or(CasError::MissingChunk)?;
        fetched += blob.len();
        let plain =
            unseal_keyed_raw_into(blob, key, &name, work, scratch).map_err(CasError::ChunkSeal)?;
        if plain.len() != len || !nymix_crypto::ct::eq(&chunk_id(plain), id) {
            return Err(CasError::ChunkMismatch);
        }
        out.extend_from_slice(plain);
    }
    debug_assert_eq!(out.len(), manifest.total_len());
    Ok(fetched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LocalStore;

    /// Deterministic pseudo-random filler (xorshift64*).
    fn noise(seed: u64, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut x = seed | 1;
        while out.len() < len {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            out.extend_from_slice(&x.wrapping_mul(0x2545_F491_4F6C_DD1D).to_le_bytes());
        }
        out.truncate(len);
        out
    }

    fn chain() -> (SealKey, Rng, SealScratch) {
        let mut rng = Rng::seed_from(9);
        let key = SealKey::derive("pw", "nym:cas", &mut rng);
        (key, rng, SealScratch::new())
    }

    #[test]
    fn manifest_roundtrips_and_covers_data() {
        let data = noise(1, 200_000);
        let m = ChunkManifest::build(&data);
        assert_eq!(m.total_len(), data.len());
        assert_eq!(m.chunks().map(|(_, l)| l).sum::<usize>(), data.len());
        assert!(m.chunk_count() > 1);
        let bytes = m.to_bytes();
        assert_eq!(bytes.len(), m.serialized_len());
        assert_eq!(ChunkManifest::from_bytes(&bytes).unwrap(), m);
    }

    #[test]
    fn manifest_ids_match_scalar_hashing() {
        // The x4-batched build must produce the same IDs as hashing
        // each chunk alone (uniform chunk lengths hit the batch path).
        let data = vec![7u8; 4 * MAX_CHUNK + 100];
        let m = ChunkManifest::build(&data);
        let mut offset = 0;
        for (id, len) in m.chunks() {
            assert_eq!(*id, chunk_id(&data[offset..offset + len]));
            offset += len;
        }
    }

    #[test]
    fn build_manifests_matches_per_record_build() {
        // Cross-record batching must be invisible in the output: same
        // IDs, same lengths, same order as building each alone.
        let records: Vec<Vec<u8>> = vec![
            noise(21, 150_000),
            noise(22, 40_000),
            vec![7u8; 5 * MAX_CHUNK], // uniform: every chunk max-capped
            noise(23, 33_000),
            Vec::new(),
        ];
        let views: Vec<&[u8]> = records.iter().map(Vec::as_slice).collect();
        let batched = build_manifests(&views);
        for (data, manifest) in records.iter().zip(&batched) {
            assert_eq!(*manifest, ChunkManifest::build(data));
        }
    }

    #[test]
    fn entropy_gate_seals_random_chunks_stored_and_roundtrips() {
        let (key, mut rng, mut scratch) = chain();
        let mut backend = LocalStore::new();
        let mut index = ChunkIndex::new();
        // Random payload: every chunk takes the stored path.
        let data = noise(31, 100_000);
        let m = ChunkManifest::build(&data);
        upload_new_chunks(
            &data,
            &m,
            &mut index,
            &key,
            "p",
            &mut rng,
            &mut scratch,
            &mut backend,
        )
        .unwrap();
        let (mut work, mut out) = (Vec::new(), Vec::new());
        fetch_record_into(
            &m,
            &key,
            "p",
            &mut backend,
            &mut work,
            &mut scratch,
            &mut out,
        )
        .unwrap();
        assert_eq!(out, data);

        // Text payload: the gate keeps compressing, so sealed chunk
        // objects stay much smaller than their plaintext.
        let html: Vec<u8> = b"<div class=\"post\">timeline entry</div>\n"
            .iter()
            .copied()
            .cycle()
            .take(100_000)
            .collect();
        let mh = ChunkManifest::build(&html);
        let sealed_text = upload_new_chunks(
            &html,
            &mh,
            &mut index,
            &key,
            "p",
            &mut rng,
            &mut scratch,
            &mut backend,
        )
        .unwrap();
        assert!(
            sealed_text * 4 < html.len(),
            "text chunks must still compress: {sealed_text} of {}",
            html.len()
        );
        fetch_record_into(
            &mh,
            &key,
            "p",
            &mut backend,
            &mut work,
            &mut scratch,
            &mut out,
        )
        .unwrap();
        assert_eq!(out, html);
    }

    #[test]
    fn hostile_manifest_bytes_rejected() {
        assert!(ChunkManifest::from_bytes(b"").is_err());
        assert!(ChunkManifest::from_bytes(b"NYMC").is_err());
        assert!(ChunkManifest::from_bytes(b"NYM1aaaaaaaaaaaa").is_err());
        // Zero chunks.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        assert!(ChunkManifest::from_bytes(&bytes).is_err());
        // Huge count with no bytes behind it: fails fast, no reserve.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(ChunkManifest::from_bytes(&bytes).is_err());
        // Entry length over MAX_CHUNK.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&(MAX_CHUNK as u64 + 1).to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 32]);
        bytes.extend_from_slice(&(MAX_CHUNK as u32 + 1).to_le_bytes());
        assert!(ChunkManifest::from_bytes(&bytes).is_err());
        // Lengths not summing to total_len.
        let data = noise(2, 40_000);
        let m = ChunkManifest::build(&data);
        let mut bytes = m.to_bytes();
        bytes[4] ^= 1; // total_len low byte
        assert!(ChunkManifest::from_bytes(&bytes).is_err());
        // Trailing garbage.
        let mut bytes = m.to_bytes();
        bytes.push(0);
        assert!(ChunkManifest::from_bytes(&bytes).is_err());
    }

    #[test]
    fn store_fetch_roundtrip_with_dedup() {
        let (key, mut rng, mut scratch) = chain();
        let mut backend = LocalStore::new();
        let mut index = ChunkIndex::new();
        let data = noise(3, 150_000);
        let m = ChunkManifest::build(&data);
        let up1 = upload_new_chunks(
            &data,
            &m,
            &mut index,
            &key,
            "nym:cas#e1",
            &mut rng,
            &mut scratch,
            &mut backend,
        )
        .unwrap();
        assert!(up1 > 0);
        assert_eq!(index.len(), m.chunk_count());

        // Same content again (another record, another version): every
        // chunk dedups, zero bytes uploaded.
        let mut index2_refs = index.clone();
        let up2 = upload_new_chunks(
            &data,
            &m,
            &mut index2_refs,
            &key,
            "nym:cas#e1",
            &mut rng,
            &mut scratch,
            &mut backend,
        )
        .unwrap();
        assert_eq!(up2, 0);
        assert!(index2_refs.chunks_all_refcount(2));

        let mut work = Vec::new();
        let mut out = Vec::new();
        let fetched = fetch_record_into(
            &m,
            &key,
            "nym:cas#e1",
            &mut backend,
            &mut work,
            &mut scratch,
            &mut out,
        )
        .unwrap();
        assert_eq!(out, data);
        assert_eq!(fetched, up1);
    }

    impl ChunkIndex {
        fn chunks_all_refcount(&self, want: usize) -> bool {
            self.refs.values().all(|c| *c == want)
        }
    }

    #[test]
    fn edit_uploads_only_touched_chunks() {
        let (key, mut rng, mut scratch) = chain();
        let mut backend = LocalStore::new();
        let mut index = ChunkIndex::new();
        let mut data = noise(4, 128 * 1024);
        let m1 = ChunkManifest::build(&data);
        let full = upload_new_chunks(
            &data,
            &m1,
            &mut index,
            &key,
            "p",
            &mut rng,
            &mut scratch,
            &mut backend,
        )
        .unwrap();

        // Overwrite 4 KiB in the middle: only the chunks covering the
        // edit change; everything else dedups against the first upload.
        let at = 64 * 1024;
        data[at..at + 4096].copy_from_slice(&noise(99, 4096));
        let m2 = ChunkManifest::build(&data);
        let incremental = upload_new_chunks(
            &data,
            &m2,
            &mut index,
            &key,
            "p",
            &mut rng,
            &mut scratch,
            &mut backend,
        )
        .unwrap();
        assert!(
            incremental > 0 && incremental * 4 < full,
            "incremental {incremental} vs full {full}"
        );

        // Retire the old version: chunks only m1 referenced become
        // garbage; deleting them must not break the new version.
        let mut dead = Vec::new();
        index.release_manifest_into(&m1, &mut dead);
        assert!(!dead.is_empty());
        for id in &dead {
            assert!(backend.delete(&chunk_object_name("p", id)));
        }
        let (mut work, mut out) = (Vec::new(), Vec::new());
        fetch_record_into(
            &m2,
            &key,
            "p",
            &mut backend,
            &mut work,
            &mut scratch,
            &mut out,
        )
        .unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn missing_tampered_and_swapped_chunks_fail_closed() {
        let (key, mut rng, mut scratch) = chain();
        let mut backend = LocalStore::new();
        let mut index = ChunkIndex::new();
        let data = noise(5, 100_000);
        let m = ChunkManifest::build(&data);
        upload_new_chunks(
            &data,
            &m,
            &mut index,
            &key,
            "p",
            &mut rng,
            &mut scratch,
            &mut backend,
        )
        .unwrap();
        let names: Vec<String> = m
            .chunks()
            .map(|(id, _)| chunk_object_name("p", id))
            .collect();
        let (mut work, mut out) = (Vec::new(), Vec::new());

        // GC'd-away / withheld chunk.
        let stolen = backend.get(&names[1]).unwrap().to_vec();
        assert!(backend.delete(&names[1]));
        assert_eq!(
            fetch_record_into(
                &m,
                &key,
                "p",
                &mut backend,
                &mut work,
                &mut scratch,
                &mut out
            ),
            Err(CasError::MissingChunk)
        );
        backend.put(&names[1], stolen.clone());

        // Tampered ciphertext.
        let mut evil = stolen.clone();
        let last = evil.len() - 1;
        evil[last] ^= 1;
        backend.put(&names[1], evil);
        assert!(matches!(
            fetch_record_into(
                &m,
                &key,
                "p",
                &mut backend,
                &mut work,
                &mut scratch,
                &mut out
            ),
            Err(CasError::ChunkSeal(_))
        ));
        backend.put(&names[1], stolen);

        // Swapped chunk objects: each blob authenticates only under its
        // own name-bound label, so serving chunk 0 in slot 2 fails.
        let c0 = backend.get(&names[0]).unwrap().to_vec();
        let c2 = backend.get(&names[2]).unwrap().to_vec();
        backend.put(&names[0], c2);
        backend.put(&names[2], c0);
        assert!(matches!(
            fetch_record_into(
                &m,
                &key,
                "p",
                &mut backend,
                &mut work,
                &mut scratch,
                &mut out
            ),
            Err(CasError::ChunkSeal(_))
        ));
    }

    #[test]
    fn refcounts_and_mark_and_sweep() {
        let mut index = ChunkIndex::new();
        let a = ChunkManifest::build(&noise(61, 60_000));
        let b = ChunkManifest::build(&noise(71, 60_000));
        index.retain_manifest(&a);
        index.retain_manifest(&a); // two versions share the content
        index.retain_manifest(&b);
        assert_eq!(index.len(), a.chunk_count() + b.chunk_count());

        // Releasing one of a's references frees nothing.
        let mut dead = Vec::new();
        index.release_manifest_into(&a, &mut dead);
        assert!(dead.is_empty());
        // Releasing the second frees exactly a's chunks.
        index.release_manifest_into(&a, &mut dead);
        assert_eq!(dead.len(), a.chunk_count());
        assert!(dead.iter().all(|id| a.chunks().any(|(i, _)| i == id)));

        // Mark-and-sweep down to nothing live: b's chunks are swept.
        let swept = index.mark_and_sweep([]);
        assert_eq!(swept.len(), b.chunk_count());
        assert!(index.is_empty());
        // Releasing an unknown id is a no-op, not an underflow.
        assert!(!index.release(&[0u8; 32]));
    }

    /// The acceptance criterion: a 4 KiB write inside a 64 KiB record
    /// must upload >= 10x fewer sealed bytes through the chunk store
    /// than the record-granular NYMD delta re-sealing the whole record.
    #[test]
    fn chunked_delta_beats_record_delta_10x() {
        use crate::delta::DeltaArchive;
        use crate::NymArchive;

        let (key, mut rng, mut scratch) = chain();
        let mut backend = LocalStore::new();
        let mut index = ChunkIndex::new();

        // Incompressible 64 KiB disk record (browser caches are mostly
        // media) plus the usual small records.
        let disk = noise(0xAB1, 64 * 1024);
        // Pick the edit site the way a real workload lands one: fully
        // inside one chunk (boundaries are content-defined, so a mid-
        // chunk 4 KiB overwrite dirties that chunk alone).
        let (at, host_len) = {
            let mut offset = 0usize;
            let mut site = None;
            for c in chunker::chunks(&disk) {
                if c.len() >= 4096 + 256 && c.len() <= 6 * 1024 {
                    site = Some((offset + 128, c.len()));
                    break;
                }
                offset += c.len();
            }
            site.expect("seeded data contains a 4.3-6 KiB chunk")
        };
        let mut disk2 = disk.clone();
        disk2[at..at + 4096].copy_from_slice(&noise(0xED17, 4096));

        let mut small = NymArchive::new();
        small.put("meta", b"name=bench".to_vec());
        small.put("tor.state", vec![0x5a; 512]);

        // Record-granular NYMD path: the delta carries the whole record.
        let (prev, next) = {
            let mut prev = small.clone();
            prev.put("anonvm.disk", disk.clone());
            let mut next = prev.clone();
            next.put("anonvm.disk", disk2.clone());
            (prev, next)
        };
        let record_delta = DeltaArchive::diff(&prev, &next);
        let mut record_blob = Vec::new();
        crate::seal_delta_keyed_into(
            &record_delta,
            &key,
            "l#e1.1",
            &mut rng,
            &mut scratch,
            &mut record_blob,
        );
        let record_bytes = record_blob.len();

        // Chunked path: the archives hold manifests; the base's chunks
        // are already in the store, so the delta ships the new manifest
        // plus only the chunks the edit touched.
        let m1 = ChunkManifest::build(&disk);
        upload_new_chunks(
            &disk,
            &m1,
            &mut index,
            &key,
            "l#e1",
            &mut rng,
            &mut scratch,
            &mut backend,
        )
        .unwrap();
        let m2 = ChunkManifest::build(&disk2);
        let chunk_upload = {
            let mut idx = index.clone();
            upload_new_chunks(
                &disk2,
                &m2,
                &mut idx,
                &key,
                "l#e1",
                &mut rng,
                &mut scratch,
                &mut backend,
            )
            .unwrap()
        };
        let (prev_m, next_m) = {
            let mut prev = small.clone();
            prev.put("anonvm.disk", m1.to_bytes());
            let mut next = prev.clone();
            next.put("anonvm.disk", m2.to_bytes());
            (prev, next)
        };
        let manifest_delta = DeltaArchive::diff(&prev_m, &next_m);
        let mut manifest_blob = Vec::new();
        crate::seal_delta_keyed_into(
            &manifest_delta,
            &key,
            "l#e1.1",
            &mut rng,
            &mut scratch,
            &mut manifest_blob,
        );
        let chunked_bytes = manifest_blob.len() + chunk_upload;

        assert!(
            chunked_bytes * 10 <= record_bytes,
            "chunked {chunked_bytes} (manifest {} + chunks {chunk_upload}) vs record-granular \
             {record_bytes}: < 10x (edit in a {host_len}-byte chunk)",
            manifest_blob.len(),
        );
        assert!(
            host_len + 2048 >= chunk_upload,
            "edit should ship ~1 chunk: uploaded {chunk_upload} from a {host_len}-byte chunk"
        );
    }
}
