//! The pluggable object-storage backend.
//!
//! Every place Nymix keeps sealed bytes — a local partition / USB drive
//! ([`crate::LocalStore`]), a pseudonymous cloud account
//! ([`crate::CloudProvider`] via [`crate::cloud::CloudSession`]) — is a
//! flat namespace of named blobs. [`ObjectBackend`] is that contract:
//! `put`/`get`/`delete`/`list` over opaque names. The versioned store
//! ([`crate::VersionedStore`]) and the content-addressed chunk store
//! ([`crate::cas`]) are generic over it, so the same snapshot / dedup
//! machinery runs unchanged against any storage destination — the
//! multi-backend scaling step the roadmap asks for.
//!
//! Methods take `&mut self` even for reads: real backends observe
//! accesses (the cloud provider's access log is the intersection-attack
//! evidence trail), and a trait that hid reads from the log would hide
//! them from the adversary model too.

/// Errors a storage backend can raise. Missing objects are **not**
/// errors — [`ObjectBackend::get`] returns `Ok(None)` and
/// [`ObjectBackend::delete`] returns `Ok(false)` — so "the clean end of
/// a delta chain" stays distinguishable from real failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// The backend refused the caller's credentials or account.
    /// Permanent: retrying with the same credentials cannot succeed,
    /// and hammering a provider that said "no" is exactly the traffic
    /// pattern a deanonymizing adversary hopes for. Fail closed.
    Denied,
    /// A transient fault — throttling, a dropped connection, a busy
    /// replica. Retrying the same operation after a backoff may
    /// succeed; [`crate::cloud::CloudSession`] does so with bounded
    /// deterministic exponential backoff.
    Transient(String),
    /// The backend is down — an outage, not a refusal and not a blip a
    /// quick retry fixes. Distinct from [`BackendError::Denied`]
    /// (which must fail closed: the stored state may be fine but the
    /// caller is not getting in with these credentials) and from
    /// [`BackendError::Transient`] (which is worth an immediate
    /// backoff-retry): the placement layer counts an unavailable child
    /// toward quorum loss and queues its shards for repair once the
    /// backend returns.
    Unavailable(String),
    /// Backend-specific permanent failure.
    Other(String),
}

impl BackendError {
    /// Whether retrying the failed operation may succeed.
    pub fn is_transient(&self) -> bool {
        matches!(self, BackendError::Transient(_))
    }
}

impl core::fmt::Display for BackendError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BackendError::Denied => write!(f, "backend denied access"),
            BackendError::Transient(s) => write!(f, "transient backend failure: {s}"),
            BackendError::Unavailable(s) => write!(f, "backend unavailable: {s}"),
            BackendError::Other(s) => write!(f, "backend failure: {s}"),
        }
    }
}

impl std::error::Error for BackendError {}

/// A flat namespace of named opaque blobs: the storage half of the
/// §3.5 store-nym pipeline, abstracted so callers can't tell a USB
/// partition from a pseudonymous cloud account.
pub trait ObjectBackend {
    /// Writes (or overwrites) the object at `name`.
    fn put(&mut self, name: &str, data: Vec<u8>) -> Result<(), BackendError>;

    /// Writes a batch of objects in one operation. Semantically
    /// equivalent to [`ObjectBackend::put`] in order (later duplicates
    /// win), but backends with per-operation overhead — a credentialed
    /// cloud session authenticates once per call — amortize it across
    /// the whole batch. The store pipeline ships every blob of a
    /// multi-session fleet save through one of these. On error, a
    /// prefix of the batch may have landed (same contract as a caller
    /// looping `put` and stopping at the first failure).
    fn put_many(&mut self, objects: Vec<(String, Vec<u8>)>) -> Result<(), BackendError> {
        for (name, data) in objects {
            self.put(&name, data)?;
        }
        Ok(())
    }

    /// Applies a mixed batch of writes and deletions. The default is
    /// merely *sequenced* — puts land first (via
    /// [`ObjectBackend::put_many`]), then deletes, and a crash or error
    /// in between leaves the overlap observable. Backends with a real
    /// transaction boundary override this with something stronger: the
    /// journaled [`crate::disk::DiskStore`] commits the whole batch
    /// atomically, which is what lets chunk mark-and-sweep retire old
    /// objects in the same transaction that lands their replacements.
    fn apply_batch(
        &mut self,
        puts: Vec<(String, Vec<u8>)>,
        deletes: Vec<String>,
    ) -> Result<(), BackendError> {
        self.put_many(puts)?;
        for name in deletes {
            self.delete(&name)?;
        }
        Ok(())
    }

    /// Reads the object at `name`; `Ok(None)` when absent.
    fn get(&mut self, name: &str) -> Result<Option<&[u8]>, BackendError>;

    /// Deletes the object at `name`, reporting whether it existed.
    fn delete(&mut self, name: &str) -> Result<bool, BackendError>;

    /// Appends every object name to `out` (order unspecified).
    fn list(&mut self, out: &mut Vec<String>) -> Result<(), BackendError>;
}

impl<B: ObjectBackend + ?Sized> ObjectBackend for &mut B {
    fn put(&mut self, name: &str, data: Vec<u8>) -> Result<(), BackendError> {
        (**self).put(name, data)
    }

    fn put_many(&mut self, objects: Vec<(String, Vec<u8>)>) -> Result<(), BackendError> {
        (**self).put_many(objects)
    }

    fn apply_batch(
        &mut self,
        puts: Vec<(String, Vec<u8>)>,
        deletes: Vec<String>,
    ) -> Result<(), BackendError> {
        (**self).apply_batch(puts, deletes)
    }

    fn get(&mut self, name: &str) -> Result<Option<&[u8]>, BackendError> {
        (**self).get(name)
    }

    fn delete(&mut self, name: &str) -> Result<bool, BackendError> {
        (**self).delete(name)
    }

    fn list(&mut self, out: &mut Vec<String>) -> Result<(), BackendError> {
        (**self).list(out)
    }
}
