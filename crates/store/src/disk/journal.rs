//! The `NYMJ` write-ahead journal: on-disk format, encode, and
//! fail-closed decode.
//!
//! # On-disk format (`NYMJ`, version 1)
//!
//! The journal file has three regions. All integers are little-endian;
//! all checksums are SHA-256 truncated to 16 bytes over a
//! domain-separation string followed by the covered bytes.
//!
//! **Superblock slots** — two 64-byte slots at offsets 0 and 64,
//! written alternately (never in place), each:
//!
//! ```text
//! "NYMJ" | version u32 | gen u64 | applied_seq u64 | heap_len u64
//!        | checksum [16] | zero padding to 64
//! ```
//!
//! `gen` is a monotone write generation — open picks the valid slot
//! with the higher `gen`, so a torn superblock write can only destroy
//! the slot being written, never the current one. `applied_seq` is the
//! last batch sequence fully applied to the heap; `heap_len` is the
//! committed heap length (heap bytes past it are untrusted garbage).
//! Checksum domain: `"nymix.disk.sb"` over the 32 bytes before it.
//!
//! **Batch record** — one frame at offset 128 ([`BATCH_START`]),
//! rewritten in place per batch (the cursor resets after apply, so at
//! most one batch ever awaits replay):
//!
//! ```text
//! "JBAT" | seq u64 | op_count u32 | body_len u64 | checksum [16] | body
//! ```
//!
//! Checksum domain: `"nymix.disk.batch"` over `seq | op_count |
//! body_len | body`. The body is `op_count` operations:
//!
//! ```text
//! put:    0x01 | name_len u16 | name (UTF-8) | data_len u64 | data
//! delete: 0x02 | name_len u16 | name (UTF-8)
//! ```
//!
//! # Decode policy
//!
//! [`decode_batch`] returns `None` for *anything* that is not a
//! complete, checksummed, exactly-consistent frame — truncation, a torn
//! tail, stale bytes from a larger earlier batch, flipped bits,
//! non-UTF-8 names, trailing garbage inside the declared body. A batch
//! that doesn't verify simply never committed; recovery discards it.
//! Decode never panics on hostile bytes (property-tested in
//! `tests/prop.rs`).

use nymix_crypto::Sha256;

/// Journal format version this build reads and writes.
pub const JOURNAL_VERSION: u32 = 1;

/// Size of one superblock slot, bytes.
pub const SB_SLOT_LEN: usize = 64;

/// Byte offset of the batch record region (after both superblock
/// slots).
pub const BATCH_START: usize = 2 * SB_SLOT_LEN;

/// Fixed batch frame header length: magic + seq + op_count + body_len +
/// checksum.
pub const BATCH_HEADER_LEN: usize = 4 + 8 + 4 + 8 + 16;

const SB_MAGIC: &[u8; 4] = b"NYMJ";
const BATCH_MAGIC: &[u8; 4] = b"JBAT";
const SB_DOMAIN: &[u8] = b"nymix.disk.sb";
const BATCH_DOMAIN: &[u8] = b"nymix.disk.batch";

/// Truncated-SHA-256 checksum with domain separation.
fn check16(domain: &[u8], parts: &[&[u8]]) -> [u8; 16] {
    let mut h = Sha256::new();
    h.update(domain);
    for p in parts {
        h.update(p);
    }
    let digest = h.finalize();
    let mut out = [0u8; 16];
    out.copy_from_slice(&digest[..16]);
    out
}

/// A decoded, validated superblock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Superblock {
    /// Monotone slot-write generation.
    pub gen: u64,
    /// Last batch sequence fully applied to the heap.
    pub applied_seq: u64,
    /// Committed heap length in bytes.
    pub heap_len: u64,
}

/// Encodes a superblock into one 64-byte slot image.
pub fn encode_superblock(sb: &Superblock) -> [u8; SB_SLOT_LEN] {
    let mut out = [0u8; SB_SLOT_LEN];
    out[..4].copy_from_slice(SB_MAGIC);
    out[4..8].copy_from_slice(&JOURNAL_VERSION.to_le_bytes());
    out[8..16].copy_from_slice(&sb.gen.to_le_bytes());
    out[16..24].copy_from_slice(&sb.applied_seq.to_le_bytes());
    out[24..32].copy_from_slice(&sb.heap_len.to_le_bytes());
    let check = check16(SB_DOMAIN, &[&out[..32]]);
    out[32..48].copy_from_slice(&check);
    out
}

/// Decodes one superblock slot; `None` when the slot is torn, blank,
/// from a different version, or fails its checksum.
pub fn decode_superblock(slot: &[u8]) -> Option<Superblock> {
    if slot.len() < 48 || &slot[..4] != SB_MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(slot[4..8].try_into().ok()?);
    if version != JOURNAL_VERSION {
        return None;
    }
    let check = check16(SB_DOMAIN, &[&slot[..32]]);
    if check != slot[32..48] {
        return None;
    }
    Some(Superblock {
        gen: u64::from_le_bytes(slot[8..16].try_into().ok()?),
        applied_seq: u64::from_le_bytes(slot[16..24].try_into().ok()?),
        heap_len: u64::from_le_bytes(slot[24..32].try_into().ok()?),
    })
}

/// One operation in a journaled batch (borrowed form, for encoding).
#[derive(Debug, Clone, Copy)]
pub enum BatchOp<'a> {
    /// Write (or overwrite) `name` with `data`.
    Put(&'a str, &'a [u8]),
    /// Remove `name` if present.
    Delete(&'a str),
}

/// One operation decoded from a journaled batch (owned form).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OwnedOp {
    /// Write (or overwrite) the named object.
    Put(String, Vec<u8>),
    /// Remove the named object if present.
    Delete(String),
}

/// A batch frame that decoded and verified completely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedBatch {
    /// The batch's commit sequence number.
    pub seq: u64,
    /// Operations in apply order.
    pub ops: Vec<OwnedOp>,
}

/// Encodes a batch frame (header + body) ready to write at
/// [`BATCH_START`].
pub fn encode_batch(seq: u64, ops: &[BatchOp<'_>]) -> Vec<u8> {
    let mut body = Vec::new();
    for op in ops {
        match op {
            BatchOp::Put(name, data) => {
                body.push(1u8);
                body.extend_from_slice(&crate::archive::len_u16(name.len()).to_le_bytes());
                body.extend_from_slice(name.as_bytes());
                body.extend_from_slice(&(data.len() as u64).to_le_bytes());
                body.extend_from_slice(data);
            }
            BatchOp::Delete(name) => {
                body.push(2u8);
                body.extend_from_slice(&crate::archive::len_u16(name.len()).to_le_bytes());
                body.extend_from_slice(name.as_bytes());
            }
        }
    }
    let count = crate::archive::len_u32(ops.len());
    let body_len = body.len() as u64;
    let check = check16(
        BATCH_DOMAIN,
        &[
            &seq.to_le_bytes(),
            &count.to_le_bytes(),
            &body_len.to_le_bytes(),
            &body,
        ],
    );
    let mut out = Vec::with_capacity(BATCH_HEADER_LEN + body.len());
    out.extend_from_slice(BATCH_MAGIC);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&count.to_le_bytes());
    out.extend_from_slice(&body_len.to_le_bytes());
    out.extend_from_slice(&check);
    out.extend_from_slice(&body);
    out
}

fn read_u16(b: &[u8], at: &mut usize) -> Option<u16> {
    let v = u16::from_le_bytes(b.get(*at..*at + 2)?.try_into().ok()?);
    *at += 2;
    Some(v)
}

fn read_u64(b: &[u8], at: &mut usize) -> Option<u64> {
    let v = u64::from_le_bytes(b.get(*at..*at + 8)?.try_into().ok()?);
    *at += 8;
    Some(v)
}

fn read_name(b: &[u8], at: &mut usize) -> Option<String> {
    let len = read_u16(b, at)? as usize;
    let raw = b.get(*at..*at + len)?;
    *at += len;
    String::from_utf8(raw.to_vec()).ok()
}

/// Decodes the batch frame at the start of `region` (the journal bytes
/// from [`BATCH_START`] on). Returns `None` — "no committed batch" —
/// for any incomplete, inconsistent, or corrupted frame. Never panics.
pub fn decode_batch(region: &[u8]) -> Option<DecodedBatch> {
    if region.len() < BATCH_HEADER_LEN || &region[..4] != BATCH_MAGIC {
        return None;
    }
    let mut at = 4usize;
    let seq = read_u64(region, &mut at)?;
    let count = {
        let v = u32::from_le_bytes(region.get(at..at + 4)?.try_into().ok()?);
        at += 4;
        v
    };
    let body_len = read_u64(region, &mut at)?;
    let check: [u8; 16] = region.get(at..at + 16)?.try_into().ok()?;
    at += 16;
    let body = region.get(at..at + usize::try_from(body_len).ok()?)?;
    let expect = check16(
        BATCH_DOMAIN,
        &[
            &seq.to_le_bytes(),
            &count.to_le_bytes(),
            &body_len.to_le_bytes(),
            body,
        ],
    );
    if expect != check {
        return None;
    }
    // Parse exactly `count` ops consuming exactly the body.
    let mut ops = Vec::with_capacity(count.min(4096) as usize);
    let mut pos = 0usize;
    for _ in 0..count {
        let tag = *body.get(pos)?;
        pos += 1;
        match tag {
            1 => {
                let name = read_name(body, &mut pos)?;
                let data_len = read_u64(body, &mut pos)?;
                let data = body.get(pos..pos + usize::try_from(data_len).ok()?)?;
                pos += data.len();
                ops.push(OwnedOp::Put(name, data.to_vec()));
            }
            2 => {
                let name = read_name(body, &mut pos)?;
                ops.push(OwnedOp::Delete(name));
            }
            _ => return None,
        }
    }
    if pos != body.len() {
        return None;
    }
    Some(DecodedBatch { seq, ops })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn superblock_round_trips_and_rejects_flips() {
        let sb = Superblock {
            gen: 7,
            applied_seq: 41,
            heap_len: 9001,
        };
        let slot = encode_superblock(&sb);
        assert_eq!(decode_superblock(&slot), Some(sb));
        for bit in [0usize, 40, 200, 380] {
            let mut bad = slot;
            bad[bit / 8] ^= 1 << (bit % 8);
            assert_eq!(decode_superblock(&bad), None, "bit {bit} accepted");
        }
        assert_eq!(decode_superblock(&[0u8; SB_SLOT_LEN]), None);
        assert_eq!(decode_superblock(b"NYMJ"), None);
    }

    #[test]
    fn batch_round_trips() {
        let ops = [
            BatchOp::Put("a/b", b"hello"),
            BatchOp::Delete("old"),
            BatchOp::Put("empty", b""),
        ];
        let frame = encode_batch(5, &ops);
        let dec = decode_batch(&frame).expect("valid frame");
        assert_eq!(dec.seq, 5);
        assert_eq!(
            dec.ops,
            vec![
                OwnedOp::Put("a/b".into(), b"hello".to_vec()),
                OwnedOp::Delete("old".into()),
                OwnedOp::Put("empty".into(), b"".to_vec()),
            ]
        );
    }

    #[test]
    fn batch_tolerates_trailing_garbage_outside_body() {
        // Stale bytes from an earlier, larger batch sit after the body.
        let mut frame = encode_batch(9, &[BatchOp::Put("x", b"1")]);
        frame.extend_from_slice(&[0xAB; 100]);
        assert_eq!(decode_batch(&frame).map(|d| d.seq), Some(9));
    }

    #[test]
    fn torn_or_flipped_batch_fails_closed() {
        let frame = encode_batch(3, &[BatchOp::Put("k", &[7u8; 300])]);
        // Every truncation point: decodes to None, never panics.
        for cut in 0..frame.len() {
            assert_eq!(decode_batch(&frame[..cut]), None, "cut {cut}");
        }
        // Every byte flipped somewhere: rejected.
        for i in (0..frame.len()).step_by(13) {
            let mut bad = frame.clone();
            bad[i] ^= 0x40;
            assert_eq!(decode_batch(&bad), None, "flip {i}");
        }
    }

    #[test]
    fn batch_with_inconsistent_count_fails() {
        // Valid checksum but body shorter than count claims is
        // impossible to construct without recomputing the checksum —
        // do that, simulating a hostile writer.
        let mut body = Vec::new();
        body.push(1u8);
        body.extend_from_slice(&2u16.to_le_bytes());
        body.extend_from_slice(b"ab");
        body.extend_from_slice(&1u64.to_le_bytes());
        body.push(9);
        let seq = 1u64;
        let count = 3u32; // claims 3 ops, body holds 1
        let body_len = body.len() as u64;
        let check = check16(
            BATCH_DOMAIN,
            &[
                &seq.to_le_bytes(),
                &count.to_le_bytes(),
                &body_len.to_le_bytes(),
                &body,
            ],
        );
        let mut frame = Vec::new();
        frame.extend_from_slice(b"JBAT");
        frame.extend_from_slice(&seq.to_le_bytes());
        frame.extend_from_slice(&count.to_le_bytes());
        frame.extend_from_slice(&body_len.to_le_bytes());
        frame.extend_from_slice(&check);
        frame.extend_from_slice(&body);
        assert_eq!(decode_batch(&frame), None);
    }
}
