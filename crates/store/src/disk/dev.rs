//! The simulated block device under the disk store.
//!
//! [`SimDisk`] models the only properties of a real disk that matter to
//! crash consistency, and nothing else:
//!
//! * **Two logical files** ([`FileId::Journal`], [`FileId::Heap`]) of
//!   byte-addressable storage, each with a *view* (what reads observe —
//!   the OS page cache, read-your-writes) and a *durable image* (what
//!   survives power loss).
//! * **A volatile write cache.** `write` updates the view and queues
//!   the operation; nothing reaches the durable image until `fsync` on
//!   that file flushes its queued writes. Between barriers the device
//!   is free to persist any subset of the queue in any order — exactly
//!   the freedom [`CrashMode`] exercises.
//! * **Torn sectors.** A queued write interrupted by power loss may
//!   land only a prefix of its bytes.
//! * **Deterministic failure.** A [`FaultPlan`]
//!   kills the device at an exact operation index, so an exhaustive
//!   test loop can crash a store at *every* write/fsync boundary of a
//!   fleet save and replay recovery from each.
//!
//! The device never touches the real filesystem: images live in RAM,
//! crashes are pure functions of the queue, and every run is
//! reproducible. I/O volume is tallied in [`DiskStats`] so the nym
//! manager can charge simulated time for it via
//! `nymix_sim::DiskProfile`.

use super::fault::{CrashMode, FaultPlan};

/// Which logical file of the device an operation targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileId {
    /// The write-ahead journal (superblocks + batch log).
    Journal,
    /// The log-structured object heap.
    Heap,
}

impl FileId {
    fn idx(self) -> usize {
        match self {
            FileId::Journal => 0,
            FileId::Heap => 1,
        }
    }
}

/// Why a device operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// The fault plan cut power at this operation. The in-flight
    /// operation may have partially reached media; nothing after it
    /// exists.
    PowerLoss,
    /// The device already lost power earlier; every later operation
    /// fails until the disk is recovered via
    /// [`SimDisk::crashed`].
    Dead,
}

impl core::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DeviceError::PowerLoss => write!(f, "simulated power loss"),
            DeviceError::Dead => write!(f, "device is powered off"),
        }
    }
}

impl std::error::Error for DeviceError {}

/// Running I/O counters, the inputs to the simulated-time disk model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskStats {
    /// Total bytes submitted by `write` calls.
    pub bytes_written: u64,
    /// Total bytes returned by media reads (RAM-tier hits don't count).
    pub bytes_read: u64,
    /// Number of `write` submissions.
    pub writes: u64,
    /// Number of completed fsync barriers.
    pub fsyncs: u64,
    /// Number of media read operations.
    pub reads: u64,
}

impl DiskStats {
    /// Counter-wise difference `self - earlier` (saturating), for
    /// costing one I/O episode.
    pub fn since(&self, earlier: &DiskStats) -> DiskStats {
        DiskStats {
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            writes: self.writes.saturating_sub(earlier.writes),
            fsyncs: self.fsyncs.saturating_sub(earlier.fsyncs),
            reads: self.reads.saturating_sub(earlier.reads),
        }
    }
}

/// One queued-but-unflushed write.
#[derive(Debug, Clone)]
struct PendingWrite {
    file: FileId,
    at: usize,
    data: Vec<u8>,
}

/// An in-memory simulated disk with a volatile write cache and a
/// deterministic fault plan. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct SimDisk {
    /// Read view per file (durable image + every queued write applied).
    view: [Vec<u8>; 2],
    /// What survives power loss, per file.
    durable: [Vec<u8>; 2],
    /// Queued writes not yet flushed, in submission order.
    pending: Vec<PendingWrite>,
    plan: FaultPlan,
    /// Operations executed so far (writes + fsyncs), the fault-plan
    /// coordinate space.
    ops: u64,
    /// Borrowable snapshot for [`SimDisk::stats`], refreshed from the
    /// meters below on every tallied operation — the meters are the
    /// accounting (and mirror into the `disk.*` obs counters when the
    /// recorder is on); this struct is only the public view of them.
    stats: DiskStats,
    m_writes: nymix_obs::Meter,
    m_bytes_written: nymix_obs::Meter,
    m_reads: nymix_obs::Meter,
    m_bytes_read: nymix_obs::Meter,
    m_fsyncs: nymix_obs::Meter,
    dead: bool,
}

impl Default for SimDisk {
    fn default() -> Self {
        Self::new()
    }
}

impl SimDisk {
    /// A fresh, empty, fault-free device.
    pub fn new() -> Self {
        Self {
            view: [Vec::new(), Vec::new()],
            durable: [Vec::new(), Vec::new()],
            pending: Vec::new(),
            plan: FaultPlan::default(),
            ops: 0,
            stats: DiskStats::default(),
            m_writes: nymix_obs::meter!("disk.writes"),
            m_bytes_written: nymix_obs::meter!("disk.bytes_written"),
            m_reads: nymix_obs::meter!("disk.reads"),
            m_bytes_read: nymix_obs::meter!("disk.bytes_read"),
            m_fsyncs: nymix_obs::meter!("disk.fsyncs"),
            dead: false,
        }
    }

    /// Installs a fault plan. Counting starts from the device's current
    /// operation counter.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.plan = plan;
    }

    /// Operations (writes + fsyncs) executed so far. Fault-plan kill
    /// points index this counter.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Cumulative I/O counters.
    pub fn stats(&self) -> &DiskStats {
        &self.stats
    }

    /// Number of queued writes that have not reached a barrier yet.
    pub fn pending_writes(&self) -> usize {
        self.pending.len()
    }

    /// Whether the device has lost power and needs crash recovery.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Current length of a file as reads observe it.
    pub fn len(&self, file: FileId) -> usize {
        self.view[file.idx()].len()
    }

    /// True when the file has never been written.
    pub fn is_empty(&self, file: FileId) -> bool {
        self.view[file.idx()].is_empty()
    }

    fn charge(&mut self) -> Result<(), DeviceError> {
        if self.dead {
            return Err(DeviceError::Dead);
        }
        let op = self.ops;
        self.ops += 1;
        if self.plan.kills_at(op) {
            self.dead = true;
            return Err(DeviceError::PowerLoss);
        }
        Ok(())
    }

    /// Submits a write of `data` at byte offset `at`, extending the
    /// file with zeros if it ends before `at`. The view reflects the
    /// write immediately; the durable image only after a successful
    /// [`SimDisk::fsync`] of the same file.
    ///
    /// On [`DeviceError::PowerLoss`] the interrupted write stays queued:
    /// depending on the [`CrashMode`], a prefix of its bytes may still
    /// reach media.
    pub fn write(&mut self, file: FileId, at: usize, data: &[u8]) -> Result<(), DeviceError> {
        let queue = |disk: &mut Self| {
            apply_write(&mut disk.view[file.idx()], at, data);
            disk.pending.push(PendingWrite {
                file,
                at,
                data: data.to_vec(),
            });
            disk.m_bytes_written.add(data.len() as u64);
            disk.m_writes.add(1);
            disk.stats.bytes_written = disk.m_bytes_written.get();
            disk.stats.writes = disk.m_writes.get();
        };
        match self.charge() {
            Ok(()) => {
                queue(self);
                Ok(())
            }
            Err(DeviceError::PowerLoss) => {
                // The write was in flight when power died: it is part
                // of the unflushed queue the crash model draws from,
                // but the submitter never saw it complete.
                queue(self);
                Err(DeviceError::PowerLoss)
            }
            Err(e) => Err(e),
        }
    }

    /// Flushes every queued write of `file` to the durable image, in
    /// submission order. Queued writes of the *other* file stay
    /// volatile — barriers are per-file, like `fsync(2)` on one fd.
    pub fn fsync(&mut self, file: FileId) -> Result<(), DeviceError> {
        self.charge()?;
        let mut remaining = Vec::with_capacity(self.pending.len());
        for w in self.pending.drain(..) {
            if w.file == file {
                apply_write(&mut self.durable[file.idx()], w.at, &w.data);
            } else {
                remaining.push(w);
            }
        }
        self.pending = remaining;
        self.m_fsyncs.add(1);
        self.stats.fsyncs = self.m_fsyncs.get();
        Ok(())
    }

    /// Reads `len` bytes at `at` from the view, zero-filling past EOF.
    /// Tallied as one media read (callers with a RAM tier only come
    /// here on a miss).
    pub fn read(&mut self, file: FileId, at: usize, len: usize, out: &mut Vec<u8>) {
        out.clear();
        let v = &self.view[file.idx()];
        let end = at.saturating_add(len).min(v.len());
        if at < end {
            out.extend_from_slice(&v[at..end]);
        }
        out.resize(len, 0);
        self.m_bytes_read.add(len as u64);
        self.m_reads.add(1);
        self.stats.bytes_read = self.m_bytes_read.get();
        self.stats.reads = self.m_reads.get();
    }

    /// Borrows the whole view of a file (used by recovery scans; not
    /// tallied — recovery cost is charged by the caller from the scan
    /// length).
    pub fn view(&self, file: FileId) -> &[u8] {
        &self.view[file.idx()]
    }

    /// Borrows the durable image of a file, i.e. what a forensic read
    /// of the powered-off media would find.
    pub fn durable(&self, file: FileId) -> &[u8] {
        &self.durable[file.idx()]
    }

    /// Flips one bit of the **durable** image — media corruption (a
    /// decayed cell, a hostile edit), distinct from crash reordering.
    /// `bit` indexes bits little-endian within the file; out-of-range
    /// flips extend the file with zeros first.
    pub fn corrupt_durable_bit(&mut self, file: FileId, bit: usize) {
        let byte = bit / 8;
        let img = &mut self.durable[file.idx()];
        if img.len() <= byte {
            img.resize(byte + 1, 0);
        }
        img[byte] ^= 1 << (bit % 8);
        // Reads must observe the corruption too (cold cache).
        self.view = self.durable.clone();
        self.pending.clear();
    }

    /// Materializes the post-crash device: the durable image plus
    /// whichever queued writes `mode` lets reach media. The result is
    /// powered on, fault-free, with an empty write cache — ready for
    /// [`DiskStore::open`](crate::disk::DiskStore::open) to recover.
    pub fn crashed(&self, mode: CrashMode) -> SimDisk {
        let mut durable = self.durable.clone();
        let apply = |durable: &mut [Vec<u8>; 2], w: &PendingWrite, take: usize| {
            apply_write(
                &mut durable[w.file.idx()],
                w.at,
                &w.data[..take.min(w.data.len())],
            );
        };
        match mode {
            CrashMode::None => {}
            CrashMode::Prefix(n) => {
                for w in self.pending.iter().take(n) {
                    apply(&mut durable, w, w.data.len());
                }
            }
            CrashMode::Torn { landed, torn_bytes } => {
                for w in self.pending.iter().take(landed) {
                    apply(&mut durable, w, w.data.len());
                }
                if let Some(w) = self.pending.get(landed) {
                    apply(&mut durable, w, torn_bytes);
                }
            }
            CrashMode::JournalOnly => {
                for w in self.pending.iter().filter(|w| w.file == FileId::Journal) {
                    apply(&mut durable, w, w.data.len());
                }
            }
            CrashMode::HeapOnly => {
                for w in self.pending.iter().filter(|w| w.file == FileId::Heap) {
                    apply(&mut durable, w, w.data.len());
                }
            }
            CrashMode::All => {
                for w in &self.pending {
                    apply(&mut durable, w, w.data.len());
                }
            }
        }
        SimDisk {
            view: durable.clone(),
            durable,
            pending: Vec::new(),
            plan: FaultPlan::none(),
            ops: 0,
            stats: DiskStats::default(),
            m_writes: nymix_obs::meter!("disk.writes"),
            m_bytes_written: nymix_obs::meter!("disk.bytes_written"),
            m_reads: nymix_obs::meter!("disk.reads"),
            m_bytes_read: nymix_obs::meter!("disk.bytes_read"),
            m_fsyncs: nymix_obs::meter!("disk.fsyncs"),
            dead: false,
        }
    }
}

/// Applies `data` at offset `at`, zero-extending the file as needed.
fn apply_write(file: &mut Vec<u8>, at: usize, data: &[u8]) {
    let end = at + data.len();
    if file.len() < end {
        file.resize(end, 0);
    }
    file[at..end].copy_from_slice(data);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_are_volatile_until_fsync() {
        let mut d = SimDisk::new();
        d.write(FileId::Heap, 0, b"hello").unwrap();
        assert_eq!(d.view(FileId::Heap), b"hello");
        assert!(d.durable(FileId::Heap).is_empty());
        d.fsync(FileId::Heap).unwrap();
        assert_eq!(d.durable(FileId::Heap), b"hello");
        assert_eq!(d.pending_writes(), 0);
    }

    #[test]
    fn fsync_is_per_file() {
        let mut d = SimDisk::new();
        d.write(FileId::Journal, 0, b"j").unwrap();
        d.write(FileId::Heap, 0, b"h").unwrap();
        d.fsync(FileId::Journal).unwrap();
        assert_eq!(d.durable(FileId::Journal), b"j");
        assert!(d.durable(FileId::Heap).is_empty());
        assert_eq!(d.pending_writes(), 1);
    }

    #[test]
    fn fault_plan_kills_then_device_is_dead() {
        let mut d = SimDisk::new();
        d.set_fault_plan(FaultPlan::kill_at_op(1));
        d.write(FileId::Heap, 0, b"a").unwrap();
        assert_eq!(d.write(FileId::Heap, 1, b"b"), Err(DeviceError::PowerLoss));
        assert_eq!(d.fsync(FileId::Heap), Err(DeviceError::Dead));
        assert!(d.is_dead());
    }

    #[test]
    fn crash_modes_select_pending_subsets() {
        let mut d = SimDisk::new();
        d.write(FileId::Journal, 0, b"JJ").unwrap();
        d.write(FileId::Heap, 0, b"HHHH").unwrap();

        let none = d.crashed(CrashMode::None);
        assert!(none.durable(FileId::Journal).is_empty());
        assert!(none.durable(FileId::Heap).is_empty());

        let first = d.crashed(CrashMode::Prefix(1));
        assert_eq!(first.durable(FileId::Journal), b"JJ");
        assert!(first.durable(FileId::Heap).is_empty());

        let torn = d.crashed(CrashMode::Torn {
            landed: 1,
            torn_bytes: 2,
        });
        assert_eq!(torn.durable(FileId::Heap), b"HH");

        let heap_only = d.crashed(CrashMode::HeapOnly);
        assert!(heap_only.durable(FileId::Journal).is_empty());
        assert_eq!(heap_only.durable(FileId::Heap), b"HHHH");

        let all = d.crashed(CrashMode::All);
        assert_eq!(all.durable(FileId::Journal), b"JJ");
        assert_eq!(all.durable(FileId::Heap), b"HHHH");
    }

    #[test]
    fn crashed_disk_is_powered_and_clean() {
        let mut d = SimDisk::new();
        d.set_fault_plan(FaultPlan::kill_at_op(0));
        assert_eq!(d.write(FileId::Heap, 0, b"x"), Err(DeviceError::PowerLoss));
        let mut r = d.crashed(CrashMode::All);
        assert!(!r.is_dead());
        r.write(FileId::Heap, 1, b"y").unwrap();
        assert_eq!(r.view(FileId::Heap), b"xy");
    }

    #[test]
    fn read_zero_fills_past_eof_and_counts() {
        let mut d = SimDisk::new();
        d.write(FileId::Heap, 0, b"abc").unwrap();
        let mut buf = Vec::new();
        d.read(FileId::Heap, 1, 4, &mut buf);
        assert_eq!(buf, b"bc\0\0");
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().bytes_read, 4);
    }

    #[test]
    fn corrupt_durable_bit_flips_and_invalidates_cache() {
        let mut d = SimDisk::new();
        d.write(FileId::Journal, 0, &[0u8]).unwrap();
        d.fsync(FileId::Journal).unwrap();
        d.corrupt_durable_bit(FileId::Journal, 3);
        assert_eq!(d.durable(FileId::Journal), &[8u8]);
        assert_eq!(d.view(FileId::Journal), &[8u8]);
    }

    #[test]
    fn stats_since_subtracts() {
        let mut d = SimDisk::new();
        d.write(FileId::Heap, 0, b"abcd").unwrap();
        let before = *d.stats();
        d.write(FileId::Heap, 4, b"ef").unwrap();
        d.fsync(FileId::Heap).unwrap();
        let delta = d.stats().since(&before);
        assert_eq!(delta.bytes_written, 2);
        assert_eq!(delta.writes, 1);
        assert_eq!(delta.fsyncs, 1);
    }
}
