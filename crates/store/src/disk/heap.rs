//! The log-structured object heap: on-disk format, encode, and the
//! open-time scan.
//!
//! # On-disk format (heap file, version 1)
//!
//! A pure append log of records, little-endian integers, each record
//! ending in a SHA-256/16 checksum (domain `"nymix.disk.heap"`) over
//! the record bytes before it:
//!
//! ```text
//! object:    "HOBJ" | name_len u16 | name (UTF-8) | data_len u64
//!            | data | checksum [16]
//! tombstone: "HDEL" | name_len u16 | name (UTF-8) | checksum [16]
//! ```
//!
//! Later records shadow earlier ones for the same name; a tombstone
//! removes it. The heap is **only trusted up to the committed length**
//! recorded in the journal superblock: bytes past it are whatever a
//! crash left behind (possibly a torn or reordered append) and are
//! overwritten by the next batch. Within the committed region a record
//! that fails to parse means media corruption, and the scan fails
//! closed ([`HeapCorrupt`]) rather than silently dropping state —
//! mirroring the archive layer's hostile-bytes policy.

use std::collections::BTreeMap;

use nymix_crypto::Sha256;

const OBJ_MAGIC: &[u8; 4] = b"HOBJ";
const DEL_MAGIC: &[u8; 4] = b"HDEL";
const HEAP_DOMAIN: &[u8] = b"nymix.disk.heap";
const CHECK_LEN: usize = 16;

/// The committed heap region failed to parse: media corruption under a
/// valid superblock. Recovery fails closed rather than guessing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeapCorrupt {
    /// Byte offset of the record that failed to parse.
    pub at: u64,
}

impl core::fmt::Display for HeapCorrupt {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "heap record corrupt at byte {}", self.at)
    }
}

impl std::error::Error for HeapCorrupt {}

/// Location of one live object's data bytes inside the heap file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjLoc {
    /// Absolute byte offset of the object data.
    pub off: u64,
    /// Data length in bytes.
    pub len: u64,
}

fn check16(record: &[u8]) -> [u8; 16] {
    let mut h = Sha256::new();
    h.update(HEAP_DOMAIN);
    h.update(record);
    let digest = h.finalize();
    let mut out = [0u8; 16];
    out.copy_from_slice(&digest[..16]);
    out
}

/// Appends an object record for `name`/`data` to `out`, returning the
/// data extent relative to the *start of `out` before the call* — add
/// the record's final file offset to get the absolute [`ObjLoc`].
pub fn encode_put(name: &str, data: &[u8], out: &mut Vec<u8>) -> ObjLoc {
    let start = out.len();
    out.extend_from_slice(OBJ_MAGIC);
    out.extend_from_slice(&crate::archive::len_u16(name.len()).to_le_bytes());
    out.extend_from_slice(name.as_bytes());
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    let data_off = out.len() - start;
    out.extend_from_slice(data);
    let check = check16(&out[start..]);
    out.extend_from_slice(&check);
    ObjLoc {
        off: data_off as u64,
        len: data.len() as u64,
    }
}

/// Appends a tombstone record for `name` to `out`.
pub fn encode_delete(name: &str, out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(DEL_MAGIC);
    out.extend_from_slice(&crate::archive::len_u16(name.len()).to_le_bytes());
    out.extend_from_slice(name.as_bytes());
    let check = check16(&out[start..]);
    out.extend_from_slice(&check);
}

/// Result of scanning the committed heap region.
#[derive(Debug, Default)]
pub struct HeapScan {
    /// Live objects and their data extents, last record wins.
    pub index: BTreeMap<String, ObjLoc>,
    /// Bytes occupied by shadowed records and tombstones — reclaimable
    /// garbage a future compactor can target.
    pub garbage_bytes: u64,
}

/// Walks `committed` (the heap file truncated to the superblock's
/// committed length) and rebuilds the live-object index. Fails closed
/// on any record that doesn't parse or verify. Never panics.
pub fn scan(committed: &[u8]) -> Result<HeapScan, HeapCorrupt> {
    let mut out = HeapScan::default();
    let mut live_record: BTreeMap<String, u64> = BTreeMap::new();
    let mut pos = 0usize;
    let corrupt = |at: usize| HeapCorrupt { at: at as u64 };
    while pos < committed.len() {
        let start = pos;
        let magic = committed.get(pos..pos + 4).ok_or(corrupt(start))?;
        pos += 4;
        let name_len = u16::from_le_bytes(
            committed
                .get(pos..pos + 2)
                .ok_or(corrupt(start))?
                .try_into()
                .map_err(|_| corrupt(start))?,
        ) as usize;
        pos += 2;
        let name_raw = committed.get(pos..pos + name_len).ok_or(corrupt(start))?;
        pos += name_len;
        let name = String::from_utf8(name_raw.to_vec()).map_err(|_| corrupt(start))?;
        let is_put = match magic {
            m if m == OBJ_MAGIC => true,
            m if m == DEL_MAGIC => false,
            _ => return Err(corrupt(start)),
        };
        let loc = if is_put {
            let data_len = u64::from_le_bytes(
                committed
                    .get(pos..pos + 8)
                    .ok_or(corrupt(start))?
                    .try_into()
                    .map_err(|_| corrupt(start))?,
            );
            pos += 8;
            let dl = usize::try_from(data_len).map_err(|_| corrupt(start))?;
            let data_off = pos as u64;
            committed.get(pos..pos + dl).ok_or(corrupt(start))?;
            pos += dl;
            Some(ObjLoc {
                off: data_off,
                len: data_len,
            })
        } else {
            None
        };
        let check = committed.get(pos..pos + CHECK_LEN).ok_or(corrupt(start))?;
        if check16(&committed[start..pos]) != check[..] {
            return Err(corrupt(start));
        }
        pos += CHECK_LEN;
        let record_len = (pos - start) as u64;
        // Shadowed predecessor (or the tombstone itself) is garbage.
        if let Some(prev_len) = live_record.remove(&name) {
            out.garbage_bytes += prev_len;
            out.index.remove(&name);
        }
        match loc {
            Some(l) => {
                out.index.insert(name.clone(), l);
                live_record.insert(name, record_len);
            }
            None => out.garbage_bytes += record_len,
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_rebuilds_last_writer_wins() {
        let mut heap = Vec::new();
        encode_put("a", b"one", &mut heap);
        encode_put("b", b"two", &mut heap);
        encode_put("a", b"three", &mut heap);
        encode_delete("b", &mut heap);
        let s = scan(&heap).unwrap();
        assert_eq!(s.index.len(), 1);
        let loc = s.index["a"];
        assert_eq!(
            &heap[loc.off as usize..(loc.off + loc.len) as usize],
            b"three"
        );
        assert!(s.garbage_bytes > 0);
    }

    #[test]
    fn encode_put_extent_is_relative() {
        let mut heap = vec![0xEE; 37]; // pre-existing bytes
        let rel = encode_put("k", b"payload", &mut heap);
        let abs = ObjLoc {
            off: 37 + rel.off,
            len: rel.len,
        };
        assert_eq!(
            &heap[abs.off as usize..(abs.off + abs.len) as usize],
            b"payload"
        );
    }

    #[test]
    fn corrupt_committed_region_fails_closed() {
        let mut heap = Vec::new();
        encode_put("a", b"data", &mut heap);
        let len = heap.len();
        for bit in (0..len * 8).step_by(17) {
            let mut bad = heap.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert!(scan(&bad).is_err(), "bit {bit} accepted");
        }
        // Truncations anywhere inside the committed region fail too.
        for cut in 1..len {
            assert!(scan(&heap[..cut]).is_err(), "cut {cut} accepted");
        }
        assert!(scan(&[]).unwrap().index.is_empty());
    }

    #[test]
    fn empty_data_and_empty_name_round_trip() {
        let mut heap = Vec::new();
        encode_put("", b"", &mut heap);
        let s = scan(&heap).unwrap();
        assert_eq!(s.index[""], ObjLoc { off: 14, len: 0 });
    }
}
