//! Crash-consistent disk-backed object store.
//!
//! Every other [`ObjectBackend`] in this crate lives in memory; this
//! one survives power loss. [`DiskStore`] journals batches through a
//! write-ahead log ([`journal`], the `NYMJ` format) ahead of a
//! log-structured object heap ([`heap`]), over a simulated block
//! device ([`SimDisk`]) whose volatile write cache, torn sectors, and
//! deterministic fault injection ([`FaultPlan`], [`CrashMode`]) let an
//! exhaustive test loop crash the store at *every* write/fsync boundary
//! and replay recovery from each.
//!
//! # Durability model
//!
//! The commit protocol for one batch (a [`DiskStore::put_many`] or an
//! atomic [`DiskStore::apply_batch`] of puts + deletes):
//!
//! 1. Encode the whole batch as one checksummed `JBAT` frame and write
//!    it at the journal's batch cursor; **fsync the journal**. The
//!    batch is now the commit point: it either decodes completely after
//!    a crash or it never happened.
//! 2. Append the batch's object records / tombstones to the heap;
//!    **fsync the heap**.
//! 3. Write the superblock (alternating slot, bumped generation) with
//!    the new applied sequence and committed heap length; **fsync the
//!    journal**. The batch cursor thereby resets — at most one batch
//!    ever awaits replay.
//!
//! Recovery on [`DiskStore::open`] picks the newest valid superblock,
//! rebuilds the object index by scanning the heap up to the committed
//! length (bytes past it are crash garbage, overwritten by the next
//! batch), and then looks at the batch frame: a valid frame with the
//! next sequence number is replayed (idempotently — replay is just the
//! missed steps 2–3); anything else is discarded. Consequences:
//!
//! * **Atomic batches.** A crash at any point leaves exactly the
//!   pre-batch or post-batch state — `put_many` upgrades from "a prefix
//!   may have landed" to all-or-nothing, and `apply_batch` makes chunk
//!   mark-and-sweep crash-atomic (new objects land and retired objects
//!   vanish together, so GC can neither leak referenced chunks nor drop
//!   live ones).
//! * **Fail closed.** Corruption *inside* the committed region — a
//!   flipped bit under a valid superblock, both superblocks of a
//!   non-empty store destroyed — is an error ([`DiskError`]), never a
//!   silent partial store.
//! * **Idempotent recovery.** Opening a crashed image twice yields the
//!   same store as opening it once (property-tested).
//!
//! A bounded LRU RAM tier ([`LruTier`]) caches hot payloads; it is
//! updated only after a batch is durable, so the cache never gets ahead
//! of the disk. The device tallies I/O in [`DiskStats`]; the nym
//! manager converts those counters into simulated time with
//! `nymix_sim::DiskProfile`, pricing every fsync barrier the protocol
//! issues.

pub mod dev;
pub mod fault;
pub mod heap;
pub mod journal;
pub mod tier;

use std::collections::BTreeMap;

use crate::backend::{BackendError, ObjectBackend};

pub use dev::{DeviceError, DiskStats, FileId, SimDisk};
pub use fault::{CrashMode, FaultPlan};
pub use tier::{LruTier, TierStats};

use heap::ObjLoc;
use journal::{BatchOp, Superblock, BATCH_START, SB_SLOT_LEN};

/// Default RAM-tier budget: enough for a working set of hot chunks
/// without letting the cache re-grow the memory footprint the disk
/// store exists to shed.
pub const DEFAULT_RAM_TIER_BYTES: usize = 8 << 20;

/// Errors opening or operating a [`DiskStore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiskError {
    /// The simulated device failed (power loss mid-operation).
    Device(DeviceError),
    /// The store lost power earlier in this incarnation; reopen from
    /// the crashed image ([`DiskStore::crash`] → [`DiskStore::open`]).
    Poisoned,
    /// A non-empty store has no valid superblock — media corruption of
    /// both slots. Fails closed.
    CorruptSuperblocks,
    /// The committed heap region failed to parse under a valid
    /// superblock — media corruption. Fails closed.
    CorruptHeap(heap::HeapCorrupt),
}

impl core::fmt::Display for DiskError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DiskError::Device(e) => write!(f, "device: {e}"),
            DiskError::Poisoned => write!(f, "store poisoned by earlier power loss"),
            DiskError::CorruptSuperblocks => {
                write!(f, "no valid superblock on a non-empty device")
            }
            DiskError::CorruptHeap(e) => write!(f, "committed heap corrupt: {e}"),
        }
    }
}

impl std::error::Error for DiskError {}

impl From<DeviceError> for DiskError {
    fn from(e: DeviceError) -> Self {
        DiskError::Device(e)
    }
}

impl From<DiskError> for BackendError {
    fn from(e: DiskError) -> Self {
        BackendError::Other(format!("disk: {e}"))
    }
}

/// Exact on-heap footprint of one object record (for garbage
/// accounting).
fn put_record_len(name: &str, data_len: u64) -> u64 {
    4 + 2 + name.len() as u64 + 8 + data_len + 16
}

/// Exact on-heap footprint of one tombstone record.
fn tombstone_len(name: &str) -> u64 {
    4 + 2 + name.len() as u64 + 16
}

/// A journaled, log-structured, crash-consistent object store over a
/// [`SimDisk`], with a bounded LRU RAM tier. See the
/// [module docs](self) for the durability model.
#[derive(Debug)]
pub struct DiskStore {
    disk: SimDisk,
    index: BTreeMap<String, ObjLoc>,
    /// Committed heap length (superblock `heap_len`).
    heap_len: u64,
    /// Last fully applied batch sequence.
    applied_seq: u64,
    /// Superblock write generation (slot = `gen % 2`).
    sb_gen: u64,
    tier: LruTier,
    garbage_bytes: u64,
    poisoned: bool,
    /// Scratch for media reads of objects too large for the tier.
    read_buf: Vec<u8>,
}

impl DiskStore {
    /// Formats a fresh in-memory device and opens a store on it.
    pub fn new() -> Self {
        Self::open(SimDisk::new()).expect("fresh device always formats cleanly")
    }

    /// Opens (and if necessary recovers) a store from a device image —
    /// typically one produced by [`DiskStore::crash`]. A blank device
    /// is formatted; a crashed one is rolled forward or back to a
    /// batch boundary; a corrupted one fails closed.
    pub fn open(mut disk: SimDisk) -> Result<Self, DiskError> {
        let _span = nymix_obs::span!("recovery");
        if disk.is_dead() {
            return Err(DiskError::Device(DeviceError::Dead));
        }
        let best = {
            let jview = disk.view(FileId::Journal);
            let slot = |i: usize| jview.get(i * SB_SLOT_LEN..(i + 1) * SB_SLOT_LEN);
            [slot(0), slot(1)]
                .into_iter()
                .flatten()
                .filter_map(journal::decode_superblock)
                .max_by_key(|sb| sb.gen)
        };
        let sb = match best {
            Some(sb) => sb,
            None => {
                // No root. Legitimate only for a store that never
                // completed its format fsync — which implies no
                // committed heap and no decodable batch. Anything else
                // is double media corruption: fail closed.
                let heap_dirty = !disk.is_empty(FileId::Heap);
                let batch_present = disk
                    .view(FileId::Journal)
                    .get(BATCH_START..)
                    .and_then(journal::decode_batch)
                    .is_some();
                if heap_dirty || batch_present {
                    return Err(DiskError::CorruptSuperblocks);
                }
                let sb = Superblock {
                    gen: 1,
                    applied_seq: 0,
                    heap_len: 0,
                };
                let img = journal::encode_superblock(&sb);
                disk.write(FileId::Journal, (sb.gen % 2) as usize * SB_SLOT_LEN, &img)?;
                disk.fsync(FileId::Journal)?;
                sb
            }
        };
        let committed_len = usize::try_from(sb.heap_len)
            .map_err(|_| DiskError::CorruptHeap(heap::HeapCorrupt { at: 0 }))?;
        let hview = disk.view(FileId::Heap);
        if hview.len() < committed_len {
            // Committed bytes were fsynced; their absence is media
            // truncation, not a crash artifact.
            return Err(DiskError::CorruptHeap(heap::HeapCorrupt {
                at: hview.len() as u64,
            }));
        }
        let scan = heap::scan(&hview[..committed_len]).map_err(DiskError::CorruptHeap)?;
        let mut store = DiskStore {
            disk,
            index: scan.index,
            heap_len: sb.heap_len,
            applied_seq: sb.applied_seq,
            sb_gen: sb.gen,
            tier: LruTier::new(DEFAULT_RAM_TIER_BYTES),
            garbage_bytes: scan.garbage_bytes,
            poisoned: false,
            read_buf: Vec::new(),
        };
        // Replay the (at most one) batch the crash interrupted.
        let batch = store
            .disk
            .view(FileId::Journal)
            .get(BATCH_START..)
            .and_then(journal::decode_batch);
        if let Some(batch) = batch {
            if batch.seq == store.applied_seq + 1 {
                nymix_obs::counter!("disk.recoveries", 1u64);
                let owned: Vec<(String, Vec<u8>)> = batch
                    .ops
                    .iter()
                    .filter_map(|op| match op {
                        journal::OwnedOp::Put(n, d) => Some((n.clone(), d.clone())),
                        journal::OwnedOp::Delete(_) => None,
                    })
                    .collect();
                let deletes: Vec<String> = batch
                    .ops
                    .iter()
                    .filter_map(|op| match op {
                        journal::OwnedOp::Delete(n) => Some(n.clone()),
                        journal::OwnedOp::Put(..) => None,
                    })
                    .collect();
                store
                    .apply_to_heap(batch.seq, &owned, &deletes)
                    .map_err(DiskError::from)?;
            }
            // seq <= applied_seq: stale frame from an already-applied
            // batch; seq > applied_seq + 1 is unreachable under the
            // protocol and treated as uncommitted garbage. Both: skip.
        }
        Ok(store)
    }

    /// Steps 2–3 of the commit protocol: heap append + superblock
    /// flip. Used both by live commits (after step 1 wrote the
    /// journal) and by recovery replay (where the journal frame is
    /// already durable).
    fn apply_to_heap(
        &mut self,
        seq: u64,
        puts: &[(String, Vec<u8>)],
        deletes: &[String],
    ) -> Result<(), DeviceError> {
        let mut buf = Vec::new();
        let mut new_locs = Vec::with_capacity(puts.len());
        for (name, data) in puts {
            let base = buf.len() as u64;
            let rel = heap::encode_put(name, data, &mut buf);
            new_locs.push(ObjLoc {
                off: self.heap_len + base + rel.off,
                len: rel.len,
            });
        }
        for name in deletes {
            heap::encode_delete(name, &mut buf);
        }
        self.disk
            .write(FileId::Heap, self.heap_len as usize, &buf)?;
        self.disk.fsync(FileId::Heap)?;
        let new_heap_len = self.heap_len + buf.len() as u64;
        let sb = Superblock {
            gen: self.sb_gen + 1,
            applied_seq: seq,
            heap_len: new_heap_len,
        };
        let img = journal::encode_superblock(&sb);
        self.disk
            .write(FileId::Journal, (sb.gen % 2) as usize * SB_SLOT_LEN, &img)?;
        self.disk.fsync(FileId::Journal)?;
        // Durable: now (and only now) mutate in-memory state.
        self.sb_gen = sb.gen;
        self.applied_seq = seq;
        self.heap_len = new_heap_len;
        for ((name, data), loc) in puts.iter().zip(new_locs) {
            if let Some(old) = self.index.insert(name.clone(), loc) {
                self.garbage_bytes += put_record_len(name, old.len);
            }
            self.tier.insert(name, data.clone());
        }
        for name in deletes {
            if let Some(old) = self.index.remove(name) {
                self.garbage_bytes += put_record_len(name, old.len);
            }
            self.garbage_bytes += tombstone_len(name);
            self.tier.remove(name);
        }
        nymix_obs::gauge!("disk.garbage_bytes", self.garbage_bytes);
        Ok(())
    }

    /// The full commit protocol for one atomic batch.
    fn commit(
        &mut self,
        puts: Vec<(String, Vec<u8>)>,
        deletes: Vec<String>,
    ) -> Result<(), BackendError> {
        if self.poisoned {
            return Err(DiskError::Poisoned.into());
        }
        // Deleting what was never there is a no-op, not a journal entry.
        let deletes: Vec<String> = deletes
            .into_iter()
            .filter(|n| self.index.contains_key(n) || puts.iter().any(|(p, _)| p == n))
            .collect();
        if puts.is_empty() && deletes.is_empty() {
            return Ok(());
        }
        let _span = nymix_obs::span!("journal_commit", "objects" => puts.len());
        let seq = self.applied_seq + 1;
        let ops: Vec<BatchOp<'_>> = puts
            .iter()
            .map(|(n, d)| BatchOp::Put(n, d))
            .chain(deletes.iter().map(|n| BatchOp::Delete(n)))
            .collect();
        let frame = journal::encode_batch(seq, &ops);
        drop(ops);
        nymix_obs::histogram!("disk.commit_bytes", frame.len());
        let res = (|| -> Result<(), DeviceError> {
            self.disk.write(FileId::Journal, BATCH_START, &frame)?;
            self.disk.fsync(FileId::Journal)?;
            Ok(())
        })();
        if let Err(e) = res {
            self.poisoned = true;
            return Err(DiskError::from(e).into());
        }
        if let Err(e) = self.apply_to_heap(seq, &puts, &deletes) {
            self.poisoned = true;
            return Err(DiskError::from(e).into());
        }
        nymix_obs::counter!("disk.commits", 1u64);
        Ok(())
    }

    /// Installs a fault plan on the underlying device (counted from the
    /// device's current operation index; see [`SimDisk::ops`]).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.disk.set_fault_plan(plan);
    }

    /// Materializes the post-crash device image under `mode` — what a
    /// reboot would find. Valid at any time, poisoned or not.
    pub fn crash(&self, mode: CrashMode) -> SimDisk {
        self.disk.crashed(mode)
    }

    /// Consumes the store, returning the device (all committed batches
    /// are already durable — the commit protocol never returns with
    /// unflushed writes).
    pub fn into_disk(self) -> SimDisk {
        self.disk
    }

    /// Borrows the underlying device (e.g. for stats or forensics).
    pub fn disk(&self) -> &SimDisk {
        &self.disk
    }

    /// Cumulative device I/O counters (input to the simulated-time disk
    /// model).
    pub fn device_stats(&self) -> DiskStats {
        *self.disk.stats()
    }

    /// RAM-tier effectiveness counters.
    pub fn tier_stats(&self) -> TierStats {
        self.tier.stats()
    }

    /// Resizes the RAM tier (0 disables caching).
    pub fn set_ram_budget(&mut self, bytes: usize) {
        self.tier.set_budget(bytes);
    }

    /// Last fully applied batch sequence number.
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq
    }

    /// Committed heap length in bytes.
    pub fn committed_heap_len(&self) -> u64 {
        self.heap_len
    }

    /// Heap bytes occupied by shadowed records and tombstones —
    /// reclaimable by a future compactor (tracked, not yet reclaimed).
    pub fn garbage_bytes(&self) -> u64 {
        self.garbage_bytes
    }

    /// Number of live objects.
    pub fn object_count(&self) -> usize {
        self.index.len()
    }

    /// Whether an earlier power loss poisoned this incarnation.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }
}

impl Default for DiskStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ObjectBackend for DiskStore {
    fn put(&mut self, name: &str, data: Vec<u8>) -> Result<(), BackendError> {
        self.commit(vec![(name.to_string(), data)], Vec::new())
    }

    /// Atomic per batch: after a crash at any point, either every
    /// object of the batch is present or none is (upgrade over the
    /// trait's default "a prefix may have landed" contract).
    fn put_many(&mut self, objects: Vec<(String, Vec<u8>)>) -> Result<(), BackendError> {
        self.commit(objects, Vec::new())
    }

    fn apply_batch(
        &mut self,
        puts: Vec<(String, Vec<u8>)>,
        deletes: Vec<String>,
    ) -> Result<(), BackendError> {
        self.commit(puts, deletes)
    }

    fn get(&mut self, name: &str) -> Result<Option<&[u8]>, BackendError> {
        if self.poisoned {
            return Err(DiskError::Poisoned.into());
        }
        let Some(loc) = self.index.get(name).copied() else {
            return Ok(None);
        };
        if self.tier.get(name).is_none() {
            // Miss (counted by the tier): fetch from media, then try to
            // make it resident for next time.
            nymix_obs::counter!("disk.tier_misses", 1u64);
            let mut buf = Vec::new();
            self.disk
                .read(FileId::Heap, loc.off as usize, loc.len as usize, &mut buf);
            self.tier.insert(name, buf.clone());
            self.read_buf = buf;
            if !self.tier.contains(name) {
                // Larger than the whole budget: serve uncached.
                return Ok(Some(&self.read_buf));
            }
        } else {
            nymix_obs::counter!("disk.tier_hits", 1u64);
        }
        Ok(self.tier.peek(name))
    }

    fn delete(&mut self, name: &str) -> Result<bool, BackendError> {
        if self.poisoned {
            return Err(DiskError::Poisoned.into());
        }
        if !self.index.contains_key(name) {
            return Ok(false);
        }
        self.commit(Vec::new(), vec![name.to_string()])?;
        Ok(true)
    }

    fn list(&mut self, out: &mut Vec<String>) -> Result<(), BackendError> {
        if self.poisoned {
            return Err(DiskError::Poisoned.into());
        }
        out.extend(self.index.keys().cloned());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contents(store: &mut DiskStore) -> BTreeMap<String, Vec<u8>> {
        let mut names = Vec::new();
        store.list(&mut names).unwrap();
        names
            .into_iter()
            .map(|n| {
                let d = store.get(&n).unwrap().expect("listed object").to_vec();
                (n, d)
            })
            .collect()
    }

    #[test]
    fn put_get_delete_round_trip() {
        let mut s = DiskStore::new();
        s.put("a", b"alpha".to_vec()).unwrap();
        s.put("b", b"beta".to_vec()).unwrap();
        assert_eq!(s.get("a").unwrap(), Some(&b"alpha"[..]));
        assert_eq!(s.get("missing").unwrap(), None);
        assert!(s.delete("a").unwrap());
        assert!(!s.delete("a").unwrap());
        assert_eq!(s.get("a").unwrap(), None);
        assert_eq!(s.object_count(), 1);
    }

    #[test]
    fn graceful_close_reopens_identically() {
        let mut s = DiskStore::new();
        s.put("x", vec![1; 100]).unwrap();
        s.put_many(vec![("y".into(), vec![2; 50]), ("x".into(), vec![3; 10])])
            .unwrap();
        let before = contents(&mut s);
        let mut reopened = DiskStore::open(s.into_disk()).unwrap();
        assert_eq!(contents(&mut reopened), before);
        assert_eq!(reopened.get("x").unwrap(), Some(&[3u8; 10][..]));
    }

    #[test]
    fn apply_batch_is_atomic_across_put_and_delete() {
        let mut s = DiskStore::new();
        s.put("old", b"retired".to_vec()).unwrap();
        s.apply_batch(
            vec![("new".into(), b"fresh".to_vec())],
            vec!["old".into(), "never-existed".into()],
        )
        .unwrap();
        assert_eq!(s.get("new").unwrap(), Some(&b"fresh"[..]));
        assert_eq!(s.get("old").unwrap(), None);
    }

    #[test]
    fn power_loss_poisons_until_reopen() {
        let mut s = DiskStore::new();
        s.put("a", b"1".to_vec()).unwrap();
        let ops = s.disk().ops();
        s.set_fault_plan(FaultPlan::kill_at_op(ops));
        assert!(s.put("b", b"2".to_vec()).is_err());
        assert!(s.is_poisoned());
        assert!(s.get("a").is_err());
        assert!(s.put("c", b"3".to_vec()).is_err());
        // Recovery path works.
        let mut r = DiskStore::open(s.crash(CrashMode::None)).unwrap();
        assert_eq!(r.get("a").unwrap(), Some(&b"1"[..]));
        assert_eq!(r.get("b").unwrap(), None);
    }

    #[test]
    fn interrupted_batch_never_half_applies() {
        // Kill at every op of a mixed batch, under every crash mode:
        // reopening must observe exactly pre- or post-batch contents.
        let build = || {
            let mut s = DiskStore::new();
            s.put("keep", b"kept".to_vec()).unwrap();
            s.put("victim", b"doomed".to_vec()).unwrap();
            s
        };
        let pre: BTreeMap<String, Vec<u8>> = {
            let mut s = build();
            contents(&mut s)
        };
        let post: BTreeMap<String, Vec<u8>> = {
            let mut s = build();
            s.apply_batch(
                vec![("added".into(), b"new".to_vec())],
                vec!["victim".into()],
            )
            .unwrap();
            contents(&mut s)
        };
        let mut seen_pre = false;
        let mut seen_post = false;
        for kill in 0u64.. {
            let mut s = build();
            let base_ops = s.disk().ops();
            s.set_fault_plan(FaultPlan::kill_at_op(base_ops + kill));
            let r = s.apply_batch(
                vec![("added".into(), b"new".to_vec())],
                vec!["victim".into()],
            );
            if r.is_ok() {
                // Past the last op of the batch: loop is exhausted.
                assert!(seen_pre && seen_post, "both outcomes must occur");
                break;
            }
            for mode in CrashMode::covering_set(s.disk().pending_writes(), 64) {
                let mut reopened =
                    DiskStore::open(s.crash(mode)).expect("crash recovery never fails");
                let got = contents(&mut reopened);
                if got == pre {
                    seen_pre = true;
                } else if got == post {
                    seen_post = true;
                } else {
                    panic!("kill {kill} {mode:?}: intermediate state {got:?}");
                }
            }
        }
    }

    #[test]
    fn recovery_is_idempotent() {
        let mut s = DiskStore::new();
        s.put("a", vec![9; 40]).unwrap();
        let ops = s.disk().ops();
        s.set_fault_plan(FaultPlan::kill_at_op(ops + 3));
        let _ = s.put_many(vec![("b".into(), vec![8; 30]), ("a".into(), vec![7; 20])]);
        let img = s.crash(CrashMode::JournalOnly);
        let mut once = DiskStore::open(img.clone()).unwrap();
        let mut twice = DiskStore::open(DiskStore::open(img).unwrap().into_disk()).unwrap();
        assert_eq!(contents(&mut once), contents(&mut twice));
    }

    #[test]
    fn bit_flip_in_superblocks_fails_closed() {
        let mut s = DiskStore::new();
        s.put("a", b"x".to_vec()).unwrap();
        let mut img = s.into_disk();
        // Destroy both slots.
        for bit in [8, 64 * 8 + 8] {
            img.corrupt_durable_bit(FileId::Journal, bit);
        }
        assert_eq!(
            DiskStore::open(img).err(),
            Some(DiskError::CorruptSuperblocks)
        );
    }

    #[test]
    fn bit_flip_in_committed_heap_fails_closed() {
        let mut s = DiskStore::new();
        s.put("a", vec![0x55; 64]).unwrap();
        let mut img = s.into_disk();
        img.corrupt_durable_bit(FileId::Heap, 300);
        assert!(matches!(
            DiskStore::open(img),
            Err(DiskError::CorruptHeap(_))
        ));
    }

    #[test]
    fn lru_tier_serves_hot_reads_without_media_io() {
        let mut s = DiskStore::new();
        s.put("hot", vec![1; 128]).unwrap();
        let reads_before = s.device_stats().reads;
        for _ in 0..5 {
            assert!(s.get("hot").unwrap().is_some());
        }
        // Write path primed the tier: all five reads were RAM hits.
        assert_eq!(s.device_stats().reads, reads_before);
        assert_eq!(s.tier_stats().hits, 5);

        // Cold store (fresh open, empty tier): first read hits media.
        let mut cold = DiskStore::open(s.into_disk()).unwrap();
        assert!(cold.get("hot").unwrap().is_some());
        assert_eq!(cold.device_stats().reads, 1);
        assert_eq!(cold.tier_stats().misses, 1);
        assert!(cold.get("hot").unwrap().is_some());
        assert_eq!(cold.device_stats().reads, 1, "second read served from RAM");
    }

    #[test]
    fn oversized_object_served_uncached() {
        let mut s = DiskStore::new();
        s.set_ram_budget(16);
        s.put("big", vec![7; 64]).unwrap();
        let mut cold = DiskStore::open(s.into_disk()).unwrap();
        cold.set_ram_budget(16);
        assert_eq!(cold.get("big").unwrap().map(|d| d.len()), Some(64));
        assert_eq!(cold.get("big").unwrap().map(|d| d.len()), Some(64));
        assert_eq!(cold.device_stats().reads, 2, "never cached");
    }

    #[test]
    fn garbage_tracking_counts_shadowed_records() {
        let mut s = DiskStore::new();
        s.put("k", vec![0; 100]).unwrap();
        assert_eq!(s.garbage_bytes(), 0);
        s.put("k", vec![1; 10]).unwrap();
        assert!(s.garbage_bytes() > 100);
        let reopened = DiskStore::open(s.into_disk()).unwrap();
        assert!(reopened.garbage_bytes() > 100, "scan re-derives garbage");
    }
}
