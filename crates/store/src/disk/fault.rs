//! Deterministic fault injection for the simulated disk.
//!
//! Two orthogonal knobs reproduce every crash scenario the journal must
//! survive:
//!
//! * **Where power dies** — [`FaultPlan`] names the exact operation
//!   index (write or fsync, in submission order) at which the device
//!   stops. An exhaustive loop over `0..ops_of_a_save` crashes a store
//!   at every boundary of the commit protocol.
//! * **What the write cache managed to persist** — [`CrashMode`] picks
//!   which queued-but-unflushed writes reached media: none, an ordered
//!   prefix, a prefix plus a *torn* final write, only one file's writes
//!   (reordering across files), or all of them. Any subset a real
//!   volatile cache could produce is covered by these shapes because
//!   recovery only ever depends on (a) whether the journal batch is
//!   intact and (b) whether heap bytes past the committed length are
//!   trustworthy — and they exercise all four combinations.
//!
//! Media corruption (bit rot, hostile edits) is a third, separate knob:
//! [`SimDisk::corrupt_durable_bit`](super::SimDisk::corrupt_durable_bit).

/// Deterministic kill schedule for a [`SimDisk`](super::SimDisk).
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultPlan {
    kill_at: Option<u64>,
}

impl FaultPlan {
    /// No injected faults.
    pub fn none() -> Self {
        Self { kill_at: None }
    }

    /// Cut power at operation index `op` (0-based over writes+fsyncs,
    /// counted from when the plan is installed on a fresh counter).
    pub fn kill_at_op(op: u64) -> Self {
        Self { kill_at: Some(op) }
    }

    /// Whether this plan kills the device at operation `op`.
    pub fn kills_at(&self, op: u64) -> bool {
        self.kill_at == Some(op)
    }
}

/// What the volatile write cache persisted at the instant of power
/// loss. Applied by [`SimDisk::crashed`](super::SimDisk::crashed) to
/// the queued (post-last-barrier) writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// Nothing unflushed reached media.
    None,
    /// The first `n` queued writes landed, in order.
    Prefix(usize),
    /// `landed` whole writes landed, then the next one landed only its
    /// first `torn_bytes` bytes — a torn sector.
    Torn {
        /// Whole queued writes that landed before the torn one.
        landed: usize,
        /// Bytes of the next write that reached media.
        torn_bytes: usize,
    },
    /// Only journal-file writes landed (the cache reordered the heap
    /// behind the journal).
    JournalOnly,
    /// Only heap-file writes landed (the cache reordered the journal
    /// behind the heap).
    HeapOnly,
    /// Every queued write landed (power died just short of the ack).
    All,
}

impl CrashMode {
    /// A canonical covering set of modes for a device with `pending`
    /// queued writes and a final write of `last_len` bytes: every
    /// whole-write prefix, torn variants of the final write, both
    /// single-file reorderings, and the all-landed case. Exhaustive
    /// crash loops iterate this.
    pub fn covering_set(pending: usize, last_len: usize) -> Vec<CrashMode> {
        let mut modes = vec![CrashMode::None];
        for n in 1..=pending {
            modes.push(CrashMode::Prefix(n));
        }
        if pending > 0 && last_len > 1 {
            for torn in [1, last_len / 2, last_len - 1] {
                modes.push(CrashMode::Torn {
                    landed: pending - 1,
                    torn_bytes: torn,
                });
            }
        }
        if pending > 1 {
            modes.push(CrashMode::JournalOnly);
            modes.push(CrashMode::HeapOnly);
        }
        modes.push(CrashMode::All);
        modes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_at_matches_only_its_op() {
        let p = FaultPlan::kill_at_op(3);
        assert!(!p.kills_at(2));
        assert!(p.kills_at(3));
        assert!(!p.kills_at(4));
        assert!(!FaultPlan::none().kills_at(0));
    }

    #[test]
    fn covering_set_shapes() {
        let modes = CrashMode::covering_set(3, 8);
        assert!(modes.contains(&CrashMode::None));
        assert!(modes.contains(&CrashMode::Prefix(3)));
        assert!(modes.contains(&CrashMode::Torn {
            landed: 2,
            torn_bytes: 7
        }));
        assert!(modes.contains(&CrashMode::JournalOnly));
        assert!(modes.contains(&CrashMode::All));
        // Degenerate queue still yields the trivial cases.
        let empty = CrashMode::covering_set(0, 0);
        assert_eq!(empty, vec![CrashMode::None, CrashMode::All]);
    }
}
