//! Bounded LRU RAM tier over the heap.
//!
//! The disk store keeps a byte-budgeted cache of recently read or
//! written objects so hot chunks (the working set of an active nym)
//! stay resident while cold epochs spill to disk. Eviction is strict
//! least-recently-used by a logical access tick — deterministic, no
//! wall clock. The tier is purely an accelerator: it is updated only
//! *after* a batch commits durably, so cache state never gets ahead of
//! the disk.

use std::collections::BTreeMap;

/// Cache effectiveness counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TierStats {
    /// Reads served from RAM.
    pub hits: u64,
    /// Reads that went to media.
    pub misses: u64,
    /// Objects evicted to honour the byte budget.
    pub evictions: u64,
    /// Bytes currently resident.
    pub resident_bytes: usize,
    /// Objects currently resident.
    pub resident_objects: usize,
}

#[derive(Debug)]
struct Entry {
    data: Vec<u8>,
    last_used: u64,
}

/// A byte-budgeted LRU cache of object payloads.
#[derive(Debug)]
pub struct LruTier {
    budget: usize,
    used: usize,
    tick: u64,
    entries: BTreeMap<String, Entry>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl LruTier {
    /// A tier holding at most `budget` payload bytes. A zero budget
    /// disables caching entirely (every read is a miss).
    pub fn new(budget: usize) -> Self {
        Self {
            budget,
            used: 0,
            tick: 0,
            entries: BTreeMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Current byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Changes the byte budget, evicting LRU entries if shrinking.
    pub fn set_budget(&mut self, budget: usize) {
        self.budget = budget;
        self.evict_to_budget();
    }

    /// Cache counters.
    pub fn stats(&self) -> TierStats {
        TierStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            resident_bytes: self.used,
            resident_objects: self.entries.len(),
        }
    }

    /// Looks up `name`, bumping its recency and the hit counter on
    /// success. A miss only bumps the miss counter — the caller fetches
    /// from media and calls [`LruTier::insert`].
    pub fn get(&mut self, name: &str) -> Option<&[u8]> {
        self.tick += 1;
        match self.entries.get_mut(name) {
            Some(e) => {
                e.last_used = self.tick;
                self.hits += 1;
                Some(&e.data)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Whether `name` is resident, without touching recency or
    /// counters.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Borrows `name`'s payload without touching recency or counters
    /// (used to hand out a reference right after [`LruTier::get`] /
    /// [`LruTier::insert`] already accounted for the access).
    pub fn peek(&self, name: &str) -> Option<&[u8]> {
        self.entries.get(name).map(|e| e.data.as_slice())
    }

    /// Inserts (or replaces) `name`, then evicts LRU entries until the
    /// budget holds. An object larger than the whole budget is not
    /// cached at all.
    pub fn insert(&mut self, name: &str, data: Vec<u8>) {
        self.remove(name);
        if data.len() > self.budget {
            return;
        }
        self.tick += 1;
        self.used += data.len();
        self.entries.insert(
            name.to_string(),
            Entry {
                data,
                last_used: self.tick,
            },
        );
        self.evict_to_budget();
    }

    /// Drops `name` from the cache (object deleted or overwritten).
    pub fn remove(&mut self, name: &str) {
        if let Some(e) = self.entries.remove(name) {
            self.used -= e.data.len();
        }
    }

    /// Drops everything (e.g. after attaching to a different disk).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.used = 0;
    }

    fn evict_to_budget(&mut self) {
        while self.used > self.budget {
            let victim = self
                .entries
                .iter()
                .min_by(|(an, ae), (bn, be)| ae.last_used.cmp(&be.last_used).then(an.cmp(bn)))
                .map(|(name, _)| name.clone());
            match victim {
                Some(name) => {
                    self.remove(&name);
                    self.evictions += 1;
                }
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used_first() {
        let mut t = LruTier::new(10);
        t.insert("a", vec![0; 4]);
        t.insert("b", vec![0; 4]);
        assert!(t.get("a").is_some()); // a is now more recent than b
        t.insert("c", vec![0; 4]); // over budget: evict b
        assert!(t.contains("a"));
        assert!(!t.contains("b"));
        assert!(t.contains("c"));
        assert_eq!(t.stats().evictions, 1);
    }

    #[test]
    fn oversized_objects_bypass_cache() {
        let mut t = LruTier::new(8);
        t.insert("big", vec![0; 9]);
        assert!(!t.contains("big"));
        assert_eq!(t.stats().resident_bytes, 0);
    }

    #[test]
    fn zero_budget_disables_caching() {
        let mut t = LruTier::new(0);
        t.insert("x", vec![1]);
        assert!(t.get("x").is_none());
        assert_eq!(t.stats().misses, 1);
    }

    #[test]
    fn replace_updates_usage() {
        let mut t = LruTier::new(10);
        t.insert("k", vec![0; 6]);
        t.insert("k", vec![0; 2]);
        assert_eq!(t.stats().resident_bytes, 2);
        assert_eq!(t.stats().resident_objects, 1);
        t.remove("k");
        assert_eq!(t.stats().resident_bytes, 0);
    }

    #[test]
    fn shrinking_budget_evicts() {
        let mut t = LruTier::new(100);
        for i in 0..5 {
            t.insert(&format!("o{i}"), vec![0; 10]);
        }
        t.set_budget(25);
        assert!(t.stats().resident_bytes <= 25);
        assert!(t.contains("o4")); // most recent survives
    }
}
