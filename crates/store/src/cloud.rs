//! Simulated cloud storage providers.
//!
//! §3.5: "By utilizing free-to-use cloud storage options, such as
//! DropBox or Google Drive, a user can create a pseudonymous cloud
//! account for each pseudonym. Because all interactions with the cloud
//! storage are anonymized, the cloud provider learns nothing about the
//! account owner."
//!
//! The provider model therefore records exactly what a real provider
//! would observe — account id, object name, blob bytes, and the *source
//! address of the connection* — so tests can check the deniability
//! claims: blobs are ciphertext, and the observed address is an
//! anonymizer exit, never the user.

use std::collections::{BTreeMap, VecDeque};

use nymix_net::Ip;
use nymix_sim::{SimDuration, SimTime};

use crate::backend::{BackendError, ObjectBackend};

/// Errors from provider operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CloudError {
    /// Unknown account.
    NoSuchAccount,
    /// Wrong account credential.
    BadCredential,
    /// Unknown object.
    NoSuchObject,
    /// The provider shed load on this write — transient; retry after a
    /// backoff may succeed.
    Throttled,
    /// The provider is down (a scheduled outage): every operation
    /// fails before authentication, and no quick retry helps. Maps to
    /// [`BackendError::Unavailable`], *not* `Transient` — sessions must
    /// not burn their backoff budget hammering a dead provider.
    Unavailable,
}

impl core::fmt::Display for CloudError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CloudError::NoSuchAccount => write!(f, "no such account"),
            CloudError::BadCredential => write!(f, "bad credential"),
            CloudError::NoSuchObject => write!(f, "no such object"),
            CloudError::Throttled => write!(f, "provider throttled the request"),
            CloudError::Unavailable => write!(f, "provider unavailable"),
        }
    }
}

/// A provider's scheduled availability / byzantine state, driven by
/// the simulation clock ([`CloudProvider::set_now`]). Exactly one mode
/// is active at a time; [`CloudProvider::heal`] returns to `Healthy`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
enum FaultMode {
    /// Normal operation.
    #[default]
    Healthy,
    /// Down hard: every operation fails [`CloudError::Unavailable`]
    /// until the deadline passes (or forever when `until` is `None`).
    Outage { until: Option<SimTime> },
    /// Persistently shedding write load: every put attempt fails
    /// [`CloudError::Throttled`] until healed (reads still work).
    Throttled,
    /// Byzantine: serves reads from a snapshot taken when the mode was
    /// armed — genuine, hash-valid, *old* bytes. Writes still land (and
    /// are observable once healed); reads just don't reflect them.
    ServeStale,
    /// Byzantine: serves deterministic garbage of the right length for
    /// every stored object.
    ServeGarbage,
}

impl std::error::Error for CloudError {}

/// One observed provider-side event (the provider's access log).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessLogEntry {
    /// Account the operation touched.
    pub account: String,
    /// Operation ("put", "get", "list", "login").
    pub op: &'static str,
    /// Object name, if applicable.
    pub object: Option<String>,
    /// Source address the provider observed.
    pub observed_ip: Ip,
    /// Blob size, if applicable.
    pub bytes: usize,
}

/// Default bound on retained access-log entries per provider.
pub const ACCESS_LOG_CAPACITY: usize = 4096;

/// A bounded, oldest-out ring of [`AccessLogEntry`] observations.
///
/// The unbounded `Vec` it replaces grew by one entry per provider
/// operation forever — a chunked save alone performs dozens of puts, so
/// a long-lived simulation leaked memory linearly in operation count.
/// Real providers rotate logs too; the ring models exactly that: the
/// newest [`AccessLog::capacity`] entries are retained for the
/// intersection-attack auditing views, older ones fall off the front,
/// and [`AccessLog::total_recorded`] still counts everything ever seen.
#[derive(Debug, Clone)]
pub struct AccessLog {
    entries: VecDeque<AccessLogEntry>,
    capacity: usize,
    /// Lifetime op tally, mirrored into the `cloud.ops` obs counter —
    /// the log's totals are a *view* over the same metric the fleet
    /// snapshot reports.
    total: nymix_obs::Meter,
    /// Entries rotated off the front, mirrored into `cloud.dropped`.
    dropped: nymix_obs::Meter,
}

impl AccessLog {
    fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "access log needs room for at least one entry");
        Self {
            entries: VecDeque::with_capacity(capacity.min(64)),
            capacity,
            total: nymix_obs::meter!("cloud.ops"),
            dropped: nymix_obs::meter!("cloud.dropped"),
        }
    }

    fn push(&mut self, entry: AccessLogEntry) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped.add(1);
        }
        self.entries.push_back(entry);
        self.total.add(1);
    }

    /// Entries currently retained.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The ring's fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Operations ever recorded, including ones the ring dropped.
    pub fn total_recorded(&self) -> u64 {
        self.total.get()
    }

    /// Entries dropped off the front of the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Iterates retained entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &AccessLogEntry> {
        self.entries.iter()
    }
}

impl<'a> IntoIterator for &'a AccessLog {
    type Item = &'a AccessLogEntry;
    type IntoIter = std::collections::vec_deque::Iter<'a, AccessLogEntry>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[derive(Debug, Clone)]
struct Account {
    credential: String,
    objects: BTreeMap<String, Vec<u8>>,
}

/// A cloud storage provider.
///
/// # Examples
///
/// ```
/// use nymix_store::CloudProvider;
/// use nymix_net::Ip;
///
/// let mut dropbox = CloudProvider::new("dropbox");
/// dropbox.create_account("anon4711", "token");
/// let exit = Ip::parse("198.18.0.5"); // a Tor exit, not the user
/// dropbox.put("anon4711", "token", "nym.bin", vec![1, 2, 3], exit).unwrap();
/// assert_eq!(dropbox.get("anon4711", "token", "nym.bin", exit).unwrap(), vec![1, 2, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct CloudProvider {
    name: String,
    accounts: BTreeMap<String, Account>,
    log: AccessLog,
    /// Deterministic fault injection: the next N write attempts are
    /// throttled ([`CloudError::Throttled`]) before landing.
    transient_put_faults: u32,
    /// Write attempts to let through before the injected faults fire
    /// (puts a fault window mid-batch).
    transient_put_skip: u32,
    /// The provider's view of simulated time, for scheduled faults.
    now: SimTime,
    fault: FaultMode,
    /// Per-account object snapshots taken when [`FaultMode::ServeStale`]
    /// was armed.
    stale_snapshot: BTreeMap<String, BTreeMap<String, Vec<u8>>>,
    /// Scratch for byzantine garbage reads (borrowed returns).
    garbage_buf: Vec<u8>,
}

impl CloudProvider {
    /// A provider with no accounts, retaining up to
    /// [`ACCESS_LOG_CAPACITY`] access-log entries.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            accounts: BTreeMap::new(),
            log: AccessLog::new(ACCESS_LOG_CAPACITY),
            transient_put_faults: 0,
            transient_put_skip: 0,
            now: SimTime::ZERO,
            fault: FaultMode::Healthy,
            stale_snapshot: BTreeMap::new(),
            garbage_buf: Vec::new(),
        }
    }

    /// Arms deterministic write-fault injection: the next `n` put
    /// attempts (single or batched) fail with [`CloudError::Throttled`]
    /// before any byte lands, then the provider behaves normally again.
    /// Tests use this to drive the session retry path.
    pub fn inject_transient_put_failures(&mut self, n: u32) {
        self.inject_transient_put_failures_after(0, n);
    }

    /// [`CloudProvider::inject_transient_put_failures`], but the first
    /// `skip` put attempts succeed before the `n` throttled ones fire —
    /// the window lands mid-batch, which is what the resume-from-
    /// failed-index regression tests need.
    pub fn inject_transient_put_failures_after(&mut self, skip: u32, n: u32) {
        self.transient_put_skip = skip;
        self.transient_put_faults = n;
    }

    /// Advances the provider's fault clock (scheduled outages expire
    /// against this).
    pub fn set_now(&mut self, now: SimTime) {
        self.now = now;
    }

    /// The provider's current fault-clock reading.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules an outage: every operation fails
    /// [`CloudError::Unavailable`] until the provider's clock
    /// ([`CloudProvider::set_now`]) passes `now + duration`.
    pub fn outage_for(&mut self, duration: SimDuration) {
        self.fault = FaultMode::Outage {
            until: Some(self.now + duration),
        };
    }

    /// Takes the provider down until [`CloudProvider::heal`].
    pub fn outage(&mut self) {
        self.fault = FaultMode::Outage { until: None };
    }

    /// Persistently throttles every write until [`CloudProvider::heal`]
    /// (reads still served) — sessions exhaust their retry budget
    /// against this.
    pub fn throttle(&mut self) {
        self.fault = FaultMode::Throttled;
    }

    /// Arms byzantine stale serving: reads (and listings) answer from a
    /// snapshot of every account's objects taken *now*. The bytes are
    /// genuine and hash-valid — just old. Writes keep landing on the
    /// live store.
    pub fn serve_stale(&mut self) {
        self.stale_snapshot = self
            .accounts
            .iter()
            .map(|(name, acct)| (name.clone(), acct.objects.clone()))
            .collect();
        self.fault = FaultMode::ServeStale;
    }

    /// Arms byzantine garbage serving: every read answers
    /// deterministic wrong bytes of the stored object's length.
    pub fn serve_garbage(&mut self) {
        self.fault = FaultMode::ServeGarbage;
    }

    /// Clears every scheduled/byzantine fault mode.
    pub fn heal(&mut self) {
        self.fault = FaultMode::Healthy;
        self.stale_snapshot.clear();
    }

    /// Whether the provider is currently down (outage scheduled and
    /// not yet expired).
    pub fn is_down(&self) -> bool {
        match self.fault {
            FaultMode::Outage { until } => until.is_none_or(|t| self.now < t),
            _ => false,
        }
    }

    /// Injected write faults not yet consumed.
    pub fn pending_transient_put_failures(&self) -> u32 {
        self.transient_put_faults
    }

    /// Overrides the access-log retention bound.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_log_capacity(mut self, capacity: usize) -> Self {
        self.log = AccessLog::new(capacity);
        self
    }

    /// Provider name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Registers a (pseudonymous) account.
    pub fn create_account(&mut self, account: &str, credential: &str) {
        self.accounts.insert(
            account.to_string(),
            Account {
                credential: credential.to_string(),
                objects: BTreeMap::new(),
            },
        );
    }

    fn auth(&self, account: &str, credential: &str) -> Result<(), CloudError> {
        nymix_obs::counter!("cloud.auth", 1u64);
        // An unreachable provider fails before it can even check
        // credentials — outages gate every operation here.
        if self.is_down() {
            return Err(CloudError::Unavailable);
        }
        let acct = self
            .accounts
            .get(account)
            .ok_or(CloudError::NoSuchAccount)?;
        if acct.credential != credential {
            return Err(CloudError::BadCredential);
        }
        Ok(())
    }

    /// The post-auth read path both the explicit [`CloudProvider::get`]
    /// and the session backend serve through, so byzantine modes can
    /// never diverge between them: healthy reads answer the live
    /// object, [`FaultMode::ServeStale`] answers the armed snapshot,
    /// [`FaultMode::ServeGarbage`] answers deterministic wrong bytes of
    /// the right length.
    fn serve_read(&mut self, account: &str, object: &str) -> Option<&[u8]> {
        match self.fault {
            FaultMode::ServeStale => self
                .stale_snapshot
                .get(account)
                .and_then(|objects| objects.get(object))
                .map(Vec::as_slice),
            FaultMode::ServeGarbage => {
                let len = self.accounts.get(account)?.objects.get(object)?.len();
                self.garbage_buf = garbage_bytes(&self.name, object, len);
                Some(&self.garbage_buf)
            }
            _ => self
                .accounts
                .get(account)?
                .objects
                .get(object)
                .map(Vec::as_slice),
        }
    }

    /// Stores an object.
    pub fn put(
        &mut self,
        account: &str,
        credential: &str,
        object: &str,
        data: Vec<u8>,
        observed_ip: Ip,
    ) -> Result<(), CloudError> {
        self.auth(account, credential)?;
        self.put_authed(account, object.to_string(), data, observed_ip)
    }

    /// The post-auth half of every write — single puts and batches
    /// both land (and are access-logged) through here, so the two
    /// paths can never diverge. Fails with [`CloudError::Throttled`]
    /// while injected transient faults remain (after the configured
    /// skip window), or unconditionally under a persistent
    /// [`FaultMode::Throttled`]; a throttled write lands nothing and
    /// logs nothing (the provider dropped it at the door).
    fn put_authed(
        &mut self,
        account: &str,
        object: String,
        data: Vec<u8>,
        observed_ip: Ip,
    ) -> Result<(), CloudError> {
        if self.transient_put_skip > 0 {
            self.transient_put_skip -= 1;
        } else if self.transient_put_faults > 0 {
            self.transient_put_faults -= 1;
            return Err(CloudError::Throttled);
        }
        if self.fault == FaultMode::Throttled {
            return Err(CloudError::Throttled);
        }
        let bytes = data.len();
        self.accounts
            .get_mut(account)
            .expect("authenticated by caller")
            .objects
            .insert(object.clone(), data);
        self.log.push(AccessLogEntry {
            account: account.to_string(),
            op: "put",
            object: Some(object),
            observed_ip,
            bytes,
        });
        nymix_obs::counter!("cloud.puts", 1u64);
        nymix_obs::histogram!("cloud.put_bytes", bytes);
        Ok(())
    }

    /// Retrieves an object.
    pub fn get(
        &mut self,
        account: &str,
        credential: &str,
        object: &str,
        observed_ip: Ip,
    ) -> Result<Vec<u8>, CloudError> {
        self.auth(account, credential)?;
        let data = self
            .serve_read(account, object)
            .map(<[u8]>::to_vec)
            .ok_or(CloudError::NoSuchObject)?;
        self.log.push(AccessLogEntry {
            account: account.to_string(),
            op: "get",
            object: Some(object.to_string()),
            observed_ip,
            bytes: data.len(),
        });
        nymix_obs::counter!("cloud.gets", 1u64);
        Ok(data)
    }

    /// Lists an account's object names (from the armed snapshot while
    /// serving stale — a byzantine provider's listing is as old as its
    /// reads).
    pub fn list(
        &mut self,
        account: &str,
        credential: &str,
        observed_ip: Ip,
    ) -> Result<Vec<String>, CloudError> {
        self.auth(account, credential)?;
        self.log.push(AccessLogEntry {
            account: account.to_string(),
            op: "list",
            object: None,
            observed_ip,
            bytes: 0,
        });
        if self.fault == FaultMode::ServeStale {
            return Ok(self
                .stale_snapshot
                .get(account)
                .map(|objects| objects.keys().cloned().collect())
                .unwrap_or_default());
        }
        Ok(self
            .accounts
            .get(account)
            .expect("authenticated above")
            .objects
            .keys()
            .cloned()
            .collect())
    }

    /// Deletes an object.
    pub fn delete(
        &mut self,
        account: &str,
        credential: &str,
        object: &str,
        observed_ip: Ip,
    ) -> Result<(), CloudError> {
        self.auth(account, credential)?;
        self.accounts
            .get_mut(account)
            .expect("authenticated above")
            .objects
            .remove(object)
            .ok_or(CloudError::NoSuchObject)?;
        self.log.push(AccessLogEntry {
            account: account.to_string(),
            op: "delete",
            object: Some(object.to_string()),
            observed_ip,
            bytes: 0,
        });
        Ok(())
    }

    /// The provider's access log (the adversary's subpoena view): the
    /// newest [`AccessLog::capacity`] operations, oldest first.
    pub fn access_log(&self) -> &AccessLog {
        &self.log
    }

    /// Opens an authenticated [`ObjectBackend`] session on `account`:
    /// every operation is checked against `credential` and logged with
    /// `observed_ip` (the connection's source as the provider sees it —
    /// an anonymizer exit, never the user, if the caller did their job).
    pub fn session<'p>(
        &'p mut self,
        account: &str,
        credential: &str,
        observed_ip: Ip,
    ) -> CloudSession<'p> {
        CloudSession {
            provider: self,
            account: account.to_string(),
            credential: credential.to_string(),
            observed_ip,
            retry_max: DEFAULT_RETRY_MAX,
            retry_base: DEFAULT_RETRY_BASE,
            backoff_accrued: nymix_obs::meter!("cloud.backoff_us"),
        }
    }

    /// Stored size of an object, if present.
    pub fn object_size(&self, account: &str, object: &str) -> Option<usize> {
        self.accounts
            .get(account)?
            .objects
            .get(object)
            .map(Vec::len)
    }

    /// Everything the provider could hand an adversary about `account`:
    /// the raw blobs. (Deniability analysis: are they distinguishable
    /// from random?)
    pub fn subpoena(&self, account: &str) -> Vec<(&str, &[u8])> {
        self.accounts
            .get(account)
            .map(|a| {
                a.objects
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.as_slice()))
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// An authenticated pseudonymous-account session presenting a cloud
/// provider as a flat [`ObjectBackend`] namespace. Holds the account,
/// credential, and the source address the provider will observe; every
/// operation is auth-checked and access-logged exactly like the
/// explicit [`CloudProvider`] methods.
///
/// # Examples
///
/// ```
/// use nymix_store::{CloudProvider, ObjectBackend};
/// use nymix_net::Ip;
///
/// let mut drive = CloudProvider::new("drive");
/// drive.create_account("anon", "tok");
/// let exit = Ip::parse("198.18.0.5");
/// let mut session = drive.session("anon", "tok", exit);
/// session.put("nym.bin", vec![1, 2, 3]).unwrap();
/// assert_eq!(session.get("nym.bin").unwrap(), Some(&[1u8, 2, 3][..]));
/// ```
#[derive(Debug)]
pub struct CloudSession<'p> {
    provider: &'p mut CloudProvider,
    account: String,
    credential: String,
    observed_ip: Ip,
    /// Retries allowed per write after the first attempt.
    retry_max: u32,
    /// Backoff before the first retry; doubles each further retry.
    retry_base: SimDuration,
    /// Total simulated backoff this session has waited, in
    /// microseconds, mirrored into the `cloud.backoff_us` obs counter.
    /// The nym manager adds it to the save's modeled duration so
    /// retries cost simulated time, deterministically.
    backoff_accrued: nymix_obs::Meter,
}

/// Default retries per write after the first attempt.
pub const DEFAULT_RETRY_MAX: u32 = 3;

/// Default first-retry backoff (doubles per further retry).
pub const DEFAULT_RETRY_BASE: SimDuration = SimDuration(500_000);

fn denied(e: CloudError) -> BackendError {
    match e {
        CloudError::NoSuchAccount | CloudError::BadCredential => BackendError::Denied,
        CloudError::Throttled => BackendError::Transient(e.to_string()),
        CloudError::Unavailable => BackendError::Unavailable(e.to_string()),
        CloudError::NoSuchObject => BackendError::Other(e.to_string()),
    }
}

/// Deterministic wrong bytes for [`FaultMode::ServeGarbage`]: seeded
/// by provider and object name so repeated byzantine reads are
/// reproducible, and never equal to any plausible stored blob.
fn garbage_bytes(provider: &str, object: &str, len: usize) -> Vec<u8> {
    let mut x = 0x9e3779b97f4a7c15u64 ^ (len as u64).wrapping_mul(0xff51afd7ed558ccd);
    for &b in provider.as_bytes().iter().chain(object.as_bytes()) {
        x = (x ^ u64::from(b)).wrapping_mul(0x100000001b3);
    }
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        out.extend_from_slice(&x.to_le_bytes());
    }
    out.truncate(len);
    out
}

impl CloudSession<'_> {
    /// Overrides the retry policy: up to `retries` retries per write,
    /// starting at `base` backoff and doubling each time. Zero retries
    /// restores the old fail-on-first-error behaviour.
    pub fn with_retry_policy(mut self, retries: u32, base: SimDuration) -> Self {
        self.retry_max = retries;
        self.retry_base = base;
        self
    }

    /// Total simulated backoff accrued by retried writes so far.
    pub fn accrued_backoff(&self) -> SimDuration {
        SimDuration(self.backoff_accrued.get())
    }

    /// Resets the accrued-backoff accumulator (after the caller has
    /// charged it to the clock). The `cloud.backoff_us` obs mirror is
    /// monotonic and unaffected.
    pub fn take_accrued_backoff(&mut self) -> SimDuration {
        SimDuration(self.backoff_accrued.take())
    }

    /// One write with bounded deterministic exponential-backoff retry.
    /// Only [`BackendError::Transient`] failures are retried — a
    /// permanent error (notably [`BackendError::Denied`]) fails closed
    /// immediately, because re-presenting refused credentials is both
    /// useless and the exact traffic signature an observing adversary
    /// wants. Puts are idempotent overwrites, so a retry after an
    /// ambiguous failure cannot corrupt state.
    fn put_with_retry(&mut self, name: &str, data: Vec<u8>) -> Result<(), BackendError> {
        let mut backoff = self.retry_base;
        let mut slot = Some(data);
        for attempt in 0..=self.retry_max {
            // Keep a copy only while further retries are possible.
            let payload = if attempt < self.retry_max {
                slot.clone().expect("payload present until final attempt")
            } else {
                slot.take().expect("payload present until final attempt")
            };
            match self.provider.put_authed(
                &self.account,
                name.to_string(),
                payload,
                self.observed_ip,
            ) {
                Ok(()) => return Ok(()),
                Err(e) => {
                    let be = denied(e);
                    if !be.is_transient() || attempt == self.retry_max {
                        return Err(be);
                    }
                    self.backoff_accrued.add(backoff.0);
                    backoff = backoff.saturating_add(backoff);
                }
            }
        }
        unreachable!("loop returns on success or final failure")
    }
}

impl ObjectBackend for CloudSession<'_> {
    fn put(&mut self, name: &str, data: Vec<u8>) -> Result<(), BackendError> {
        self.provider
            .auth(&self.account, &self.credential)
            .map_err(denied)?;
        self.put_with_retry(name, data)
    }

    fn put_many(&mut self, objects: Vec<(String, Vec<u8>)>) -> Result<(), BackendError> {
        // One credential check covers the whole batch — the round-trip
        // amortization a fleet save is after — while the provider still
        // observes (and logs) every object it receives.
        self.provider
            .auth(&self.account, &self.credential)
            .map_err(denied)?;
        // Resume from the failed index: `next` advances only on
        // success, a transient failure retries the *current* object
        // after backoff, and objects before `next` are never re-sent —
        // the landed prefix (trait contract) is uploaded and
        // access-logged exactly once however many retries follow it.
        // The retry budget refills on progress, so a batch tolerates
        // a throttle blip per object, not one blip total.
        let mut objects = objects;
        let mut next = 0usize;
        let mut retries_left = self.retry_max;
        let mut backoff = self.retry_base;
        while next < objects.len() {
            let (name, data) = &mut objects[next];
            // Keep a copy only while further retries are possible.
            let payload = if retries_left > 0 {
                data.clone()
            } else {
                std::mem::take(data)
            };
            match self
                .provider
                .put_authed(&self.account, name.clone(), payload, self.observed_ip)
            {
                Ok(()) => {
                    next += 1;
                    retries_left = self.retry_max;
                    backoff = self.retry_base;
                }
                Err(e) => {
                    let be = denied(e);
                    if !be.is_transient() || retries_left == 0 {
                        return Err(be);
                    }
                    retries_left -= 1;
                    self.backoff_accrued.add(backoff.0);
                    backoff = backoff.saturating_add(backoff);
                }
            }
        }
        Ok(())
    }

    fn get(&mut self, name: &str) -> Result<Option<&[u8]>, BackendError> {
        self.provider
            .auth(&self.account, &self.credential)
            .map_err(denied)?;
        let Some(bytes) = self
            .provider
            .serve_read(&self.account, name)
            .map(<[u8]>::len)
        else {
            return Ok(None);
        };
        self.provider.log.push(AccessLogEntry {
            account: self.account.clone(),
            op: "get",
            object: Some(name.to_string()),
            observed_ip: self.observed_ip,
            bytes,
        });
        nymix_obs::counter!("cloud.gets", 1u64);
        // Re-serve for the borrowed return value (the log push above
        // needed the mutable half of the provider).
        Ok(self.provider.serve_read(&self.account, name))
    }

    fn delete(&mut self, name: &str) -> Result<bool, BackendError> {
        match self
            .provider
            .delete(&self.account, &self.credential, name, self.observed_ip)
        {
            Ok(()) => Ok(true),
            Err(CloudError::NoSuchObject) => Ok(false),
            Err(e) => Err(denied(e)),
        }
    }

    fn list(&mut self, out: &mut Vec<String>) -> Result<(), BackendError> {
        out.extend(
            self.provider
                .list(&self.account, &self.credential, self.observed_ip)
                .map_err(denied)?,
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exit() -> Ip {
        Ip::parse("198.18.0.7")
    }

    #[test]
    fn put_get_list_delete() {
        let mut p = CloudProvider::new("drive");
        p.create_account("a1", "c1");
        p.put("a1", "c1", "o1", vec![1, 2], exit()).unwrap();
        p.put("a1", "c1", "o2", vec![3], exit()).unwrap();
        assert_eq!(p.get("a1", "c1", "o1", exit()).unwrap(), vec![1, 2]);
        assert_eq!(p.list("a1", "c1", exit()).unwrap(), vec!["o1", "o2"]);
        assert_eq!(p.object_size("a1", "o2"), Some(1));
        p.delete("a1", "c1", "o2", exit()).unwrap();
        assert_eq!(
            p.get("a1", "c1", "o2", exit()),
            Err(CloudError::NoSuchObject)
        );
    }

    #[test]
    fn auth_enforced() {
        let mut p = CloudProvider::new("drive");
        p.create_account("a1", "c1");
        assert_eq!(
            p.put("a1", "wrong", "o", vec![], exit()),
            Err(CloudError::BadCredential)
        );
        assert_eq!(
            p.get("nobody", "c", "o", exit()),
            Err(CloudError::NoSuchAccount)
        );
    }

    #[test]
    fn access_log_records_observed_ip_only() {
        let mut p = CloudProvider::new("drive");
        p.create_account("anon", "c");
        let user_ip = Ip::parse("203.0.113.9");
        let tor_exit = Ip::parse("198.18.0.40");
        p.put("anon", "c", "nym.bin", vec![0; 64], tor_exit)
            .unwrap();
        p.get("anon", "c", "nym.bin", tor_exit).unwrap();
        // The provider's log contains only the exit address.
        assert_eq!(p.access_log().len(), 2);
        for entry in p.access_log() {
            assert_eq!(entry.observed_ip, tor_exit);
            assert_ne!(entry.observed_ip, user_ip);
        }
    }

    #[test]
    fn access_log_is_bounded_ring() {
        // Regression: the log grew without limit — one entry per
        // operation, forever. The ring keeps the newest `capacity`
        // entries and still counts the total.
        let mut p = CloudProvider::new("drive").with_log_capacity(8);
        p.create_account("a", "c");
        for i in 0..20 {
            p.put("a", "c", &format!("o{i}"), vec![0; 4], exit())
                .unwrap();
        }
        let log = p.access_log();
        assert_eq!(log.len(), 8);
        assert_eq!(log.capacity(), 8);
        assert_eq!(log.total_recorded(), 20);
        assert_eq!(log.dropped(), 12);
        // Oldest retained entry is op 12; newest is op 19.
        assert_eq!(log.iter().next().unwrap().object.as_deref(), Some("o12"));
        assert_eq!(log.iter().last().unwrap().object.as_deref(), Some("o19"));
        // The intersection-auditing view still iterates.
        assert!(log.into_iter().all(|e| e.observed_ip == exit()));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_log_capacity_rejected() {
        let _ = CloudProvider::new("drive").with_log_capacity(0);
    }

    #[test]
    fn session_backend_auths_and_logs() {
        let mut p = CloudProvider::new("drive");
        p.create_account("anon", "tok");
        {
            let mut s = p.session("anon", "tok", exit());
            s.put("x", vec![1, 2, 3]).unwrap();
            assert_eq!(s.get("x").unwrap(), Some(&[1u8, 2, 3][..]));
            assert_eq!(s.get("ghost").unwrap(), None);
            let mut names = Vec::new();
            s.list(&mut names).unwrap();
            assert_eq!(names, vec!["x"]);
            assert!(s.delete("x").unwrap());
            assert!(!s.delete("x").unwrap());
        }
        // put + get + list + one successful delete were logged with the
        // session's observed address (missing-object probes don't log).
        assert_eq!(p.access_log().len(), 4);
        assert!(p.access_log().iter().all(|e| e.observed_ip == exit()));

        // Bad credentials are denied on every operation.
        let mut s = p.session("anon", "wrong", exit());
        assert_eq!(s.put("x", vec![]), Err(BackendError::Denied));
        assert_eq!(s.get("x"), Err(BackendError::Denied));
        assert_eq!(s.delete("x"), Err(BackendError::Denied));
        let mut names = Vec::new();
        assert_eq!(s.list(&mut names), Err(BackendError::Denied));
    }

    #[test]
    fn put_many_logs_each_object_and_auths_once_per_batch() {
        let mut p = CloudProvider::new("drive");
        p.create_account("anon", "tok");
        {
            let mut s = p.session("anon", "tok", exit());
            s.put_many(vec![
                ("a".to_string(), vec![1]),
                ("b".to_string(), vec![2, 3]),
                ("a".to_string(), vec![9; 4]), // later duplicate wins
            ])
            .unwrap();
            assert_eq!(s.get("a").unwrap(), Some(&[9u8; 4][..]));
            assert_eq!(s.get("b").unwrap(), Some(&[2u8, 3][..]));
        }
        // The provider observed every object of the batch.
        let puts: Vec<_> = p.access_log().iter().filter(|e| e.op == "put").collect();
        assert_eq!(puts.len(), 3);
        assert!(puts.iter().all(|e| e.observed_ip == exit()));

        let mut s = p.session("anon", "wrong", exit());
        assert_eq!(
            s.put_many(vec![("x".to_string(), vec![])]),
            Err(BackendError::Denied)
        );
    }

    #[test]
    fn transient_faults_are_retried_with_backoff() {
        let mut p = CloudProvider::new("drive");
        p.create_account("anon", "tok");
        p.inject_transient_put_failures(2);
        let mut s = p.session("anon", "tok", exit());
        s.put("x", vec![1, 2, 3]).unwrap();
        assert_eq!(s.get("x").unwrap(), Some(&[1u8, 2, 3][..]));
        // Two failed attempts → backoff base + 2*base accrued.
        assert_eq!(s.accrued_backoff(), SimDuration(3 * DEFAULT_RETRY_BASE.0),);
        assert_eq!(
            s.take_accrued_backoff(),
            SimDuration(3 * DEFAULT_RETRY_BASE.0)
        );
        assert_eq!(s.accrued_backoff(), SimDuration::ZERO);
        drop(s);
        assert_eq!(p.pending_transient_put_failures(), 0);
    }

    #[test]
    fn exhausted_retries_fail_with_transient_error() {
        let mut p = CloudProvider::new("drive");
        p.create_account("anon", "tok");
        // More faults than 1 + DEFAULT_RETRY_MAX attempts can absorb.
        p.inject_transient_put_failures(1 + DEFAULT_RETRY_MAX + 1);
        let mut s = p.session("anon", "tok", exit());
        let err = s.put("x", vec![1]).unwrap_err();
        assert!(err.is_transient(), "got {err:?}");
        assert_eq!(s.get("x").unwrap(), None, "nothing landed");
    }

    #[test]
    fn put_many_retries_per_object_and_later_objects_still_land() {
        let mut p = CloudProvider::new("drive");
        p.create_account("anon", "tok");
        // First object's first attempt throttled; its retry and the
        // second object succeed.
        p.inject_transient_put_failures(1);
        let mut s = p.session("anon", "tok", exit());
        s.put_many(vec![("a".into(), vec![1]), ("b".into(), vec![2])])
            .unwrap();
        assert_eq!(s.get("a").unwrap(), Some(&[1u8][..]));
        assert_eq!(s.get("b").unwrap(), Some(&[2u8][..]));
        assert_eq!(s.accrued_backoff(), DEFAULT_RETRY_BASE);
    }

    #[test]
    fn permanent_errors_fail_closed_without_retry() {
        let mut p = CloudProvider::new("drive");
        p.create_account("anon", "tok");
        p.inject_transient_put_failures(0);
        let mut s = p.session("anon", "wrong", exit());
        assert_eq!(s.put("x", vec![1]), Err(BackendError::Denied));
        // No backoff was spent hammering refused credentials.
        assert_eq!(s.accrued_backoff(), SimDuration::ZERO);
    }

    #[test]
    fn zero_retry_policy_restores_fail_fast() {
        let mut p = CloudProvider::new("drive");
        p.create_account("anon", "tok");
        p.inject_transient_put_failures(1);
        let mut s = p
            .session("anon", "tok", exit())
            .with_retry_policy(0, SimDuration::ZERO);
        assert!(s.put("x", vec![1]).unwrap_err().is_transient());
        assert_eq!(s.accrued_backoff(), SimDuration::ZERO);
        // The injected fault was consumed; the next write lands.
        s.put("x", vec![2]).unwrap();
    }

    #[test]
    fn put_many_resumes_from_failed_index_without_resending_prefix() {
        // Regression for the batch-resume contract: a transient fault
        // in the *middle* of a batch must retry only the failed
        // object. Each object is uploaded — and access-logged — at
        // most once per successful batch.
        let mut p = CloudProvider::new("drive");
        p.create_account("anon", "tok");
        // "a" lands, "b"'s first attempt is throttled, its retry and
        // "c" succeed.
        p.inject_transient_put_failures_after(1, 1);
        {
            let mut s = p.session("anon", "tok", exit());
            s.put_many(vec![
                ("a".into(), vec![1]),
                ("b".into(), vec![2]),
                ("c".into(), vec![3]),
            ])
            .unwrap();
            assert_eq!(s.get("a").unwrap(), Some(&[1u8][..]));
            assert_eq!(s.get("b").unwrap(), Some(&[2u8][..]));
            assert_eq!(s.get("c").unwrap(), Some(&[3u8][..]));
            // Exactly one retry of one object: one base backoff.
            assert_eq!(s.accrued_backoff(), DEFAULT_RETRY_BASE);
        }
        let puts: Vec<_> = p
            .access_log()
            .iter()
            .filter(|e| e.op == "put")
            .map(|e| e.object.as_deref().unwrap().to_string())
            .collect();
        // The landed prefix ["a"] was never re-sent: one logged put
        // per object, in batch order.
        assert_eq!(puts, vec!["a", "b", "c"]);
    }

    #[test]
    fn outage_gates_every_operation_until_the_deadline() {
        let mut p = CloudProvider::new("drive");
        p.create_account("anon", "tok");
        p.put("anon", "tok", "x", vec![7], exit()).unwrap();
        p.outage_for(SimDuration::from_secs(60));
        assert!(p.is_down());
        {
            let mut s = p.session("anon", "tok", exit());
            assert!(matches!(s.get("x"), Err(BackendError::Unavailable(_))));
            assert!(matches!(
                s.put("y", vec![1]),
                Err(BackendError::Unavailable(_))
            ));
            assert!(matches!(s.delete("x"), Err(BackendError::Unavailable(_))));
            let mut names = Vec::new();
            assert!(matches!(
                s.list(&mut names),
                Err(BackendError::Unavailable(_))
            ));
            // No backoff burned hammering a dead provider: an outage
            // is not a Transient blip.
            assert_eq!(s.accrued_backoff(), SimDuration::ZERO);
        }
        // The sim clock reaches the deadline — the provider is back,
        // state intact.
        p.set_now(SimTime::ZERO + SimDuration::from_secs(60));
        assert!(!p.is_down());
        let mut s = p.session("anon", "tok", exit());
        assert_eq!(s.get("x").unwrap(), Some(&[7u8][..]));
    }

    #[test]
    fn indefinite_outage_holds_until_healed() {
        let mut p = CloudProvider::new("drive");
        p.create_account("anon", "tok");
        p.outage();
        p.set_now(SimTime(u64::MAX / 2));
        assert!(p.is_down());
        assert_eq!(
            p.get("anon", "tok", "x", exit()),
            Err(CloudError::Unavailable)
        );
        p.heal();
        assert!(!p.is_down());
        assert_eq!(
            p.get("anon", "tok", "x", exit()),
            Err(CloudError::NoSuchObject)
        );
    }

    #[test]
    fn throttled_provider_rejects_writes_but_serves_reads() {
        let mut p = CloudProvider::new("drive");
        p.create_account("anon", "tok");
        p.put("anon", "tok", "x", vec![7], exit()).unwrap();
        p.throttle();
        let mut s = p.session("anon", "tok", exit());
        // Persistent throttling outlasts the whole retry budget.
        let err = s.put("y", vec![1]).unwrap_err();
        assert!(err.is_transient(), "got {err:?}");
        // base + 2·base + 4·base accrued across the three retries.
        assert_eq!(s.accrued_backoff(), SimDuration(7 * DEFAULT_RETRY_BASE.0));
        // Reads are unaffected — a throttle is a write-side fault.
        assert_eq!(s.get("x").unwrap(), Some(&[7u8][..]));
        assert_eq!(s.get("y").unwrap(), None, "throttled write landed nothing");
        drop(s);
        p.heal();
        let mut s = p.session("anon", "tok", exit());
        s.put("y", vec![1]).unwrap();
    }

    #[test]
    fn serve_stale_answers_the_armed_snapshot() {
        let mut p = CloudProvider::new("drive");
        p.create_account("anon", "tok");
        p.put("anon", "tok", "x", vec![1], exit()).unwrap();
        p.serve_stale();
        // Writes after arming still land in the live store…
        p.put("anon", "tok", "x", vec![2], exit()).unwrap();
        p.put("anon", "tok", "new", vec![3], exit()).unwrap();
        // …but every read (and listing) answers from the snapshot.
        assert_eq!(p.get("anon", "tok", "x", exit()).unwrap(), vec![1]);
        assert_eq!(
            p.get("anon", "tok", "new", exit()),
            Err(CloudError::NoSuchObject)
        );
        assert_eq!(p.list("anon", "tok", exit()).unwrap(), vec!["x"]);
        let mut s = p.session("anon", "tok", exit());
        assert_eq!(s.get("x").unwrap(), Some(&[1u8][..]));
        drop(s);
        p.heal();
        assert_eq!(p.get("anon", "tok", "x", exit()).unwrap(), vec![2]);
    }

    #[test]
    fn serve_garbage_returns_wrong_bytes_of_the_right_length() {
        let mut p = CloudProvider::new("drive");
        p.create_account("anon", "tok");
        p.put("anon", "tok", "x", vec![0xAB; 100], exit()).unwrap();
        p.serve_garbage();
        let lie = p.get("anon", "tok", "x", exit()).unwrap();
        assert_eq!(lie.len(), 100, "right length");
        assert_ne!(lie, vec![0xAB; 100], "wrong bytes");
        // Deterministic: the byzantine provider lies consistently.
        assert_eq!(p.get("anon", "tok", "x", exit()).unwrap(), lie);
        p.heal();
        assert_eq!(p.get("anon", "tok", "x", exit()).unwrap(), vec![0xAB; 100]);
    }

    #[test]
    fn subpoena_returns_blobs() {
        let mut p = CloudProvider::new("drive");
        p.create_account("anon", "c");
        p.put("anon", "c", "x", vec![0xAB; 10], exit()).unwrap();
        let dump = p.subpoena("anon");
        assert_eq!(dump.len(), 1);
        assert_eq!(dump[0].0, "x");
        assert_eq!(dump[0].1, &[0xAB; 10][..]);
        assert!(p.subpoena("ghost").is_empty());
    }
}
