//! Simulated cloud storage providers.
//!
//! §3.5: "By utilizing free-to-use cloud storage options, such as
//! DropBox or Google Drive, a user can create a pseudonymous cloud
//! account for each pseudonym. Because all interactions with the cloud
//! storage are anonymized, the cloud provider learns nothing about the
//! account owner."
//!
//! The provider model therefore records exactly what a real provider
//! would observe — account id, object name, blob bytes, and the *source
//! address of the connection* — so tests can check the deniability
//! claims: blobs are ciphertext, and the observed address is an
//! anonymizer exit, never the user.

use std::collections::BTreeMap;

use nymix_net::Ip;

/// Errors from provider operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CloudError {
    /// Unknown account.
    NoSuchAccount,
    /// Wrong account credential.
    BadCredential,
    /// Unknown object.
    NoSuchObject,
}

impl core::fmt::Display for CloudError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CloudError::NoSuchAccount => write!(f, "no such account"),
            CloudError::BadCredential => write!(f, "bad credential"),
            CloudError::NoSuchObject => write!(f, "no such object"),
        }
    }
}

impl std::error::Error for CloudError {}

/// One observed provider-side event (the provider's access log).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessLogEntry {
    /// Account the operation touched.
    pub account: String,
    /// Operation ("put", "get", "list", "login").
    pub op: &'static str,
    /// Object name, if applicable.
    pub object: Option<String>,
    /// Source address the provider observed.
    pub observed_ip: Ip,
    /// Blob size, if applicable.
    pub bytes: usize,
}

#[derive(Debug, Clone)]
struct Account {
    credential: String,
    objects: BTreeMap<String, Vec<u8>>,
}

/// A cloud storage provider.
///
/// # Examples
///
/// ```
/// use nymix_store::CloudProvider;
/// use nymix_net::Ip;
///
/// let mut dropbox = CloudProvider::new("dropbox");
/// dropbox.create_account("anon4711", "token");
/// let exit = Ip::parse("198.18.0.5"); // a Tor exit, not the user
/// dropbox.put("anon4711", "token", "nym.bin", vec![1, 2, 3], exit).unwrap();
/// assert_eq!(dropbox.get("anon4711", "token", "nym.bin", exit).unwrap(), vec![1, 2, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct CloudProvider {
    name: String,
    accounts: BTreeMap<String, Account>,
    log: Vec<AccessLogEntry>,
}

impl CloudProvider {
    /// A provider with no accounts.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            accounts: BTreeMap::new(),
            log: Vec::new(),
        }
    }

    /// Provider name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Registers a (pseudonymous) account.
    pub fn create_account(&mut self, account: &str, credential: &str) {
        self.accounts.insert(
            account.to_string(),
            Account {
                credential: credential.to_string(),
                objects: BTreeMap::new(),
            },
        );
    }

    fn auth(&self, account: &str, credential: &str) -> Result<(), CloudError> {
        let acct = self
            .accounts
            .get(account)
            .ok_or(CloudError::NoSuchAccount)?;
        if acct.credential != credential {
            return Err(CloudError::BadCredential);
        }
        Ok(())
    }

    /// Stores an object.
    pub fn put(
        &mut self,
        account: &str,
        credential: &str,
        object: &str,
        data: Vec<u8>,
        observed_ip: Ip,
    ) -> Result<(), CloudError> {
        self.auth(account, credential)?;
        let bytes = data.len();
        self.accounts
            .get_mut(account)
            .expect("authenticated above")
            .objects
            .insert(object.to_string(), data);
        self.log.push(AccessLogEntry {
            account: account.to_string(),
            op: "put",
            object: Some(object.to_string()),
            observed_ip,
            bytes,
        });
        Ok(())
    }

    /// Retrieves an object.
    pub fn get(
        &mut self,
        account: &str,
        credential: &str,
        object: &str,
        observed_ip: Ip,
    ) -> Result<Vec<u8>, CloudError> {
        self.auth(account, credential)?;
        let data = self
            .accounts
            .get(account)
            .expect("authenticated above")
            .objects
            .get(object)
            .cloned()
            .ok_or(CloudError::NoSuchObject)?;
        self.log.push(AccessLogEntry {
            account: account.to_string(),
            op: "get",
            object: Some(object.to_string()),
            observed_ip,
            bytes: data.len(),
        });
        Ok(data)
    }

    /// Lists an account's object names.
    pub fn list(
        &mut self,
        account: &str,
        credential: &str,
        observed_ip: Ip,
    ) -> Result<Vec<String>, CloudError> {
        self.auth(account, credential)?;
        self.log.push(AccessLogEntry {
            account: account.to_string(),
            op: "list",
            object: None,
            observed_ip,
            bytes: 0,
        });
        Ok(self
            .accounts
            .get(account)
            .expect("authenticated above")
            .objects
            .keys()
            .cloned()
            .collect())
    }

    /// Deletes an object.
    pub fn delete(
        &mut self,
        account: &str,
        credential: &str,
        object: &str,
        observed_ip: Ip,
    ) -> Result<(), CloudError> {
        self.auth(account, credential)?;
        self.accounts
            .get_mut(account)
            .expect("authenticated above")
            .objects
            .remove(object)
            .ok_or(CloudError::NoSuchObject)?;
        self.log.push(AccessLogEntry {
            account: account.to_string(),
            op: "delete",
            object: Some(object.to_string()),
            observed_ip,
            bytes: 0,
        });
        Ok(())
    }

    /// The provider's full access log (the adversary's subpoena view).
    pub fn access_log(&self) -> &[AccessLogEntry] {
        &self.log
    }

    /// Stored size of an object, if present.
    pub fn object_size(&self, account: &str, object: &str) -> Option<usize> {
        self.accounts
            .get(account)?
            .objects
            .get(object)
            .map(Vec::len)
    }

    /// Everything the provider could hand an adversary about `account`:
    /// the raw blobs. (Deniability analysis: are they distinguishable
    /// from random?)
    pub fn subpoena(&self, account: &str) -> Vec<(&str, &[u8])> {
        self.accounts
            .get(account)
            .map(|a| {
                a.objects
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.as_slice()))
                    .collect()
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exit() -> Ip {
        Ip::parse("198.18.0.7")
    }

    #[test]
    fn put_get_list_delete() {
        let mut p = CloudProvider::new("drive");
        p.create_account("a1", "c1");
        p.put("a1", "c1", "o1", vec![1, 2], exit()).unwrap();
        p.put("a1", "c1", "o2", vec![3], exit()).unwrap();
        assert_eq!(p.get("a1", "c1", "o1", exit()).unwrap(), vec![1, 2]);
        assert_eq!(p.list("a1", "c1", exit()).unwrap(), vec!["o1", "o2"]);
        assert_eq!(p.object_size("a1", "o2"), Some(1));
        p.delete("a1", "c1", "o2", exit()).unwrap();
        assert_eq!(
            p.get("a1", "c1", "o2", exit()),
            Err(CloudError::NoSuchObject)
        );
    }

    #[test]
    fn auth_enforced() {
        let mut p = CloudProvider::new("drive");
        p.create_account("a1", "c1");
        assert_eq!(
            p.put("a1", "wrong", "o", vec![], exit()),
            Err(CloudError::BadCredential)
        );
        assert_eq!(
            p.get("nobody", "c", "o", exit()),
            Err(CloudError::NoSuchAccount)
        );
    }

    #[test]
    fn access_log_records_observed_ip_only() {
        let mut p = CloudProvider::new("drive");
        p.create_account("anon", "c");
        let user_ip = Ip::parse("203.0.113.9");
        let tor_exit = Ip::parse("198.18.0.40");
        p.put("anon", "c", "nym.bin", vec![0; 64], tor_exit)
            .unwrap();
        p.get("anon", "c", "nym.bin", tor_exit).unwrap();
        // The provider's log contains only the exit address.
        assert_eq!(p.access_log().len(), 2);
        for entry in p.access_log() {
            assert_eq!(entry.observed_ip, tor_exit);
            assert_ne!(entry.observed_ip, user_ip);
        }
    }

    #[test]
    fn subpoena_returns_blobs() {
        let mut p = CloudProvider::new("drive");
        p.create_account("anon", "c");
        p.put("anon", "c", "x", vec![0xAB; 10], exit()).unwrap();
        let dump = p.subpoena("anon");
        assert_eq!(dump.len(), 1);
        assert_eq!(dump[0].0, "x");
        assert_eq!(dump[0].1, &[0xAB; 10][..]);
        assert!(p.subpoena("ghost").is_empty());
    }
}
