//! Local-media nym storage.
//!
//! §3.5: quasi-persistent data can go "to another local partition or
//! USB drive" instead of the cloud. The trade-off (§3.5 "Security
//! Tradeoffs"): no ephemeral fetch nym is needed (the nym's own guards
//! are available immediately), but a confiscating adversary *finds the
//! encrypted blobs* — "the USB device now becomes evidence" (§2) — and
//! may coerce the password. [`LocalStore::confiscate`] returns exactly
//! what such an adversary obtains.

use std::collections::BTreeMap;

use crate::backend::{BackendError, ObjectBackend};

/// A local partition / USB drive holding sealed nyms.
#[derive(Debug, Clone, Default)]
pub struct LocalStore {
    objects: BTreeMap<String, Vec<u8>>,
}

impl LocalStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes a sealed blob.
    pub fn put(&mut self, name: &str, data: Vec<u8>) {
        self.objects.insert(name.to_string(), data);
    }

    /// Reads a sealed blob.
    pub fn get(&self, name: &str) -> Option<&[u8]> {
        self.objects.get(name).map(Vec::as_slice)
    }

    /// Removes a blob, returning whether it existed.
    pub fn delete(&mut self, name: &str) -> bool {
        self.objects.remove(name).is_some()
    }

    /// Object names present.
    pub fn list(&self) -> Vec<&str> {
        self.objects.keys().map(String::as_str).collect()
    }

    /// Total stored bytes.
    pub fn total_bytes(&self) -> usize {
        self.objects.values().map(Vec::len).sum()
    }

    /// What a confiscating adversary finds: every blob, by name. A
    /// non-empty result is *evidence of Nymix use* — the deniability
    /// gap cloud storage closes.
    pub fn confiscate(&self) -> Vec<(&str, &[u8])> {
        self.objects
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_slice()))
            .collect()
    }

    /// Whether confiscation finds nothing (deniable state).
    pub fn is_deniable(&self) -> bool {
        self.objects.is_empty()
    }
}

/// Local media is the simplest [`ObjectBackend`]: infallible, no
/// credentials, no access log an adversary could subpoena (the blobs
/// themselves are the evidence — see [`LocalStore::confiscate`]).
impl ObjectBackend for LocalStore {
    fn put(&mut self, name: &str, data: Vec<u8>) -> Result<(), BackendError> {
        LocalStore::put(self, name, data);
        Ok(())
    }

    fn put_many(&mut self, objects: Vec<(String, Vec<u8>)>) -> Result<(), BackendError> {
        self.objects.extend(objects);
        Ok(())
    }

    fn get(&mut self, name: &str) -> Result<Option<&[u8]>, BackendError> {
        Ok(LocalStore::get(self, name))
    }

    fn delete(&mut self, name: &str) -> Result<bool, BackendError> {
        Ok(LocalStore::delete(self, name))
    }

    fn list(&mut self, out: &mut Vec<String>) -> Result<(), BackendError> {
        out.extend(self.objects.keys().cloned());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crud() {
        let mut s = LocalStore::new();
        assert!(s.is_deniable());
        s.put("nym-alice", vec![1, 2, 3]);
        s.put("nym-bob", vec![4]);
        assert_eq!(s.get("nym-alice"), Some(&[1u8, 2, 3][..]));
        assert_eq!(s.list(), vec!["nym-alice", "nym-bob"]);
        assert_eq!(s.total_bytes(), 4);
        assert!(s.delete("nym-bob"));
        assert!(!s.delete("nym-bob"));
        assert_eq!(s.get("nym-bob"), None);
    }

    #[test]
    fn object_backend_contract() {
        let mut s = LocalStore::new();
        let b: &mut dyn ObjectBackend = &mut s;
        b.put("x", vec![1, 2]).unwrap();
        assert_eq!(b.get("x").unwrap(), Some(&[1u8, 2][..]));
        assert_eq!(b.get("ghost").unwrap(), None);
        let mut names = Vec::new();
        b.list(&mut names).unwrap();
        assert_eq!(names, vec!["x"]);
        assert!(b.delete("x").unwrap());
        assert!(!b.delete("x").unwrap());
    }

    #[test]
    fn confiscation_reveals_blob_presence() {
        let mut s = LocalStore::new();
        s.put("nym-alice", vec![0xEE; 32]);
        let found = s.confiscate();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].0, "nym-alice");
        assert!(!s.is_deniable());
    }
}
