//! Incremental (delta) nym snapshots.
//!
//! The paper's store-nym workflow (§3.5) re-seals the entire
//! AnonVM/CommVM writable state on every snapshot, so save latency
//! grows with total nym size even when one browser session touched a
//! handful of files. A [`DeltaArchive`] holds only the records that
//! changed since the previous snapshot — plus enough commitment to make
//! replay tamper-evident:
//!
//! ```text
//! magic "NYMD" | full_record_count u32 | merkle_root [32]u8 |
//! dirty_count u32 | records (name_len u16 | name | data_len u64 | data) |
//! removed_count u32 | (name_len u16 | name)...
//! ```
//!
//! `merkle_root` commits to the **entire** record set of the full
//! archive this delta produces when applied, not just the dirty
//! records: each leaf is `name_len u16 ‖ name ‖ data` in record order,
//! hashed through the domain-separated tree of `nymix_crypto::merkle`
//! (built on the 4-way `sha256_x4` batch kernel). Restore replays
//! base + deltas in order and [`DeltaArchive::apply`] rejects the
//! result whenever the recomputed root differs — a tampered record, a
//! reordered chain, or a delta replayed against the wrong base fails
//! closed instead of restoring silently-wrong state.
//!
//! Chains are bounded: after [`DELTA_CHAIN_LIMIT`] deltas the next save
//! compacts back to a full `"NYM1"` archive (see [`crate::versioned`]
//! for the retention-side policy and `nymix-core`'s Nym Manager for the
//! sealing side).
//!
//! Like [`NymArchive::from_bytes`](crate::NymArchive::from_bytes), the
//! parser treats its input as hostile: overflow-safe bounds checks
//! everywhere, pre-allocation clamped by the bytes actually present.
//! Parsing either succeeds or returns an error — never panics.

use nymix_crypto::{leaf_hash_parts, merkle_root_from_leaves};

use crate::archive::{
    clamp_count, len_u16, len_u32, read_name, read_record, write_record, ArchiveError, NymArchive,
    Reader, MAX_NAME_LEN, MIN_RECORD_LEN,
};

/// Maximum deltas chained on one base archive before a save must
/// compact back to a full archive. Bounds restore latency (base + at
/// most this many replays) and the blast radius of a lost object.
pub const DELTA_CHAIN_LIMIT: usize = 4;

/// A 32-byte Merkle root over an archive's full record set.
pub type MerkleRoot = [u8; 32];

const MAGIC: &[u8; 4] = b"NYMD";

/// Errors from delta parsing and replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// Bad magic, structural truncation, or hostile lengths.
    Malformed,
    /// Applying the delta produced a record count other than the one
    /// the delta committed to.
    CountMismatch,
    /// The recomputed Merkle root over the replayed record set differs
    /// from the committed root: tampering, reordering, or a stale base.
    RootMismatch,
    /// A delta was offered for a name with no full base archive to
    /// chain on.
    NoBase,
    /// The object backend holding the chain failed (denied credentials,
    /// provider fault) — distinct from "nothing stored" and from
    /// tampering, so callers recover down the right path.
    Backend(crate::backend::BackendError),
}

impl core::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DeltaError::Malformed => write!(f, "malformed delta archive"),
            DeltaError::CountMismatch => write!(f, "replayed record count mismatches commitment"),
            DeltaError::RootMismatch => write!(f, "merkle root mismatch after replay"),
            DeltaError::NoBase => write!(f, "no base archive to chain a delta on"),
            DeltaError::Backend(e) => write!(f, "chain backend failed: {e}"),
        }
    }
}

impl std::error::Error for DeltaError {}

impl From<ArchiveError> for DeltaError {
    fn from(_: ArchiveError) -> Self {
        DeltaError::Malformed
    }
}

/// The dirty-record set between two snapshots, plus the Merkle
/// commitment to the full record set after replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaArchive {
    full_count: u32,
    root: MerkleRoot,
    dirty: Vec<(String, Vec<u8>)>,
    removed: Vec<String>,
}

impl DeltaArchive {
    /// An empty delta committing to a full archive of `full_count`
    /// records under `root`. Populate with [`DeltaArchive::put`] /
    /// [`DeltaArchive::mark_removed`].
    pub fn new(full_count: usize, root: MerkleRoot) -> Self {
        Self {
            full_count: len_u32(full_count),
            root,
            dirty: Vec::new(),
            removed: Vec::new(),
        }
    }

    /// Computes the delta turning `prev` into `next`: records whose
    /// bytes changed (or are new), plus removals. The commitment covers
    /// `next`'s full record set.
    pub fn diff(prev: &NymArchive, next: &NymArchive) -> Self {
        let mut delta = Self::new(next.record_count(), archive_merkle_root(next));
        for (name, data) in next.records() {
            if prev.get(name) != Some(data) {
                delta.put(name, data.to_vec());
            }
        }
        for (name, _) in prev.records() {
            if next.get(name).is_none() {
                delta.mark_removed(name);
            }
        }
        delta
    }

    /// Adds (or replaces) a dirty record.
    ///
    /// # Panics
    ///
    /// Panics if `name` exceeds [`MAX_NAME_LEN`] bytes (see
    /// [`NymArchive::put`](crate::NymArchive::put)).
    pub fn put(&mut self, name: &str, data: Vec<u8>) {
        // lint:allow(panic-free-parser): serializer-side contract on caller-chosen names (documented under # Panics); wire bytes never reach this path
        assert!(
            name.len() <= MAX_NAME_LEN,
            "record name of {} bytes exceeds the u16 wire limit ({MAX_NAME_LEN})",
            name.len()
        );
        if let Some(slot) = self.dirty.iter_mut().find(|(n, _)| n == name) {
            slot.1 = data;
        } else {
            self.dirty.push((name.to_string(), data));
        }
    }

    /// Marks a record as removed since the previous snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `name` exceeds [`MAX_NAME_LEN`] bytes.
    pub fn mark_removed(&mut self, name: &str) {
        // lint:allow(panic-free-parser): serializer-side contract on caller-chosen names (documented under # Panics); wire bytes never reach this path
        assert!(
            name.len() <= MAX_NAME_LEN,
            "record name of {} bytes exceeds the u16 wire limit ({MAX_NAME_LEN})",
            name.len()
        );
        if !self.removed.iter().any(|n| n == name) {
            self.removed.push(name.to_string());
        }
    }

    /// The committed Merkle root of the post-replay record set.
    pub fn root(&self) -> &MerkleRoot {
        &self.root
    }

    /// The committed post-replay record count.
    pub fn full_count(&self) -> usize {
        self.full_count as usize
    }

    /// Dirty `(name, data)` records in insertion order.
    pub fn dirty_records(&self) -> impl Iterator<Item = (&str, &[u8])> {
        self.dirty.iter().map(|(n, d)| (n.as_str(), d.as_slice()))
    }

    /// Names removed since the previous snapshot.
    pub fn removed_names(&self) -> impl Iterator<Item = &str> {
        self.removed.iter().map(String::as_str)
    }

    /// Total dirty payload bytes (what a delta save actually re-seals).
    pub fn payload_bytes(&self) -> usize {
        self.dirty.iter().map(|(_, d)| d.len()).sum()
    }

    /// Replays this delta onto `base` in place: dirty records replace
    /// same-named ones (new names append in delta order), removed names
    /// drop out. The result is then verified against the committed
    /// record count and Merkle root; on any mismatch `base` must be
    /// considered corrupt and discarded — the method fails closed
    /// rather than rolling back.
    pub fn apply(&self, base: &mut NymArchive) -> Result<(), DeltaError> {
        for (name, data) in &self.dirty {
            base.put(name, data.clone());
        }
        for name in &self.removed {
            base.remove(name);
        }
        if base.record_count() != self.full_count as usize {
            return Err(DeltaError::CountMismatch);
        }
        if archive_merkle_root(base) != self.root {
            return Err(DeltaError::RootMismatch);
        }
        Ok(())
    }

    /// Exact byte length [`DeltaArchive::write_into`] will append.
    pub fn serialized_len(&self) -> usize {
        MAGIC.len()
            + 4
            + 32
            + 4
            + self
                .dirty
                .iter()
                .map(|(name, data)| 2 + name.len() + 8 + data.len())
                .sum::<usize>()
            + 4
            + self.removed.iter().map(|n| 2 + n.len()).sum::<usize>()
    }

    /// Serializes the delta by appending to `out`; with
    /// [`DeltaArchive::serialized_len`] spare capacity this performs no
    /// allocation, so the sealing pipeline can serialize straight into
    /// its reusable arena.
    pub fn write_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.serialized_len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.full_count.to_le_bytes());
        out.extend_from_slice(&self.root);
        out.extend_from_slice(&len_u32(self.dirty.len()).to_le_bytes());
        for (name, data) in &self.dirty {
            write_record(out, name, data);
        }
        out.extend_from_slice(&len_u32(self.removed.len()).to_le_bytes());
        for name in &self.removed {
            out.extend_from_slice(&len_u16(name.len()).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
        }
    }

    /// Serializes the delta.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.serialized_len());
        self.write_into(&mut out);
        out
    }

    /// Parses a serialized delta. Never panics and never over-reserves,
    /// no matter how hostile the bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DeltaError> {
        let mut r = Reader::new(bytes);
        if r.take(4)? != MAGIC {
            return Err(DeltaError::Malformed);
        }
        let full_count = r.u32()?;
        let root: MerkleRoot = r.take_array()?;
        let dirty_count = r.u32()?;
        let mut dirty = Vec::with_capacity(clamp_count(dirty_count, r.remaining(), MIN_RECORD_LEN));
        for _ in 0..dirty_count {
            dirty.push(read_record(&mut r)?);
        }
        let removed_count = r.u32()?;
        let mut removed = Vec::with_capacity(clamp_count(removed_count, r.remaining(), 2));
        for _ in 0..removed_count {
            removed.push(read_name(&mut r)?);
        }
        if !r.done() {
            return Err(DeltaError::Malformed);
        }
        Ok(Self {
            full_count,
            root,
            dirty,
            removed,
        })
    }
}

/// The Merkle root over an archive's full record set: one leaf per
/// record (`name_len u16 ‖ name ‖ data`), in record order.
pub fn archive_merkle_root(archive: &NymArchive) -> MerkleRoot {
    archive_merkle_root_with(archive, &mut Vec::with_capacity(archive.record_count()))
}

/// [`archive_merkle_root`] folding into a caller-owned leaf scratch
/// vector, so repeated root computations (every delta save) reuse one
/// allocation.
pub fn archive_merkle_root_with(archive: &NymArchive, leaves: &mut Vec<MerkleRoot>) -> MerkleRoot {
    leaves.clear();
    for (name, data) in archive.records() {
        let name_len = len_u16(name.len()).to_le_bytes();
        leaves.push(leaf_hash_parts(&[&name_len, name.as_bytes(), data]));
    }
    merkle_root_from_leaves(leaves)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> NymArchive {
        let mut a = NymArchive::new();
        a.put("anonvm.disk", vec![1; 300]);
        a.put("commvm.disk", vec![2; 200]);
        a.put("meta", b"name=alice".to_vec());
        a
    }

    #[test]
    fn diff_apply_reproduces_exact_archive() {
        let prev = base();
        let mut next = prev.clone();
        next.put("anonvm.disk", vec![9; 350]); // changed
        next.put("browser.state", b"cookies".to_vec()); // new
        next.remove("meta"); // gone
        let delta = DeltaArchive::diff(&prev, &next);
        assert_eq!(
            delta.dirty_records().map(|(n, _)| n).collect::<Vec<_>>(),
            vec!["anonvm.disk", "browser.state"]
        );
        assert_eq!(delta.removed_names().collect::<Vec<_>>(), vec!["meta"]);
        // Only the dirty payload rides the wire.
        assert_eq!(delta.payload_bytes(), 350 + 7);

        let mut replayed = prev.clone();
        delta.apply(&mut replayed).unwrap();
        assert_eq!(replayed, next);
    }

    #[test]
    fn wire_roundtrip() {
        let prev = base();
        let mut next = prev.clone();
        next.put("meta", b"name=alice;v=2".to_vec());
        next.remove("commvm.disk");
        let delta = DeltaArchive::diff(&prev, &next);
        let bytes = delta.to_bytes();
        assert_eq!(bytes.len(), delta.serialized_len());
        assert_eq!(DeltaArchive::from_bytes(&bytes).unwrap(), delta);
    }

    #[test]
    fn empty_delta_roundtrips_and_verifies() {
        let a = base();
        let delta = DeltaArchive::diff(&a, &a);
        assert_eq!(delta.dirty_records().count(), 0);
        assert_eq!(delta.payload_bytes(), 0);
        let delta = DeltaArchive::from_bytes(&delta.to_bytes()).unwrap();
        let mut replayed = a.clone();
        delta.apply(&mut replayed).unwrap();
        assert_eq!(replayed, a);
    }

    #[test]
    fn tampered_record_fails_closed() {
        let prev = base();
        let mut next = prev.clone();
        next.put("anonvm.disk", vec![9; 10]);
        let delta = DeltaArchive::diff(&prev, &next);

        // Tamper with a record the delta does NOT carry: the dirty set
        // authenticates fine record-by-record, only the full-set root
        // catches it.
        let mut stale_base = prev.clone();
        stale_base.put("commvm.disk", vec![0xEE; 200]);
        let mut replayed = stale_base;
        assert_eq!(delta.apply(&mut replayed), Err(DeltaError::RootMismatch));

        // Tamper with the carried record's bytes on the wire (the last
        // payload byte sits just before the trailing removed_count u32).
        let mut bytes = delta.to_bytes();
        let last_payload = bytes.len() - 5;
        bytes[last_payload] ^= 1;
        let evil = DeltaArchive::from_bytes(&bytes).unwrap();
        let mut replayed = prev.clone();
        assert_eq!(evil.apply(&mut replayed), Err(DeltaError::RootMismatch));
    }

    #[test]
    fn wrong_base_fails_closed() {
        let prev = base();
        let mut next = prev.clone();
        next.put("meta", b"v2".to_vec());
        let delta = DeltaArchive::diff(&prev, &next);
        // Replaying against an archive with an extra record: count check.
        let mut fat = prev.clone();
        fat.put("extra", vec![1]);
        assert_eq!(delta.apply(&mut fat), Err(DeltaError::CountMismatch));
    }

    #[test]
    fn hostile_bytes_rejected_without_panic() {
        assert_eq!(
            DeltaArchive::from_bytes(b"NYMD"),
            Err(DeltaError::Malformed)
        );
        assert_eq!(
            DeltaArchive::from_bytes(b"NYM1aaaaaaaa"),
            Err(DeltaError::Malformed)
        );
        // Hostile data_len near u64::MAX inside a dirty record.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 32]);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.push(b'x');
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(DeltaArchive::from_bytes(&bytes), Err(DeltaError::Malformed));
        // Huge removed_count with no bytes behind it.
        let mut bytes = DeltaArchive::new(0, [0; 32]).to_bytes();
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(DeltaArchive::from_bytes(&bytes), Err(DeltaError::Malformed));
    }

    #[test]
    fn root_scratch_reuse_matches() {
        let a = base();
        let mut scratch = Vec::new();
        let r1 = archive_merkle_root_with(&a, &mut scratch);
        assert_eq!(r1, archive_merkle_root(&a));
        // Scratch reuse across different archives stays correct.
        let mut b = a.clone();
        b.put("meta", b"changed".to_vec());
        let r2 = archive_merkle_root_with(&b, &mut scratch);
        assert_ne!(r1, r2);
        assert_eq!(r2, archive_merkle_root(&b));
    }
}
