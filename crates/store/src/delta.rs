//! Incremental (delta) nym snapshots.
//!
//! The paper's store-nym workflow (§3.5) re-seals the entire
//! AnonVM/CommVM writable state on every snapshot, so save latency
//! grows with total nym size even when one browser session touched a
//! handful of files. A [`DeltaArchive`] holds only the records that
//! changed since the previous snapshot — plus enough commitment to make
//! replay tamper-evident:
//!
//! ```text
//! magic "NYMD" | full_record_count u32 | merkle_root [32]u8 |
//! dirty_count u32 | records (name_len u16 | name | data_len u64 | data) |
//! removed_count u32 | (name_len u16 | name)...
//! ```
//!
//! `merkle_root` commits to the **entire** record set of the full
//! archive this delta produces when applied, not just the dirty
//! records: each leaf is `name_len u16 ‖ name ‖ data` in record order,
//! hashed through the domain-separated tree of `nymix_crypto::merkle`
//! (built on the 4-way `sha256_x4` batch kernel). Restore replays
//! base + deltas in order and [`DeltaArchive::apply`] rejects the
//! result whenever the recomputed root differs — a tampered record, a
//! reordered chain, or a delta replayed against the wrong base fails
//! closed instead of restoring silently-wrong state.
//!
//! Chains are bounded: after [`DELTA_CHAIN_LIMIT`] deltas the next save
//! compacts back to a full `"NYM1"` archive (see [`crate::versioned`]
//! for the retention-side policy and `nymix-core`'s Nym Manager for the
//! sealing side).
//!
//! Computing `merkle_root` is O(dirty), not O(archive), when the saver
//! keeps an [`ArchiveCommitment`] warm across saves: the accumulator
//! caches every leaf hash and interior node, so a save rewrites only
//! the dirty leaves plus their root paths. The cache is **derivable
//! state** — rebuilt from the archive bytes on restore
//! ([`ArchiveCommitment::build`]), never serialized, and bit-identical
//! to the from-scratch root by construction (property-tested) — so the
//! `NYMD` wire format above is unchanged and old blobs replay
//! byte-for-byte.
//!
//! Like [`NymArchive::from_bytes`](crate::NymArchive::from_bytes), the
//! parser treats its input as hostile: overflow-safe bounds checks
//! everywhere, pre-allocation clamped by the bytes actually present.
//! Parsing either succeeds or returns an error — never panics.

use std::collections::HashMap;

use nymix_crypto::{leaf_hash_parts, merkle_root_from_leaves, MerkleAccumulator};

use crate::archive::{
    clamp_count, len_u16, len_u32, read_name, read_record, write_record, ArchiveError, NymArchive,
    Reader, MAX_NAME_LEN, MIN_RECORD_LEN,
};

/// Maximum deltas chained on one base archive before a save must
/// compact back to a full archive. Bounds restore latency (base + at
/// most this many replays) and the blast radius of a lost object.
pub const DELTA_CHAIN_LIMIT: usize = 4;

/// A 32-byte Merkle root over an archive's full record set.
pub type MerkleRoot = [u8; 32];

const MAGIC: &[u8; 4] = b"NYMD";

/// Errors from delta parsing and replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// Bad magic, structural truncation, or hostile lengths.
    Malformed,
    /// Applying the delta produced a record count other than the one
    /// the delta committed to.
    CountMismatch,
    /// The recomputed Merkle root over the replayed record set differs
    /// from the committed root: tampering, reordering, or a stale base.
    RootMismatch,
    /// A delta was offered for a name with no full base archive to
    /// chain on.
    NoBase,
    /// The object backend holding the chain failed (denied credentials,
    /// provider fault) — distinct from "nothing stored" and from
    /// tampering, so callers recover down the right path.
    Backend(crate::backend::BackendError),
}

impl core::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DeltaError::Malformed => write!(f, "malformed delta archive"),
            DeltaError::CountMismatch => write!(f, "replayed record count mismatches commitment"),
            DeltaError::RootMismatch => write!(f, "merkle root mismatch after replay"),
            DeltaError::NoBase => write!(f, "no base archive to chain a delta on"),
            DeltaError::Backend(e) => write!(f, "chain backend failed: {e}"),
        }
    }
}

impl std::error::Error for DeltaError {}

impl From<ArchiveError> for DeltaError {
    fn from(_: ArchiveError) -> Self {
        DeltaError::Malformed
    }
}

/// The dirty-record set between two snapshots, plus the Merkle
/// commitment to the full record set after replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaArchive {
    full_count: u32,
    root: MerkleRoot,
    dirty: Vec<(String, Vec<u8>)>,
    removed: Vec<String>,
}

impl DeltaArchive {
    /// An empty delta committing to a full archive of `full_count`
    /// records under `root`. Populate with [`DeltaArchive::put`] /
    /// [`DeltaArchive::mark_removed`].
    pub fn new(full_count: usize, root: MerkleRoot) -> Self {
        Self {
            full_count: len_u32(full_count),
            root,
            dirty: Vec::new(),
            removed: Vec::new(),
        }
    }

    /// Computes the delta turning `prev` into `next`: records whose
    /// bytes changed (or are new), plus removals. The commitment covers
    /// `next`'s full record set, recomputed from scratch — O(archive)
    /// hashing. The save hot path uses [`DeltaArchive::diff_with`]
    /// instead, which reuses a cached [`ArchiveCommitment`].
    pub fn diff(prev: &NymArchive, next: &NymArchive) -> Self {
        let mut delta = Self::new(next.record_count(), archive_merkle_root(next));
        delta.collect_dirty(prev, next);
        delta
    }

    /// [`DeltaArchive::diff`] committing through a cached
    /// [`ArchiveCommitment`]: only dirty leaves and their root paths
    /// are rehashed, so the commitment cost is O(dirty · log n)
    /// instead of O(archive).
    ///
    /// `commitment` must currently reflect `prev` (the archive the
    /// previous save committed); on return it reflects `next`, ready
    /// for the following save. A fresh cache for a new chain comes
    /// from [`ArchiveCommitment::build`].
    pub fn diff_with(
        prev: &NymArchive,
        next: &NymArchive,
        commitment: &mut ArchiveCommitment,
    ) -> Self {
        let mut delta = Self::new(next.record_count(), [0u8; 32]);
        delta.collect_dirty(prev, next);
        let root = commitment.update(next, |name| delta.dirty.iter().any(|(n, _)| n == name));
        delta.root = root;
        delta
    }

    /// Shared diff body: dirty records (changed or new), then removals.
    fn collect_dirty(&mut self, prev: &NymArchive, next: &NymArchive) {
        for (name, data) in next.records() {
            if prev.get(name) != Some(data) {
                self.put(name, data.to_vec());
            }
        }
        for (name, _) in prev.records() {
            if next.get(name).is_none() {
                self.mark_removed(name);
            }
        }
    }

    /// Adds (or replaces) a dirty record.
    ///
    /// # Panics
    ///
    /// Panics if `name` exceeds [`MAX_NAME_LEN`] bytes (see
    /// [`NymArchive::put`](crate::NymArchive::put)).
    pub fn put(&mut self, name: &str, data: Vec<u8>) {
        // lint:allow(panic-free-parser): serializer-side contract on caller-chosen names (documented under # Panics); wire bytes never reach this path
        assert!(
            name.len() <= MAX_NAME_LEN,
            "record name of {} bytes exceeds the u16 wire limit ({MAX_NAME_LEN})",
            name.len()
        );
        if let Some(slot) = self.dirty.iter_mut().find(|(n, _)| n == name) {
            slot.1 = data;
        } else {
            self.dirty.push((name.to_string(), data));
        }
    }

    /// Marks a record as removed since the previous snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `name` exceeds [`MAX_NAME_LEN`] bytes.
    pub fn mark_removed(&mut self, name: &str) {
        // lint:allow(panic-free-parser): serializer-side contract on caller-chosen names (documented under # Panics); wire bytes never reach this path
        assert!(
            name.len() <= MAX_NAME_LEN,
            "record name of {} bytes exceeds the u16 wire limit ({MAX_NAME_LEN})",
            name.len()
        );
        if !self.removed.iter().any(|n| n == name) {
            self.removed.push(name.to_string());
        }
    }

    /// The committed Merkle root of the post-replay record set.
    pub fn root(&self) -> &MerkleRoot {
        &self.root
    }

    /// The committed post-replay record count.
    pub fn full_count(&self) -> usize {
        self.full_count as usize
    }

    /// Dirty `(name, data)` records in insertion order.
    pub fn dirty_records(&self) -> impl Iterator<Item = (&str, &[u8])> {
        self.dirty.iter().map(|(n, d)| (n.as_str(), d.as_slice()))
    }

    /// Names removed since the previous snapshot.
    pub fn removed_names(&self) -> impl Iterator<Item = &str> {
        self.removed.iter().map(String::as_str)
    }

    /// Total dirty payload bytes (what a delta save actually re-seals).
    pub fn payload_bytes(&self) -> usize {
        self.dirty.iter().map(|(_, d)| d.len()).sum()
    }

    /// Replays this delta onto `base` in place: dirty records replace
    /// same-named ones (new names append in delta order), removed names
    /// drop out. The result is then verified against the committed
    /// record count and Merkle root; on any mismatch `base` must be
    /// considered corrupt and discarded — the method fails closed
    /// rather than rolling back.
    pub fn apply(&self, base: &mut NymArchive) -> Result<(), DeltaError> {
        for (name, data) in &self.dirty {
            base.put(name, data.clone());
        }
        for name in &self.removed {
            base.remove(name);
        }
        if base.record_count() != self.full_count as usize {
            return Err(DeltaError::CountMismatch);
        }
        if archive_merkle_root(base) != self.root {
            return Err(DeltaError::RootMismatch);
        }
        Ok(())
    }

    /// [`DeltaArchive::apply`] verifying through a cached
    /// [`ArchiveCommitment`], so the replay-side root check rehashes
    /// only the leaves this delta touched — O(dirty · log n) per link
    /// instead of O(archive), the same asymptotic win the save side
    /// gets from [`DeltaArchive::diff_with`].
    ///
    /// `commitment` must reflect `base` as it was before this call
    /// (restore builds it once over the parsed base archive and
    /// threads it through the whole replay chain). On success it
    /// reflects the replayed state; on failure both `base` and the
    /// commitment must be considered corrupt and discarded — exactly
    /// the fail-closed contract of [`DeltaArchive::apply`].
    pub fn apply_with(
        &self,
        base: &mut NymArchive,
        commitment: &mut ArchiveCommitment,
    ) -> Result<(), DeltaError> {
        for (name, data) in &self.dirty {
            base.put(name, data.clone());
        }
        for name in &self.removed {
            base.remove(name);
        }
        if base.record_count() != self.full_count as usize {
            return Err(DeltaError::CountMismatch);
        }
        let root = commitment.update(base, |name| self.dirty.iter().any(|(n, _)| n == name));
        if root != self.root {
            return Err(DeltaError::RootMismatch);
        }
        Ok(())
    }

    /// Exact byte length [`DeltaArchive::write_into`] will append.
    pub fn serialized_len(&self) -> usize {
        MAGIC.len()
            + 4
            + 32
            + 4
            + self
                .dirty
                .iter()
                .map(|(name, data)| 2 + name.len() + 8 + data.len())
                .sum::<usize>()
            + 4
            + self.removed.iter().map(|n| 2 + n.len()).sum::<usize>()
    }

    /// Serializes the delta by appending to `out`; with
    /// [`DeltaArchive::serialized_len`] spare capacity this performs no
    /// allocation, so the sealing pipeline can serialize straight into
    /// its reusable arena.
    pub fn write_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.serialized_len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.full_count.to_le_bytes());
        out.extend_from_slice(&self.root);
        out.extend_from_slice(&len_u32(self.dirty.len()).to_le_bytes());
        for (name, data) in &self.dirty {
            write_record(out, name, data);
        }
        out.extend_from_slice(&len_u32(self.removed.len()).to_le_bytes());
        for name in &self.removed {
            out.extend_from_slice(&len_u16(name.len()).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
        }
    }

    /// Serializes the delta.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.serialized_len());
        self.write_into(&mut out);
        out
    }

    /// Parses a serialized delta. Never panics and never over-reserves,
    /// no matter how hostile the bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DeltaError> {
        let mut r = Reader::new(bytes);
        if r.take(4)? != MAGIC {
            return Err(DeltaError::Malformed);
        }
        let full_count = r.u32()?;
        let root: MerkleRoot = r.take_array()?;
        let dirty_count = r.u32()?;
        let mut dirty = Vec::with_capacity(clamp_count(dirty_count, r.remaining(), MIN_RECORD_LEN));
        for _ in 0..dirty_count {
            dirty.push(read_record(&mut r)?);
        }
        let removed_count = r.u32()?;
        let mut removed = Vec::with_capacity(clamp_count(removed_count, r.remaining(), 2));
        for _ in 0..removed_count {
            removed.push(read_name(&mut r)?);
        }
        if !r.done() {
            return Err(DeltaError::Malformed);
        }
        Ok(Self {
            full_count,
            root,
            dirty,
            removed,
        })
    }
}

/// A cached Merkle commitment over an archive's record set.
///
/// Wraps [`MerkleAccumulator`] with the archive leaf schema (one leaf
/// per record: `name_len u16 ‖ name ‖ data`, in record order) plus the
/// record-name list needed to reconcile the cache against an archive
/// after edits. The cache is **derivable state**: nothing about the
/// NYMD wire format changes, and a commitment rebuilt from scratch
/// over the same archive is bit-identical — sessions keep one per
/// snapshot chain purely to make recommitting O(dirty).
///
/// [`ArchiveCommitment::update`] is the single entry point: given the
/// archive's current state and a dirty predicate, it rehashes exactly
/// the dirty leaves (`merkle.leaf_rehash` counts them, and
/// `merkle.cache_hit` the leaves served from cache) and returns the
/// new root. When the record *shape* changed — names added, removed,
/// or reordered — it falls back to relinking the whole leaf level,
/// still reusing cached leaf hashes for clean records carried over by
/// name.
///
/// The dirty predicate is a soundness contract: it must return `true`
/// for every record whose bytes differ from what this commitment last
/// saw. An under-reporting caller commits a wrong root — which the
/// fail-closed replay check then rejects, so the failure mode is a
/// refused restore, never silently-wrong state.
#[derive(Debug, Clone, Default)]
pub struct ArchiveCommitment {
    /// Record names in committed order, mirroring the archive.
    names: Vec<String>,
    acc: MerkleAccumulator,
}

impl ArchiveCommitment {
    /// Builds the cache over `archive` from scratch: one full leaf
    /// pass, the last O(archive) hash this chain pays until the shape
    /// changes.
    pub fn build(archive: &NymArchive) -> Self {
        let mut c = Self::default();
        for (name, data) in archive.records() {
            c.names.push(name.to_string());
            c.acc.push_leaf(record_leaf(name, data));
        }
        c.acc.root();
        c
    }

    /// The committed root (cached; rebuilds interior nodes only after
    /// a shape change).
    pub fn root(&mut self) -> MerkleRoot {
        self.acc.root()
    }

    /// Reconciles the cache with `archive` and returns the new root.
    /// `is_dirty` must flag every record whose bytes changed since the
    /// last reconciliation (see the type docs for the contract).
    ///
    /// Unchanged shape: O(dirty · log n) hashing, allocation-free.
    /// Changed shape: the leaf level relinks, reusing cached hashes
    /// for clean same-named records.
    pub fn update<F: Fn(&str) -> bool>(&mut self, archive: &NymArchive, is_dirty: F) -> MerkleRoot {
        let same_shape = self.names.len() == archive.record_count()
            && archive
                .records()
                .zip(self.names.iter())
                .all(|((name, _), cached)| name == cached);
        if same_shape {
            let mut rehashed = 0usize;
            for (i, (name, data)) in archive.records().enumerate() {
                if is_dirty(name) {
                    self.acc.update_leaf(i, record_leaf(name, data));
                    rehashed += 1;
                }
            }
            nymix_obs::counter!("merkle.leaf_rehash", rehashed);
            nymix_obs::counter!("merkle.cache_hit", self.names.len() - rehashed);
        } else {
            // Shape changed: rebuild the leaf level, reusing cached
            // leaf hashes for clean records carried over by name.
            let cached: HashMap<&str, MerkleRoot> = self
                .names
                .iter()
                .enumerate()
                .filter_map(|(i, n)| self.acc.leaf(i).map(|h| (n.as_str(), *h)))
                .collect();
            let mut names = Vec::with_capacity(archive.record_count());
            let mut leaves = Vec::with_capacity(archive.record_count());
            let mut rehashed = 0usize;
            for (name, data) in archive.records() {
                let reused = if is_dirty(name) {
                    None
                } else {
                    cached.get(name)
                };
                leaves.push(match reused {
                    Some(h) => *h,
                    None => {
                        rehashed += 1;
                        record_leaf(name, data)
                    }
                });
                names.push(name.to_string());
            }
            nymix_obs::counter!("merkle.leaf_rehash", rehashed);
            nymix_obs::counter!("merkle.cache_hit", names.len() - rehashed);
            drop(cached);
            self.names = names;
            self.acc.clear();
            for leaf in leaves {
                self.acc.push_leaf(leaf);
            }
        }
        self.acc.root()
    }
}

/// One commitment leaf: `name_len u16 ‖ name ‖ data`, hashed without
/// materializing the concatenation.
fn record_leaf(name: &str, data: &[u8]) -> MerkleRoot {
    let name_len = len_u16(name.len()).to_le_bytes();
    leaf_hash_parts(&[&name_len, name.as_bytes(), data])
}

/// The Merkle root over an archive's full record set: one leaf per
/// record (`name_len u16 ‖ name ‖ data`), in record order.
pub fn archive_merkle_root(archive: &NymArchive) -> MerkleRoot {
    archive_merkle_root_with(archive, &mut Vec::with_capacity(archive.record_count()))
}

/// [`archive_merkle_root`] folding into a caller-owned leaf scratch
/// vector, so repeated root computations (every delta save) reuse one
/// allocation.
pub fn archive_merkle_root_with(archive: &NymArchive, leaves: &mut Vec<MerkleRoot>) -> MerkleRoot {
    leaves.clear();
    for (name, data) in archive.records() {
        leaves.push(record_leaf(name, data));
    }
    merkle_root_from_leaves(leaves)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> NymArchive {
        let mut a = NymArchive::new();
        a.put("anonvm.disk", vec![1; 300]);
        a.put("commvm.disk", vec![2; 200]);
        a.put("meta", b"name=alice".to_vec());
        a
    }

    #[test]
    fn diff_apply_reproduces_exact_archive() {
        let prev = base();
        let mut next = prev.clone();
        next.put("anonvm.disk", vec![9; 350]); // changed
        next.put("browser.state", b"cookies".to_vec()); // new
        next.remove("meta"); // gone
        let delta = DeltaArchive::diff(&prev, &next);
        assert_eq!(
            delta.dirty_records().map(|(n, _)| n).collect::<Vec<_>>(),
            vec!["anonvm.disk", "browser.state"]
        );
        assert_eq!(delta.removed_names().collect::<Vec<_>>(), vec!["meta"]);
        // Only the dirty payload rides the wire.
        assert_eq!(delta.payload_bytes(), 350 + 7);

        let mut replayed = prev.clone();
        delta.apply(&mut replayed).unwrap();
        assert_eq!(replayed, next);
    }

    #[test]
    fn wire_roundtrip() {
        let prev = base();
        let mut next = prev.clone();
        next.put("meta", b"name=alice;v=2".to_vec());
        next.remove("commvm.disk");
        let delta = DeltaArchive::diff(&prev, &next);
        let bytes = delta.to_bytes();
        assert_eq!(bytes.len(), delta.serialized_len());
        assert_eq!(DeltaArchive::from_bytes(&bytes).unwrap(), delta);
    }

    #[test]
    fn empty_delta_roundtrips_and_verifies() {
        let a = base();
        let delta = DeltaArchive::diff(&a, &a);
        assert_eq!(delta.dirty_records().count(), 0);
        assert_eq!(delta.payload_bytes(), 0);
        let delta = DeltaArchive::from_bytes(&delta.to_bytes()).unwrap();
        let mut replayed = a.clone();
        delta.apply(&mut replayed).unwrap();
        assert_eq!(replayed, a);
    }

    #[test]
    fn tampered_record_fails_closed() {
        let prev = base();
        let mut next = prev.clone();
        next.put("anonvm.disk", vec![9; 10]);
        let delta = DeltaArchive::diff(&prev, &next);

        // Tamper with a record the delta does NOT carry: the dirty set
        // authenticates fine record-by-record, only the full-set root
        // catches it.
        let mut stale_base = prev.clone();
        stale_base.put("commvm.disk", vec![0xEE; 200]);
        let mut replayed = stale_base;
        assert_eq!(delta.apply(&mut replayed), Err(DeltaError::RootMismatch));

        // Tamper with the carried record's bytes on the wire (the last
        // payload byte sits just before the trailing removed_count u32).
        let mut bytes = delta.to_bytes();
        let last_payload = bytes.len() - 5;
        bytes[last_payload] ^= 1;
        let evil = DeltaArchive::from_bytes(&bytes).unwrap();
        let mut replayed = prev.clone();
        assert_eq!(evil.apply(&mut replayed), Err(DeltaError::RootMismatch));
    }

    #[test]
    fn wrong_base_fails_closed() {
        let prev = base();
        let mut next = prev.clone();
        next.put("meta", b"v2".to_vec());
        let delta = DeltaArchive::diff(&prev, &next);
        // Replaying against an archive with an extra record: count check.
        let mut fat = prev.clone();
        fat.put("extra", vec![1]);
        assert_eq!(delta.apply(&mut fat), Err(DeltaError::CountMismatch));
    }

    #[test]
    fn hostile_bytes_rejected_without_panic() {
        assert_eq!(
            DeltaArchive::from_bytes(b"NYMD"),
            Err(DeltaError::Malformed)
        );
        assert_eq!(
            DeltaArchive::from_bytes(b"NYM1aaaaaaaa"),
            Err(DeltaError::Malformed)
        );
        // Hostile data_len near u64::MAX inside a dirty record.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 32]);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.push(b'x');
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(DeltaArchive::from_bytes(&bytes), Err(DeltaError::Malformed));
        // Huge removed_count with no bytes behind it.
        let mut bytes = DeltaArchive::new(0, [0; 32]).to_bytes();
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(DeltaArchive::from_bytes(&bytes), Err(DeltaError::Malformed));
    }

    #[test]
    fn diff_with_matches_scratch_diff() {
        // Data-only edits (fast path), new records, and removals
        // (shape-change path) must all commit to the scratch root.
        let mut prev = base();
        let mut commitment = ArchiveCommitment::build(&prev);
        assert_eq!(commitment.root(), archive_merkle_root(&prev));

        // Data-only change: cached shape holds, only one leaf rehashes.
        let mut next = prev.clone();
        next.put("anonvm.disk", vec![7; 350]);
        let delta = DeltaArchive::diff_with(&prev, &next, &mut commitment);
        assert_eq!(delta, DeltaArchive::diff(&prev, &next));
        assert_eq!(*delta.root(), archive_merkle_root(&next));
        prev = next;

        // New record + removal: the shape-change path.
        let mut next = prev.clone();
        next.put("browser.state", b"cookies".to_vec());
        next.remove("meta");
        let delta = DeltaArchive::diff_with(&prev, &next, &mut commitment);
        assert_eq!(delta, DeltaArchive::diff(&prev, &next));
        assert_eq!(*delta.root(), archive_merkle_root(&next));

        // The commitment now reflects `next` and keeps chaining.
        let prev = next;
        let mut next = prev.clone();
        next.put("commvm.disk", vec![3; 64]);
        let delta = DeltaArchive::diff_with(&prev, &next, &mut commitment);
        assert_eq!(delta, DeltaArchive::diff(&prev, &next));
    }

    #[test]
    fn apply_with_matches_apply() {
        let prev = base();
        let mut next = prev.clone();
        next.put("anonvm.disk", vec![9; 350]);
        next.put("browser.state", b"cookies".to_vec());
        next.remove("meta");
        let delta = DeltaArchive::diff(&prev, &next);

        let mut replayed = prev.clone();
        let mut commitment = ArchiveCommitment::build(&replayed);
        delta.apply_with(&mut replayed, &mut commitment).unwrap();
        assert_eq!(replayed, next);
        // The threaded commitment now reflects the replayed state.
        assert_eq!(commitment.root(), archive_merkle_root(&next));
    }

    #[test]
    fn apply_with_fails_closed_like_apply() {
        let prev = base();
        let mut next = prev.clone();
        next.put("anonvm.disk", vec![9; 10]);
        let delta = DeltaArchive::diff(&prev, &next);

        // A record the delta does not carry was tampered in the base:
        // the cached leaf for it is *clean of the delta's dirty set*,
        // so the incremental verify must still catch it — the stale
        // cache hash disagrees with the tampered bytes' contribution
        // only through the root the attacker cannot forge. Build the
        // commitment over the *tampered* base, as restore would.
        let mut tampered = prev.clone();
        tampered.put("commvm.disk", vec![0xEE; 200]);
        let mut commitment = ArchiveCommitment::build(&tampered);
        assert_eq!(
            delta.apply_with(&mut tampered, &mut commitment),
            Err(DeltaError::RootMismatch)
        );

        // Count mismatch fails before any hashing.
        let mut fat = prev.clone();
        fat.put("extra", vec![1]);
        let mut commitment = ArchiveCommitment::build(&fat);
        assert_eq!(
            delta.apply_with(&mut fat, &mut commitment),
            Err(DeltaError::CountMismatch)
        );
    }

    #[test]
    fn commitment_update_handles_reorder() {
        // Same name set, different record order: the shape check must
        // catch it (order is part of the commitment).
        let a = base();
        let mut commitment = ArchiveCommitment::build(&a);
        let mut reordered = NymArchive::new();
        let records: Vec<_> = a
            .records()
            .map(|(n, d)| (n.to_string(), d.to_vec()))
            .collect();
        for (name, data) in records.iter().rev() {
            reordered.put(name, data.clone());
        }
        let root = commitment.update(&reordered, |_| false);
        assert_eq!(root, archive_merkle_root(&reordered));
        assert_ne!(root, archive_merkle_root(&a));
    }

    #[test]
    fn root_scratch_reuse_matches() {
        let a = base();
        let mut scratch = Vec::new();
        let r1 = archive_merkle_root_with(&a, &mut scratch);
        assert_eq!(r1, archive_merkle_root(&a));
        // Scratch reuse across different archives stays correct.
        let mut b = a.clone();
        b.put("meta", b"changed".to_vec());
        let r2 = archive_merkle_root_with(&b, &mut scratch);
        assert_ne!(r1, r2);
        assert_eq!(r2, archive_merkle_root(&b));
    }
}
