//! Exhaustive crash-point matrix for the journaled disk store.
//!
//! For *every* write/fsync boundary of a batch commit, and for every
//! crash mode in the covering set (nothing landed, each whole-write
//! prefix, torn final sector, single-file reordering, everything
//! landed), this suite kills the device, reopens the image, and checks
//! the recovered store is exactly the pre-batch or the post-batch
//! state — never a blend — and that recovering twice equals recovering
//! once. CI runs this under `--release` (the `crash-matrix` job), the
//! profile where unchecked-arithmetic torn-write bugs actually
//! manifest.

use std::collections::BTreeMap;

use nymix_store::{CrashMode, DiskStore, FaultPlan, ObjectBackend, SimDisk};

fn contents(store: &mut DiskStore) -> BTreeMap<String, Vec<u8>> {
    let mut names = Vec::new();
    store.list(&mut names).unwrap();
    names
        .into_iter()
        .map(|n| {
            let d = store.get(&n).unwrap().expect("listed object").to_vec();
            (n, d)
        })
        .collect()
}

/// A baseline store shaped like a mid-life nym label: a base blob, an
/// epoch record, and a couple of chunk objects about to be retired.
fn baseline() -> DiskStore {
    let mut s = DiskStore::new();
    s.put_many(vec![
        ("nym:a@disk".into(), vec![0x11; 700]),
        ("nym:a@disk/snapshot.epoch".into(), b"e1".to_vec()),
        ("nym:a@disk#e1/c/aaaa".into(), vec![0x22; 300]),
        ("nym:a@disk#e1/c/bbbb".into(), vec![0x33; 90]),
    ])
    .unwrap();
    s
}

/// The batch under test: a GC-shaped transaction — new epoch objects
/// land while retired ones are deleted, in one atomic apply_batch.
fn gc_batch(s: &mut DiskStore) -> Result<(), nymix_store::BackendError> {
    s.apply_batch(
        vec![
            ("nym:a@disk".into(), vec![0x44; 650]),
            ("nym:a@disk/snapshot.epoch".into(), b"e2".to_vec()),
            ("nym:a@disk#e2/c/cccc".into(), vec![0x55; 420]),
        ],
        vec!["nym:a@disk#e1/c/aaaa".into(), "nym:a@disk#e1/c/bbbb".into()],
    )
}

#[test]
fn every_crash_point_recovers_to_pre_or_post_batch() {
    let pre = {
        let mut s = baseline();
        contents(&mut s)
    };
    let post = {
        let mut s = baseline();
        gc_batch(&mut s).unwrap();
        contents(&mut s)
    };
    assert_ne!(pre, post);

    let (mut seen_pre, mut seen_post, mut points) = (0u32, 0u32, 0u32);
    for kill in 0u64.. {
        let mut s = baseline();
        let base_ops = s.disk().ops();
        s.set_fault_plan(FaultPlan::kill_at_op(base_ops + kill));
        if gc_batch(&mut s).is_ok() {
            // The kill point lies beyond the batch: matrix exhausted.
            break;
        }
        points += 1;
        let last_len = 64; // torn-tail granularity for the covering set
        for mode in CrashMode::covering_set(s.disk().pending_writes(), last_len) {
            let img = s.crash(mode);
            let mut r = DiskStore::open(img.clone())
                .unwrap_or_else(|e| panic!("kill {kill} {mode:?}: recovery failed: {e}"));
            let got = contents(&mut r);
            if got == pre {
                seen_pre += 1;
            } else if got == post {
                seen_post += 1;
            } else {
                panic!("kill {kill} {mode:?}: intermediate state observed");
            }
            // Chunk GC atomicity: the retired chunks and their
            // replacement never coexist, in either direction.
            let has_old = got.contains_key("nym:a@disk#e1/c/aaaa");
            let has_new = got.contains_key("nym:a@disk#e2/c/cccc");
            assert_ne!(
                has_old, has_new,
                "kill {kill} {mode:?}: mark-and-sweep half-applied"
            );

            // Idempotence: recover the same image again.
            let mut r2 = DiskStore::open(DiskStore::open(img).unwrap().into_disk()).unwrap();
            assert_eq!(
                contents(&mut r2),
                got,
                "kill {kill} {mode:?}: re-recovery differs"
            );
        }
    }
    assert!(points >= 6, "matrix covered only {points} kill points");
    assert!(seen_pre > 0, "no crash point preserved the pre-state");
    assert!(seen_post > 0, "no crash point reached the post-state");
}

#[test]
fn crash_matrix_across_consecutive_batches() {
    // Crash during the second of two batches: the first must survive
    // regardless of mode; the second is all-or-nothing.
    let batch1 = vec![("one".to_string(), vec![1u8; 120])];
    let batch2 = vec![
        ("two".to_string(), vec![2u8; 80]),
        ("one".to_string(), vec![9u8; 40]), // overwrite
    ];
    for kill in 0u64..16 {
        let mut s = DiskStore::new();
        s.put_many(batch1.clone()).unwrap();
        let base_ops = s.disk().ops();
        s.set_fault_plan(FaultPlan::kill_at_op(base_ops + kill));
        if s.put_many(batch2.clone()).is_ok() {
            break;
        }
        for mode in CrashMode::covering_set(s.disk().pending_writes(), 32) {
            let mut r = DiskStore::open(s.crash(mode)).unwrap();
            let got = contents(&mut r);
            match got.get("one").map(|d| d[0]) {
                Some(1) => assert!(!got.contains_key("two"), "{kill} {mode:?}"),
                Some(9) => assert_eq!(got["two"], vec![2u8; 80], "{kill} {mode:?}"),
                other => panic!("{kill} {mode:?}: batch1 lost ({other:?})"),
            }
        }
    }
}

#[test]
fn recovered_store_accepts_new_writes() {
    // Recovery isn't read-only: the store must keep working, and the
    // replayed + new state must survive another graceful reopen.
    let mut s = baseline();
    let base_ops = s.disk().ops();
    s.set_fault_plan(FaultPlan::kill_at_op(base_ops + 2));
    let _ = gc_batch(&mut s);
    let mut r = DiskStore::open(s.crash(CrashMode::JournalOnly)).unwrap();
    r.put("post-recovery", vec![0x77; 33]).unwrap();
    let want = contents(&mut r);
    let mut again = DiskStore::open(r.into_disk()).unwrap();
    assert_eq!(contents(&mut again), want);
}

#[test]
fn bit_flips_on_crashed_images_never_panic() {
    // Crash + media corruption combined: every recovery either
    // succeeds with a consistent store or fails closed. Never panics,
    // never yields a store with unreadable listed objects.
    use nymix_store::disk::FileId;
    let mut s = baseline();
    let base_ops = s.disk().ops();
    s.set_fault_plan(FaultPlan::kill_at_op(base_ops + 3));
    let _ = gc_batch(&mut s);
    let img = s.crash(CrashMode::All);
    for file in [FileId::Journal, FileId::Heap] {
        let nbits = img.len(file) * 8;
        for bit in (0..nbits).step_by(101) {
            let mut flipped: SimDisk = img.clone();
            flipped.corrupt_durable_bit(file, bit);
            if let Ok(mut r) = DiskStore::open(flipped) {
                let mut names = Vec::new();
                r.list(&mut names).unwrap();
                for n in names {
                    assert!(
                        r.get(&n).unwrap().is_some(),
                        "{file:?} bit {bit}: listed but unreadable"
                    );
                }
            }
        }
    }
}
