//! Property-based tests for the storage pipeline.

use nymix_sim::Rng;
use nymix_store::{lzss, open_sealed, seal_archive, DeltaArchive, NymArchive};
use proptest::prelude::*;

proptest! {
    #[test]
    fn lzss_roundtrip_any_bytes(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let packed = lzss::compress(&data);
        prop_assert_eq!(lzss::decompress(&packed).unwrap(), data);
    }

    #[test]
    fn lzss_roundtrip_repetitive(unit in proptest::collection::vec(any::<u8>(), 1..16),
                                 reps in 1usize..400) {
        let data: Vec<u8> = unit.iter().copied().cycle().take(unit.len() * reps).collect();
        let packed = lzss::compress(&data);
        prop_assert_eq!(lzss::decompress(&packed).unwrap(), data);
    }

    #[test]
    fn lzss_decompress_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = lzss::decompress(&garbage); // Result, not panic.
    }

    #[test]
    fn lzss_lazy_roundtrips_and_ratio_tracks_greedy(
        unit in proptest::collection::vec(any::<u8>(), 1..24),
        reps in 1usize..200,
        noise in proptest::collection::vec(any::<u8>(), 0..64)) {
        // Browser-cache-shaped input: a repeated unit with a noisy tail.
        let mut data: Vec<u8> = unit.iter().copied().cycle().take(unit.len() * reps).collect();
        data.extend_from_slice(&noise);
        let mut c = lzss::Compressor::new();
        let mut lazy = Vec::new();
        c.compress_into(&data, &mut lazy);
        let mut greedy = Vec::new();
        c.compress_greedy_into(&data, &mut greedy);
        prop_assert_eq!(lzss::decompress(&lazy).unwrap(), &data[..]);
        prop_assert_eq!(lzss::decompress(&greedy).unwrap(), &data[..]);
        // One-step deferral is not a strict improvement per input — the
        // probe-budget-bounded match finder means the deferred parse can
        // occasionally lose a byte or two — but it must never regress
        // the ratio meaningfully. (The strict ≤ case on realistic
        // markup is pinned by lzss::tests::lazy_beats_greedy_on_html.)
        prop_assert!(lazy.len() <= greedy.len() + 2 + greedy.len() / 100,
                     "lazy {} much worse than greedy {}", lazy.len(), greedy.len());
    }

    #[test]
    fn lzss_lazy_roundtrip_any_bytes(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        // compress() is the lazy parse; it must round-trip arbitrary
        // input including incompressible bytes.
        let mut out = Vec::new();
        lzss::Compressor::new().compress_into(&data, &mut out);
        prop_assert_eq!(lzss::decompress(&out).unwrap(), data);
    }

    #[test]
    fn archive_roundtrip(records in proptest::collection::vec(
        ("[a-z]{1,12}", proptest::collection::vec(any::<u8>(), 0..256)), 0..8)) {
        let mut a = NymArchive::new();
        for (name, data) in &records {
            a.put(name, data.clone());
        }
        let b = NymArchive::from_bytes(&a.to_bytes()).unwrap();
        prop_assert_eq!(a, b);
    }

    // The archive parsers are the trust boundary for bytes fetched from
    // an untrusted backend: arbitrary input must parse or error, never
    // panic and never over-reserve (this suite also runs under
    // `--release`, where unchecked arithmetic wraps instead of
    // panicking — the profile the `Reader::take` overflow shipped in).
    #[test]
    fn archive_parser_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..2048)) {
        if let Ok(a) = NymArchive::from_bytes(&garbage) {
            // Parseable garbage must re-serialize to the same bytes.
            prop_assert_eq!(a.to_bytes(), garbage);
        }
    }

    #[test]
    fn delta_parser_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..2048)) {
        if let Ok(d) = DeltaArchive::from_bytes(&garbage) {
            prop_assert_eq!(d.to_bytes(), garbage);
        }
    }

    #[test]
    fn magic_prefixed_garbage_never_panics(tail in proptest::collection::vec(any::<u8>(), 0..512),
                                           which in 0u8..2) {
        // Force the parser past the magic check into the length-driven
        // record loops.
        let mut bytes = if which == 0 { b"NYM1".to_vec() } else { b"NYMD".to_vec() };
        bytes.extend_from_slice(&tail);
        let _ = NymArchive::from_bytes(&bytes);
        let _ = DeltaArchive::from_bytes(&bytes);
    }

    #[test]
    fn mutated_valid_archive_parses_or_errors(
        records in proptest::collection::vec(
            ("[a-z]{1,12}", proptest::collection::vec(any::<u8>(), 0..128)), 1..6),
        flip in any::<usize>(), bit in 0u8..8) {
        let mut a = NymArchive::new();
        for (name, data) in &records {
            a.put(name, data.clone());
        }
        let mut bytes = a.to_bytes();
        let n = bytes.len();
        bytes[flip % n] ^= 1 << bit;
        // Any single-bit corruption parses or errors — and whatever
        // parses must survive layer extraction attempts too.
        if let Ok(parsed) = NymArchive::from_bytes(&bytes) {
            for name in parsed.names() {
                let _ = parsed.get_layer(name);
            }
        }
    }

    #[test]
    fn mutated_valid_delta_parses_or_errors(
        seed_data in proptest::collection::vec(any::<u8>(), 1..128),
        flip in any::<usize>(), bit in 0u8..8) {
        let mut prev = NymArchive::new();
        prev.put("disk", seed_data.clone());
        prev.put("meta", b"m".to_vec());
        let mut next = prev.clone();
        next.put("disk", [seed_data, vec![1, 2, 3]].concat());
        next.remove("meta");
        let delta = DeltaArchive::diff(&prev, &next);
        let mut bytes = delta.to_bytes();
        let n = bytes.len();
        bytes[flip % n] ^= 1 << bit;
        if let Ok(mutated) = DeltaArchive::from_bytes(&bytes) {
            // Replay of a corrupted-but-parseable delta must verify
            // (the flip hit bytes outside the commitment's view, i.e.
            // re-encode identically) or fail closed — never panic.
            let mut base = prev.clone();
            if mutated.apply(&mut base).is_ok() {
                prop_assert_eq!(mutated.to_bytes(), delta.to_bytes());
            }
        }
    }

    #[test]
    fn sealed_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..2048),
                        seed in any::<u64>()) {
        let mut a = NymArchive::new();
        a.put("disk", data);
        let blob = seal_archive(&a, "password", "label", &mut Rng::seed_from(seed));
        prop_assert_eq!(open_sealed(&blob, "password", "label").unwrap(), a);
    }

    #[test]
    fn sealed_bitflip_always_detected(seed in any::<u64>(), flip in any::<usize>(), bit in 0u8..8) {
        let mut a = NymArchive::new();
        a.put("disk", vec![0x42; 100]);
        let mut blob = seal_archive(&a, "pw", "l", &mut Rng::seed_from(seed));
        let n = blob.len();
        // Flipping anywhere after the magic must fail auth (flips in the
        // salt/nonce change the derived key/stream; flips in the
        // ciphertext break the tag).
        let idx = 4 + (flip % (n - 4));
        blob[idx] ^= 1 << bit;
        prop_assert!(open_sealed(&blob, "pw", "l").is_err());
    }
}
