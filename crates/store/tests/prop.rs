//! Property-based tests for the storage pipeline.

use nymix_sim::Rng;
use nymix_store::{
    chunker, lzss, open_sealed, seal_archive, ChunkManifest, DeltaArchive, NymArchive,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn lzss_roundtrip_any_bytes(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let packed = lzss::compress(&data);
        prop_assert_eq!(lzss::decompress(&packed).unwrap(), data);
    }

    #[test]
    fn lzss_roundtrip_repetitive(unit in proptest::collection::vec(any::<u8>(), 1..16),
                                 reps in 1usize..400) {
        let data: Vec<u8> = unit.iter().copied().cycle().take(unit.len() * reps).collect();
        let packed = lzss::compress(&data);
        prop_assert_eq!(lzss::decompress(&packed).unwrap(), data);
    }

    #[test]
    fn lzss_decompress_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = lzss::decompress(&garbage); // Result, not panic.
    }

    #[test]
    fn lzss_lazy_roundtrips_and_ratio_tracks_greedy(
        unit in proptest::collection::vec(any::<u8>(), 1..24),
        reps in 1usize..200,
        noise in proptest::collection::vec(any::<u8>(), 0..64)) {
        // Browser-cache-shaped input: a repeated unit with a noisy tail.
        let mut data: Vec<u8> = unit.iter().copied().cycle().take(unit.len() * reps).collect();
        data.extend_from_slice(&noise);
        let mut c = lzss::Compressor::new();
        let mut lazy = Vec::new();
        c.compress_into(&data, &mut lazy);
        let mut greedy = Vec::new();
        c.compress_greedy_into(&data, &mut greedy);
        prop_assert_eq!(lzss::decompress(&lazy).unwrap(), &data[..]);
        prop_assert_eq!(lzss::decompress(&greedy).unwrap(), &data[..]);
        // One-step deferral is not a strict improvement per input — the
        // probe-budget-bounded match finder means the deferred parse can
        // occasionally lose a byte or two — but it must never regress
        // the ratio meaningfully. (The strict ≤ case on realistic
        // markup is pinned by lzss::tests::lazy_beats_greedy_on_html.)
        prop_assert!(lazy.len() <= greedy.len() + 2 + greedy.len() / 100,
                     "lazy {} much worse than greedy {}", lazy.len(), greedy.len());
    }

    #[test]
    fn lzss_lazy_roundtrip_any_bytes(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        // compress() is the lazy parse; it must round-trip arbitrary
        // input including incompressible bytes.
        let mut out = Vec::new();
        lzss::Compressor::new().compress_into(&data, &mut out);
        prop_assert_eq!(lzss::decompress(&out).unwrap(), data);
    }

    #[test]
    fn archive_roundtrip(records in proptest::collection::vec(
        ("[a-z]{1,12}", proptest::collection::vec(any::<u8>(), 0..256)), 0..8)) {
        let mut a = NymArchive::new();
        for (name, data) in &records {
            a.put(name, data.clone());
        }
        let b = NymArchive::from_bytes(&a.to_bytes()).unwrap();
        prop_assert_eq!(a, b);
    }

    // The archive parsers are the trust boundary for bytes fetched from
    // an untrusted backend: arbitrary input must parse or error, never
    // panic and never over-reserve (this suite also runs under
    // `--release`, where unchecked arithmetic wraps instead of
    // panicking — the profile the `Reader::take` overflow shipped in).
    #[test]
    fn archive_parser_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..2048)) {
        if let Ok(a) = NymArchive::from_bytes(&garbage) {
            // Parseable garbage must re-serialize to the same bytes.
            prop_assert_eq!(a.to_bytes(), garbage);
        }
    }

    #[test]
    fn delta_parser_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..2048)) {
        if let Ok(d) = DeltaArchive::from_bytes(&garbage) {
            prop_assert_eq!(d.to_bytes(), garbage);
        }
    }

    #[test]
    fn magic_prefixed_garbage_never_panics(tail in proptest::collection::vec(any::<u8>(), 0..512),
                                           which in 0u8..2) {
        // Force the parser past the magic check into the length-driven
        // record loops.
        let mut bytes = if which == 0 { b"NYM1".to_vec() } else { b"NYMD".to_vec() };
        bytes.extend_from_slice(&tail);
        let _ = NymArchive::from_bytes(&bytes);
        let _ = DeltaArchive::from_bytes(&bytes);
    }

    #[test]
    fn mutated_valid_archive_parses_or_errors(
        records in proptest::collection::vec(
            ("[a-z]{1,12}", proptest::collection::vec(any::<u8>(), 0..128)), 1..6),
        flip in any::<usize>(), bit in 0u8..8) {
        let mut a = NymArchive::new();
        for (name, data) in &records {
            a.put(name, data.clone());
        }
        let mut bytes = a.to_bytes();
        let n = bytes.len();
        bytes[flip % n] ^= 1 << bit;
        // Any single-bit corruption parses or errors — and whatever
        // parses must survive layer extraction attempts too.
        if let Ok(parsed) = NymArchive::from_bytes(&bytes) {
            for name in parsed.names() {
                let _ = parsed.get_layer(name);
            }
        }
    }

    #[test]
    fn mutated_valid_delta_parses_or_errors(
        seed_data in proptest::collection::vec(any::<u8>(), 1..128),
        flip in any::<usize>(), bit in 0u8..8) {
        let mut prev = NymArchive::new();
        prev.put("disk", seed_data.clone());
        prev.put("meta", b"m".to_vec());
        let mut next = prev.clone();
        next.put("disk", [seed_data, vec![1, 2, 3]].concat());
        next.remove("meta");
        let delta = DeltaArchive::diff(&prev, &next);
        let mut bytes = delta.to_bytes();
        let n = bytes.len();
        bytes[flip % n] ^= 1 << bit;
        if let Ok(mutated) = DeltaArchive::from_bytes(&bytes) {
            // Replay of a corrupted-but-parseable delta must verify
            // (the flip hit bytes outside the commitment's view, i.e.
            // re-encode identically) or fail closed — never panic.
            let mut base = prev.clone();
            if mutated.apply(&mut base).is_ok() {
                prop_assert_eq!(mutated.to_bytes(), delta.to_bytes());
            }
        }
    }

    // The chunker feeds the content-addressed store: its boundaries
    // must be deterministic, lossless, within bounds, and local to an
    // edit — otherwise chunk IDs churn and dedup evaporates.
    #[test]
    fn chunker_is_deterministic_lossless_and_bounded(
        data in proptest::collection::vec(any::<u8>(), 0..100_000)) {
        let a: Vec<&[u8]> = chunker::chunks(&data).collect();
        let b: Vec<&[u8]> = chunker::chunks(&data).collect();
        prop_assert_eq!(&a, &b, "chunking must be deterministic");
        prop_assert_eq!(a.concat(), data.clone());
        for (i, c) in a.iter().enumerate() {
            prop_assert!(!c.is_empty());
            prop_assert!(c.len() <= chunker::MAX_CHUNK);
            if i + 1 < a.len() {
                prop_assert!(c.len() >= chunker::MIN_CHUNK, "short non-tail chunk");
            }
        }
    }

    #[test]
    fn chunker_single_byte_edit_is_local(
        data in proptest::collection::vec(any::<u8>(), 20_000..80_000),
        at in any::<usize>(), flip in 1u8..255) {
        let before: Vec<Vec<u8>> = chunker::chunks(&data).map(<[u8]>::to_vec).collect();
        let mut edited = data.clone();
        let at = at % edited.len();
        edited[at] ^= flip;
        let after: Vec<Vec<u8>> = chunker::chunks(&edited).map(<[u8]>::to_vec).collect();
        // Chunks strictly before the edit are untouched (boundaries are
        // decided left to right from the previous boundary)...
        let mut offset = 0usize;
        for (a, b) in before.iter().zip(after.iter()) {
            if offset + a.len() > at {
                break;
            }
            prop_assert_eq!(a, b, "pre-edit chunk at {} changed", offset);
            offset += a.len();
        }
        // ...and the edit perturbs only a handful of chunks before the
        // streams re-synchronize.
        let prefix = before.iter().zip(after.iter()).take_while(|(a, b)| a == b).count();
        let suffix = before.iter().rev().zip(after.iter().rev())
            .take_while(|(a, b)| a == b).count();
        let changed = before.len().max(after.len()).saturating_sub(prefix + suffix);
        prop_assert!(changed <= 4, "edit changed {} of {} chunks", changed, before.len());
    }

    #[test]
    fn chunker_resyncs_after_prefix_insertion(
        prefix in proptest::collection::vec(any::<u8>(), 1..5_000),
        stream_len in 40_000usize..90_000,
        stream_seed in any::<u64>()) {
        // Concatenating new bytes in front of a stream must re-chunk
        // identically past the edit window: once a boundary of the
        // longer stream lands on a boundary of the original, every
        // later chunk is byte-identical (this is what makes insertions
        // cheap, where fixed-size chunking would shift every block).
        // The stream is entropy-rich by construction — cut candidates
        // are content-defined, so a pathological constant stream has
        // none and only MAX-forced (offset-relative) cuts.
        let mut stream = vec![0u8; stream_len];
        let mut x = stream_seed | 1;
        for b in stream.iter_mut() {
            x ^= x >> 12; x ^= x << 25; x ^= x >> 27;
            *b = (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8;
        }
        let shifted: Vec<u8> = prefix.iter().chain(stream.iter()).copied().collect();
        let orig: Vec<Vec<u8>> = chunker::chunks(&stream).map(<[u8]>::to_vec).collect();
        let moved: Vec<Vec<u8>> = chunker::chunks(&shifted).map(<[u8]>::to_vec).collect();
        let shared_suffix = orig.iter().rev().zip(moved.iter().rev())
            .take_while(|(a, b)| a == b).count();
        let tail_bytes: usize = orig.iter().rev().take(shared_suffix).map(Vec::len).sum();
        prop_assert!(
            stream.len() - tail_bytes <= prefix.len() + 6 * chunker::AVG_CHUNK,
            "resync took {} bytes ({} shared trailing chunks of {})",
            stream.len() - tail_bytes, shared_suffix, orig.len()
        );
    }

    // NYMC manifests ride inside archives fetched from untrusted
    // backends: the parser must never panic, and whatever parses must
    // re-serialize identically (same guarantee the NYM1/NYMD parsers
    // give).
    #[test]
    fn manifest_parser_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..2048)) {
        if let Ok(m) = ChunkManifest::from_bytes(&garbage) {
            prop_assert_eq!(m.to_bytes(), garbage);
        }
    }

    #[test]
    fn manifest_magic_prefixed_garbage_never_panics(
        tail in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut bytes = b"NYMC".to_vec();
        bytes.extend_from_slice(&tail);
        let _ = ChunkManifest::from_bytes(&bytes);
    }

    #[test]
    fn mutated_valid_manifest_parses_or_errors(
        len in 33_000usize..120_000,
        seed in any::<u64>(),
        flip in any::<usize>(), bit in 0u8..8) {
        // A real manifest with one flipped bit parses (re-encoding
        // identically, i.e. the flip landed in an id) or errors; the
        // structural invariants (lengths bounded and summing to the
        // total) catch every length corruption.
        let mut data = vec![0u8; len];
        let mut x = seed | 1;
        for b in data.iter_mut() {
            x ^= x >> 12; x ^= x << 25; x ^= x >> 27;
            *b = (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8;
        }
        let manifest = ChunkManifest::build(&data);
        let mut bytes = manifest.to_bytes();
        let n = bytes.len();
        bytes[flip % n] ^= 1 << bit;
        if let Ok(parsed) = ChunkManifest::from_bytes(&bytes) {
            prop_assert_eq!(parsed.to_bytes(), bytes);
            prop_assert_eq!(parsed.total_len(),
                parsed.chunks().map(|(_, l)| l).sum::<usize>());
        }
    }

    #[test]
    fn sealed_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..2048),
                        seed in any::<u64>()) {
        let mut a = NymArchive::new();
        a.put("disk", data);
        let blob = seal_archive(&a, "password", "label", &mut Rng::seed_from(seed));
        prop_assert_eq!(open_sealed(&blob, "password", "label").unwrap(), a);
    }

    #[test]
    fn sealed_bitflip_always_detected(seed in any::<u64>(), flip in any::<usize>(), bit in 0u8..8) {
        let mut a = NymArchive::new();
        a.put("disk", vec![0x42; 100]);
        let mut blob = seal_archive(&a, "pw", "l", &mut Rng::seed_from(seed));
        let n = blob.len();
        // Flipping anywhere after the magic must fail auth (flips in the
        // salt/nonce change the derived key/stream; flips in the
        // ciphertext break the tag).
        let idx = 4 + (flip % (n - 4));
        blob[idx] ^= 1 << bit;
        prop_assert!(open_sealed(&blob, "pw", "l").is_err());
    }
}

// ---------------------------------------------------------------------
// DiskStore crash consistency (PR 3 hostile-bytes style, applied to the
// journaled on-disk formats).

use nymix_store::disk::FileId;
use nymix_store::{CrashMode, DiskStore, FaultPlan, ObjectBackend};

/// Everything a store holds, by exhaustive read-back.
fn disk_contents(store: &mut DiskStore) -> Vec<(String, Vec<u8>)> {
    let mut names = Vec::new();
    store.list(&mut names).unwrap();
    names
        .into_iter()
        .map(|n| {
            let d = store.get(&n).unwrap().expect("listed object").to_vec();
            (n, d)
        })
        .collect()
}

/// Builds a store holding `objects`, runs one more batch with a fault
/// plan killing at `kill`, and returns the poisoned store (or None if
/// the batch completed before the kill point).
fn crashed_store(
    objects: &[(String, Vec<u8>)],
    batch: &[(String, Vec<u8>)],
    kill: u64,
) -> Option<DiskStore> {
    let mut s = DiskStore::new();
    if !objects.is_empty() {
        s.put_many(objects.to_vec()).unwrap();
    }
    let base = s.disk().ops();
    s.set_fault_plan(FaultPlan::kill_at_op(base + kill));
    match s.put_many(batch.to_vec()) {
        Ok(()) => None,
        Err(_) => Some(s),
    }
}

proptest! {
    // Recovering twice is recovering once: open(crash) and
    // open(open(crash).close()) observe identical contents.
    #[test]
    fn disk_recovery_is_idempotent(
        base in proptest::collection::vec(("[a-z]{1,8}", proptest::collection::vec(any::<u8>(), 0..200)), 0..4),
        batch in proptest::collection::vec(("[a-z]{1,8}", proptest::collection::vec(any::<u8>(), 0..200)), 1..4),
        kill in 0u64..8,
        mode_sel in any::<u8>()) {
        if let Some(s) = crashed_store(&base, &batch, kill) {
            let modes = CrashMode::covering_set(s.disk().pending_writes(), 16);
            let mode = modes[mode_sel as usize % modes.len()];
            let img = s.crash(mode);
            let mut once = DiskStore::open(img.clone()).expect("recovery");
            let mut twice =
                DiskStore::open(DiskStore::open(img).expect("recovery").into_disk())
                    .expect("re-recovery");
            prop_assert_eq!(disk_contents(&mut once), disk_contents(&mut twice));
        }
    }

    // A crash leaves exactly the pre-batch or post-batch object set —
    // never a prefix, never a blend.
    #[test]
    fn disk_crash_is_all_or_nothing(
        base in proptest::collection::vec(("[a-z]{1,8}", proptest::collection::vec(any::<u8>(), 0..200)), 0..4),
        batch in proptest::collection::vec(("[a-z]{1,8}", proptest::collection::vec(any::<u8>(), 0..200)), 1..4),
        kill in 0u64..8,
        mode_sel in any::<u8>()) {
        let pre = {
            let mut s = DiskStore::new();
            if !base.is_empty() { s.put_many(base.clone()).unwrap(); }
            disk_contents(&mut s)
        };
        let post = {
            let mut s = DiskStore::new();
            if !base.is_empty() { s.put_many(base.clone()).unwrap(); }
            s.put_many(batch.clone()).unwrap();
            disk_contents(&mut s)
        };
        if let Some(s) = crashed_store(&base, &batch, kill) {
            let modes = CrashMode::covering_set(s.disk().pending_writes(), 16);
            let mode = modes[mode_sel as usize % modes.len()];
            let mut r = DiskStore::open(s.crash(mode)).expect("recovery");
            let got = disk_contents(&mut r);
            prop_assert!(got == pre || got == post,
                         "intermediate state after kill {} mode {:?}", kill, mode);
        }
    }

    // Arbitrary bytes appended after the journal's live region — stale
    // batch residue, hostile trailing garbage — parse or are discarded;
    // open never panics and committed data stays readable.
    #[test]
    fn journal_trailing_bytes_parse_or_fail_closed(
        garbage in proptest::collection::vec(any::<u8>(), 0..512),
        at_live_region in any::<bool>()) {
        let mut s = DiskStore::new();
        s.put("committed", vec![0x5A; 64]).unwrap();
        let mut img = s.into_disk();
        // A hostile writer appends (or overwrites the batch region
        // with) garbage and even gets it synced.
        let at = if at_live_region { 128 } else { img.len(FileId::Journal) };
        img.write(FileId::Journal, at, &garbage).unwrap();
        img.fsync(FileId::Journal).unwrap();
        // Failing closed is acceptable; panicking is not.
        if let Ok(mut r) = DiskStore::open(img) {
            prop_assert_eq!(r.get("committed").unwrap(), Some(&[0x5A; 64][..]));
        }
    }

    // Any single bit flipped anywhere on either file: open returns a
    // store or an error, never panics — and if it returns a store, the
    // store is internally consistent (every listed object readable).
    #[test]
    fn disk_image_bitflip_never_panics(
        journal_file in any::<bool>(),
        bit in any::<usize>()) {
        let mut s = DiskStore::new();
        s.put("a", vec![1; 100]).unwrap();
        s.put_many(vec![("b".into(), vec![2; 50]), ("a".into(), vec![3; 25])]).unwrap();
        let mut img = s.into_disk();
        let file = if journal_file { FileId::Journal } else { FileId::Heap };
        let nbits = img.len(file).max(1) * 8;
        img.corrupt_durable_bit(file, bit % nbits);
        if let Ok(mut r) = DiskStore::open(img) {
            let mut names = Vec::new();
            r.list(&mut names).unwrap();
            for n in names {
                prop_assert!(r.get(&n).unwrap().is_some());
            }
        }
    }
}

// ---------------------------------------------------------------------
// Placement shards (NYMP) and the erasure layer. A shard blob fetched
// from a provider is hostile bytes — same trust boundary as the
// archive parsers above — and the placement store must never hand back
// wrong bytes while corruption stays within the geometry's tolerance.

use nymix_store::placement::{gf256, shard};
use nymix_store::{LocalStore, PlacementStore};

/// Seeded xorshift step shared by the placement proptests.
fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x >> 12;
    *x ^= *x << 25;
    *x ^= *x >> 27;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Flips one seeded bit of child `ci`'s stored shard for `name`.
fn corrupt_child(store: &mut PlacementStore<LocalStore>, ci: usize, name: &str, x: &mut u64) {
    let mut blob = LocalStore::get(store.child_mut(ci), name)
        .expect("shard written")
        .to_vec();
    let bit = xorshift(x) as usize % (blob.len() * 8);
    blob[bit / 8] ^= 1 << (bit % 8);
    LocalStore::put(store.child_mut(ci), name, blob);
}

proptest! {
    #[test]
    fn shard_parser_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = shard::decode_shard(&garbage, "chain#e1.2");
    }

    #[test]
    fn magic_prefixed_shard_garbage_never_accepted(
        tail in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Force the parser past the magic/version checks into the
        // geometry/length gauntlet: random bytes can never satisfy the
        // 32-byte hash binding, so nothing here may ever be accepted.
        let mut bytes = shard::MAGIC.to_vec();
        bytes.push(shard::VERSION);
        bytes.extend_from_slice(&tail);
        prop_assert!(shard::decode_shard(&bytes, "x").is_err());
    }

    // Any k of the n erasure shards reconstruct the object exactly —
    // the identity the whole placement layer stands on.
    #[test]
    fn erasure_any_k_subset_reconstructs(
        k in 1usize..5, parity in 0usize..4,
        data in proptest::collection::vec(any::<u8>(), 0..4096),
        seed in any::<u64>()) {
        let n = k + parity;
        let shards = gf256::encode(&data, k, n);
        prop_assert_eq!(shards.len(), n);
        // A seeded Fisher-Yates picks which k shards survive.
        let mut order: Vec<usize> = (0..n).collect();
        let mut x = seed | 1;
        for i in (1..n).rev() {
            let j = xorshift(&mut x) as usize % (i + 1);
            order.swap(i, j);
        }
        let picked: Vec<(usize, &[u8])> =
            order[..k].iter().map(|&i| (i, shards[i].as_slice())).collect();
        let rebuilt = gf256::reconstruct(&picked, k, data.len()).expect("k shards suffice");
        prop_assert_eq!(rebuilt, data);
    }

    // Corrupting up to n−k stored shards never yields wrong bytes: the
    // per-shard hash excludes every corrupted shard *before* the
    // decoder runs, and the ≥ k intact survivors reconstruct exactly.
    #[test]
    fn corruption_within_tolerance_reconstructs_exactly(
        k in 1usize..4, parity in 0usize..3,
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        seed in any::<u64>()) {
        let n = k + parity;
        let mut store = PlacementStore::new((0..n).map(|_| LocalStore::new()).collect(), k);
        store.put("obj", data.clone()).unwrap();
        let mut x = seed | 1;
        let corrupt = seed as usize % (parity + 1);
        for ci in 0..corrupt {
            corrupt_child(&mut store, ci, "obj", &mut x);
        }
        let got = store.get("obj").expect("k intact shards remain").expect("object present");
        prop_assert_eq!(got, &data[..]);
    }

    // Past the tolerance — fewer than k intact shards — the read fails
    // closed: an error, never absence and never wrong bytes.
    #[test]
    fn corruption_beyond_tolerance_fails_closed(
        k in 1usize..4, parity in 0usize..3,
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        seed in any::<u64>()) {
        let n = k + parity;
        let mut store = PlacementStore::new((0..n).map(|_| LocalStore::new()).collect(), k);
        store.put("obj", data.clone()).unwrap();
        let mut x = seed | 1;
        let corrupt = parity + 1 + seed as usize % (n - parity);
        for ci in 0..corrupt {
            corrupt_child(&mut store, ci, "obj", &mut x);
        }
        prop_assert!(store.get("obj").is_err(), "read past tolerance must fail closed");
    }
}
