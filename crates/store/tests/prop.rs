//! Property-based tests for the storage pipeline.

use nymix_sim::Rng;
use nymix_store::{lzss, open_sealed, seal_archive, NymArchive};
use proptest::prelude::*;

proptest! {
    #[test]
    fn lzss_roundtrip_any_bytes(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let packed = lzss::compress(&data);
        prop_assert_eq!(lzss::decompress(&packed).unwrap(), data);
    }

    #[test]
    fn lzss_roundtrip_repetitive(unit in proptest::collection::vec(any::<u8>(), 1..16),
                                 reps in 1usize..400) {
        let data: Vec<u8> = unit.iter().copied().cycle().take(unit.len() * reps).collect();
        let packed = lzss::compress(&data);
        prop_assert_eq!(lzss::decompress(&packed).unwrap(), data);
    }

    #[test]
    fn lzss_decompress_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = lzss::decompress(&garbage); // Result, not panic.
    }

    #[test]
    fn lzss_lazy_roundtrips_and_ratio_tracks_greedy(
        unit in proptest::collection::vec(any::<u8>(), 1..24),
        reps in 1usize..200,
        noise in proptest::collection::vec(any::<u8>(), 0..64)) {
        // Browser-cache-shaped input: a repeated unit with a noisy tail.
        let mut data: Vec<u8> = unit.iter().copied().cycle().take(unit.len() * reps).collect();
        data.extend_from_slice(&noise);
        let mut c = lzss::Compressor::new();
        let mut lazy = Vec::new();
        c.compress_into(&data, &mut lazy);
        let mut greedy = Vec::new();
        c.compress_greedy_into(&data, &mut greedy);
        prop_assert_eq!(lzss::decompress(&lazy).unwrap(), &data[..]);
        prop_assert_eq!(lzss::decompress(&greedy).unwrap(), &data[..]);
        // One-step deferral is not a strict improvement per input — the
        // probe-budget-bounded match finder means the deferred parse can
        // occasionally lose a byte or two — but it must never regress
        // the ratio meaningfully. (The strict ≤ case on realistic
        // markup is pinned by lzss::tests::lazy_beats_greedy_on_html.)
        prop_assert!(lazy.len() <= greedy.len() + 2 + greedy.len() / 100,
                     "lazy {} much worse than greedy {}", lazy.len(), greedy.len());
    }

    #[test]
    fn lzss_lazy_roundtrip_any_bytes(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        // compress() is the lazy parse; it must round-trip arbitrary
        // input including incompressible bytes.
        let mut out = Vec::new();
        lzss::Compressor::new().compress_into(&data, &mut out);
        prop_assert_eq!(lzss::decompress(&out).unwrap(), data);
    }

    #[test]
    fn archive_roundtrip(records in proptest::collection::vec(
        ("[a-z]{1,12}", proptest::collection::vec(any::<u8>(), 0..256)), 0..8)) {
        let mut a = NymArchive::new();
        for (name, data) in &records {
            a.put(name, data.clone());
        }
        let b = NymArchive::from_bytes(&a.to_bytes()).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn sealed_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..2048),
                        seed in any::<u64>()) {
        let mut a = NymArchive::new();
        a.put("disk", data);
        let blob = seal_archive(&a, "password", "label", &mut Rng::seed_from(seed));
        prop_assert_eq!(open_sealed(&blob, "password", "label").unwrap(), a);
    }

    #[test]
    fn sealed_bitflip_always_detected(seed in any::<u64>(), flip in any::<usize>(), bit in 0u8..8) {
        let mut a = NymArchive::new();
        a.put("disk", vec![0x42; 100]);
        let mut blob = seal_archive(&a, "pw", "l", &mut Rng::seed_from(seed));
        let n = blob.len();
        // Flipping anywhere after the magic must fail auth (flips in the
        // salt/nonce change the derived key/stream; flips in the
        // ciphertext break the tag).
        let idx = 4 + (flip % (n - 4));
        blob[idx] ^= 1 << bit;
        prop_assert!(open_sealed(&blob, "pw", "l").is_err());
    }
}
