//! Property-based tests for the storage pipeline.

use nymix_sim::Rng;
use nymix_store::{
    chunker, lzss, open_sealed, seal_archive, ChunkManifest, DeltaArchive, NymArchive,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn lzss_roundtrip_any_bytes(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let packed = lzss::compress(&data);
        prop_assert_eq!(lzss::decompress(&packed).unwrap(), data);
    }

    #[test]
    fn lzss_roundtrip_repetitive(unit in proptest::collection::vec(any::<u8>(), 1..16),
                                 reps in 1usize..400) {
        let data: Vec<u8> = unit.iter().copied().cycle().take(unit.len() * reps).collect();
        let packed = lzss::compress(&data);
        prop_assert_eq!(lzss::decompress(&packed).unwrap(), data);
    }

    #[test]
    fn lzss_decompress_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = lzss::decompress(&garbage); // Result, not panic.
    }

    #[test]
    fn lzss_lazy_roundtrips_and_ratio_tracks_greedy(
        unit in proptest::collection::vec(any::<u8>(), 1..24),
        reps in 1usize..200,
        noise in proptest::collection::vec(any::<u8>(), 0..64)) {
        // Browser-cache-shaped input: a repeated unit with a noisy tail.
        let mut data: Vec<u8> = unit.iter().copied().cycle().take(unit.len() * reps).collect();
        data.extend_from_slice(&noise);
        let mut c = lzss::Compressor::new();
        let mut lazy = Vec::new();
        c.compress_into(&data, &mut lazy);
        let mut greedy = Vec::new();
        c.compress_greedy_into(&data, &mut greedy);
        prop_assert_eq!(lzss::decompress(&lazy).unwrap(), &data[..]);
        prop_assert_eq!(lzss::decompress(&greedy).unwrap(), &data[..]);
        // One-step deferral is not a strict improvement per input — the
        // probe-budget-bounded match finder means the deferred parse can
        // occasionally lose a byte or two — but it must never regress
        // the ratio meaningfully. (The strict ≤ case on realistic
        // markup is pinned by lzss::tests::lazy_beats_greedy_on_html.)
        prop_assert!(lazy.len() <= greedy.len() + 2 + greedy.len() / 100,
                     "lazy {} much worse than greedy {}", lazy.len(), greedy.len());
    }

    #[test]
    fn lzss_lazy_roundtrip_any_bytes(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        // compress() is the lazy parse; it must round-trip arbitrary
        // input including incompressible bytes.
        let mut out = Vec::new();
        lzss::Compressor::new().compress_into(&data, &mut out);
        prop_assert_eq!(lzss::decompress(&out).unwrap(), data);
    }

    #[test]
    fn archive_roundtrip(records in proptest::collection::vec(
        ("[a-z]{1,12}", proptest::collection::vec(any::<u8>(), 0..256)), 0..8)) {
        let mut a = NymArchive::new();
        for (name, data) in &records {
            a.put(name, data.clone());
        }
        let b = NymArchive::from_bytes(&a.to_bytes()).unwrap();
        prop_assert_eq!(a, b);
    }

    // The archive parsers are the trust boundary for bytes fetched from
    // an untrusted backend: arbitrary input must parse or error, never
    // panic and never over-reserve (this suite also runs under
    // `--release`, where unchecked arithmetic wraps instead of
    // panicking — the profile the `Reader::take` overflow shipped in).
    #[test]
    fn archive_parser_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..2048)) {
        if let Ok(a) = NymArchive::from_bytes(&garbage) {
            // Parseable garbage must re-serialize to the same bytes.
            prop_assert_eq!(a.to_bytes(), garbage);
        }
    }

    #[test]
    fn delta_parser_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..2048)) {
        if let Ok(d) = DeltaArchive::from_bytes(&garbage) {
            prop_assert_eq!(d.to_bytes(), garbage);
        }
    }

    #[test]
    fn magic_prefixed_garbage_never_panics(tail in proptest::collection::vec(any::<u8>(), 0..512),
                                           which in 0u8..2) {
        // Force the parser past the magic check into the length-driven
        // record loops.
        let mut bytes = if which == 0 { b"NYM1".to_vec() } else { b"NYMD".to_vec() };
        bytes.extend_from_slice(&tail);
        let _ = NymArchive::from_bytes(&bytes);
        let _ = DeltaArchive::from_bytes(&bytes);
    }

    #[test]
    fn mutated_valid_archive_parses_or_errors(
        records in proptest::collection::vec(
            ("[a-z]{1,12}", proptest::collection::vec(any::<u8>(), 0..128)), 1..6),
        flip in any::<usize>(), bit in 0u8..8) {
        let mut a = NymArchive::new();
        for (name, data) in &records {
            a.put(name, data.clone());
        }
        let mut bytes = a.to_bytes();
        let n = bytes.len();
        bytes[flip % n] ^= 1 << bit;
        // Any single-bit corruption parses or errors — and whatever
        // parses must survive layer extraction attempts too.
        if let Ok(parsed) = NymArchive::from_bytes(&bytes) {
            for name in parsed.names() {
                let _ = parsed.get_layer(name);
            }
        }
    }

    #[test]
    fn mutated_valid_delta_parses_or_errors(
        seed_data in proptest::collection::vec(any::<u8>(), 1..128),
        flip in any::<usize>(), bit in 0u8..8) {
        let mut prev = NymArchive::new();
        prev.put("disk", seed_data.clone());
        prev.put("meta", b"m".to_vec());
        let mut next = prev.clone();
        next.put("disk", [seed_data, vec![1, 2, 3]].concat());
        next.remove("meta");
        let delta = DeltaArchive::diff(&prev, &next);
        let mut bytes = delta.to_bytes();
        let n = bytes.len();
        bytes[flip % n] ^= 1 << bit;
        if let Ok(mutated) = DeltaArchive::from_bytes(&bytes) {
            // Replay of a corrupted-but-parseable delta must verify
            // (the flip hit bytes outside the commitment's view, i.e.
            // re-encode identically) or fail closed — never panic.
            let mut base = prev.clone();
            if mutated.apply(&mut base).is_ok() {
                prop_assert_eq!(mutated.to_bytes(), delta.to_bytes());
            }
        }
    }

    // The chunker feeds the content-addressed store: its boundaries
    // must be deterministic, lossless, within bounds, and local to an
    // edit — otherwise chunk IDs churn and dedup evaporates.
    #[test]
    fn chunker_is_deterministic_lossless_and_bounded(
        data in proptest::collection::vec(any::<u8>(), 0..100_000)) {
        let a: Vec<&[u8]> = chunker::chunks(&data).collect();
        let b: Vec<&[u8]> = chunker::chunks(&data).collect();
        prop_assert_eq!(&a, &b, "chunking must be deterministic");
        prop_assert_eq!(a.concat(), data.clone());
        for (i, c) in a.iter().enumerate() {
            prop_assert!(!c.is_empty());
            prop_assert!(c.len() <= chunker::MAX_CHUNK);
            if i + 1 < a.len() {
                prop_assert!(c.len() >= chunker::MIN_CHUNK, "short non-tail chunk");
            }
        }
    }

    #[test]
    fn chunker_single_byte_edit_is_local(
        data in proptest::collection::vec(any::<u8>(), 20_000..80_000),
        at in any::<usize>(), flip in 1u8..255) {
        let before: Vec<Vec<u8>> = chunker::chunks(&data).map(<[u8]>::to_vec).collect();
        let mut edited = data.clone();
        let at = at % edited.len();
        edited[at] ^= flip;
        let after: Vec<Vec<u8>> = chunker::chunks(&edited).map(<[u8]>::to_vec).collect();
        // Chunks strictly before the edit are untouched (boundaries are
        // decided left to right from the previous boundary)...
        let mut offset = 0usize;
        for (a, b) in before.iter().zip(after.iter()) {
            if offset + a.len() > at {
                break;
            }
            prop_assert_eq!(a, b, "pre-edit chunk at {} changed", offset);
            offset += a.len();
        }
        // ...and the edit perturbs only a handful of chunks before the
        // streams re-synchronize.
        let prefix = before.iter().zip(after.iter()).take_while(|(a, b)| a == b).count();
        let suffix = before.iter().rev().zip(after.iter().rev())
            .take_while(|(a, b)| a == b).count();
        let changed = before.len().max(after.len()).saturating_sub(prefix + suffix);
        prop_assert!(changed <= 4, "edit changed {} of {} chunks", changed, before.len());
    }

    #[test]
    fn chunker_resyncs_after_prefix_insertion(
        prefix in proptest::collection::vec(any::<u8>(), 1..5_000),
        stream_len in 40_000usize..90_000,
        stream_seed in any::<u64>()) {
        // Concatenating new bytes in front of a stream must re-chunk
        // identically past the edit window: once a boundary of the
        // longer stream lands on a boundary of the original, every
        // later chunk is byte-identical (this is what makes insertions
        // cheap, where fixed-size chunking would shift every block).
        // The stream is entropy-rich by construction — cut candidates
        // are content-defined, so a pathological constant stream has
        // none and only MAX-forced (offset-relative) cuts.
        let mut stream = vec![0u8; stream_len];
        let mut x = stream_seed | 1;
        for b in stream.iter_mut() {
            x ^= x >> 12; x ^= x << 25; x ^= x >> 27;
            *b = (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8;
        }
        let shifted: Vec<u8> = prefix.iter().chain(stream.iter()).copied().collect();
        let orig: Vec<Vec<u8>> = chunker::chunks(&stream).map(<[u8]>::to_vec).collect();
        let moved: Vec<Vec<u8>> = chunker::chunks(&shifted).map(<[u8]>::to_vec).collect();
        let shared_suffix = orig.iter().rev().zip(moved.iter().rev())
            .take_while(|(a, b)| a == b).count();
        let tail_bytes: usize = orig.iter().rev().take(shared_suffix).map(Vec::len).sum();
        prop_assert!(
            stream.len() - tail_bytes <= prefix.len() + 6 * chunker::AVG_CHUNK,
            "resync took {} bytes ({} shared trailing chunks of {})",
            stream.len() - tail_bytes, shared_suffix, orig.len()
        );
    }

    // NYMC manifests ride inside archives fetched from untrusted
    // backends: the parser must never panic, and whatever parses must
    // re-serialize identically (same guarantee the NYM1/NYMD parsers
    // give).
    #[test]
    fn manifest_parser_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..2048)) {
        if let Ok(m) = ChunkManifest::from_bytes(&garbage) {
            prop_assert_eq!(m.to_bytes(), garbage);
        }
    }

    #[test]
    fn manifest_magic_prefixed_garbage_never_panics(
        tail in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut bytes = b"NYMC".to_vec();
        bytes.extend_from_slice(&tail);
        let _ = ChunkManifest::from_bytes(&bytes);
    }

    #[test]
    fn mutated_valid_manifest_parses_or_errors(
        len in 33_000usize..120_000,
        seed in any::<u64>(),
        flip in any::<usize>(), bit in 0u8..8) {
        // A real manifest with one flipped bit parses (re-encoding
        // identically, i.e. the flip landed in an id) or errors; the
        // structural invariants (lengths bounded and summing to the
        // total) catch every length corruption.
        let mut data = vec![0u8; len];
        let mut x = seed | 1;
        for b in data.iter_mut() {
            x ^= x >> 12; x ^= x << 25; x ^= x >> 27;
            *b = (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8;
        }
        let manifest = ChunkManifest::build(&data);
        let mut bytes = manifest.to_bytes();
        let n = bytes.len();
        bytes[flip % n] ^= 1 << bit;
        if let Ok(parsed) = ChunkManifest::from_bytes(&bytes) {
            prop_assert_eq!(parsed.to_bytes(), bytes);
            prop_assert_eq!(parsed.total_len(),
                parsed.chunks().map(|(_, l)| l).sum::<usize>());
        }
    }

    #[test]
    fn sealed_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..2048),
                        seed in any::<u64>()) {
        let mut a = NymArchive::new();
        a.put("disk", data);
        let blob = seal_archive(&a, "password", "label", &mut Rng::seed_from(seed));
        prop_assert_eq!(open_sealed(&blob, "password", "label").unwrap(), a);
    }

    #[test]
    fn sealed_bitflip_always_detected(seed in any::<u64>(), flip in any::<usize>(), bit in 0u8..8) {
        let mut a = NymArchive::new();
        a.put("disk", vec![0x42; 100]);
        let mut blob = seal_archive(&a, "pw", "l", &mut Rng::seed_from(seed));
        let n = blob.len();
        // Flipping anywhere after the magic must fail auth (flips in the
        // salt/nonce change the derived key/stream; flips in the
        // ciphertext break the tag).
        let idx = 4 + (flip % (n - 4));
        blob[idx] ^= 1 << bit;
        prop_assert!(open_sealed(&blob, "pw", "l").is_err());
    }
}
