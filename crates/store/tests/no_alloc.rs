//! Pins the allocation-freedom of the sealing hot path: once the scratch
//! arena and output buffer are warm, `seal_into` (serialize → LZSS →
//! in-place AEAD) and `unseal_raw_into` (decrypt → decompress) must never
//! touch the heap.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use nymix_sim::Rng;
use nymix_store::{
    chunker, seal_delta_keyed_into, seal_into, unseal_keyed_raw_into, unseal_raw_into,
    DeltaArchive, NymArchive, SealKey, SealScratch,
};

struct CountingAlloc;

thread_local! {
    /// Per-thread count: the test harness runs tests on parallel
    /// threads, and a process-global counter would leak one test's
    /// (legitimate) warm-up allocations into another's measurement
    /// window. `Cell<usize>` needs no drop glue, so the TLS access
    /// itself never allocates.
    static ALLOCATIONS: Cell<usize> = const { Cell::new(0) };
}

// lint:allow(forbid-unsafe): GlobalAlloc is an unsafe trait; this counting shim only delegates to System
unsafe impl GlobalAlloc for CountingAlloc {
    // lint:allow(forbid-unsafe): signature dictated by the GlobalAlloc contract
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) } // lint:allow(forbid-unsafe): direct pass-through to the System allocator
    }
    // lint:allow(forbid-unsafe): signature dictated by the GlobalAlloc contract
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) } // lint:allow(forbid-unsafe): direct pass-through to the System allocator
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` and returns how many heap allocations this thread performed.
fn allocations_in(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.with(Cell::get);
    f();
    ALLOCATIONS.with(Cell::get) - before
}

fn archive() -> NymArchive {
    let mut a = NymArchive::new();
    a.put("meta", b"nym=alice;site=forum".to_vec());
    a.put(
        "anonvm.disk",
        b"<div class=\"post\">cache entry</div>\n"
            .repeat(800)
            .to_vec(),
    );
    a.put("tor.state", vec![0x5a; 2048]);
    a
}

#[test]
fn warm_seal_pipeline_is_allocation_free() {
    let a = archive();
    let mut scratch = SealScratch::new();
    let mut out = Vec::new();
    let mut rng = Rng::seed_from(3);
    // Warm-up: sizes the arena, the output blob and the match-finder.
    seal_into(&a, "pw", "nym:alice", &mut rng, &mut scratch, &mut out);
    let n = allocations_in(|| {
        for _ in 0..3 {
            seal_into(&a, "pw", "nym:alice", &mut rng, &mut scratch, &mut out);
        }
    });
    assert_eq!(n, 0, "warm seal_into must not allocate");
}

#[test]
fn warm_delta_seal_pipeline_is_allocation_free() {
    // The incremental save path: delta serialization rides the same
    // arena, the chain key skips the KDF, and with warm buffers neither
    // sealing nor unsealing a delta touches the heap.
    let prev = archive();
    let mut next = prev.clone();
    next.put("meta", b"nym=alice;site=forum;rev=2".to_vec());
    let delta = DeltaArchive::diff(&prev, &next);

    let mut rng = Rng::seed_from(5);
    let key = SealKey::derive("pw", "nym:alice", &mut rng);
    let mut scratch = SealScratch::new();
    let mut out = Vec::new();
    let mut work = Vec::new();
    // Warm-up sizes every buffer.
    seal_delta_keyed_into(
        &delta,
        &key,
        "nym:alice#e1.1",
        &mut rng,
        &mut scratch,
        &mut out,
    );
    unseal_keyed_raw_into(&out, &key, "nym:alice#e1.1", &mut work, &mut scratch).expect("opens");
    let n = allocations_in(|| {
        for _ in 0..3 {
            seal_delta_keyed_into(
                &delta,
                &key,
                "nym:alice#e1.1",
                &mut rng,
                &mut scratch,
                &mut out,
            );
            let bytes =
                unseal_keyed_raw_into(&out, &key, "nym:alice#e1.1", &mut work, &mut scratch)
                    .expect("opens");
            std::hint::black_box(bytes.len());
        }
    });
    assert_eq!(n, 0, "warm delta seal/unseal must not allocate");
}

#[test]
fn warm_commitment_update_is_allocation_free() {
    // The O(dirty) save path: with the accumulator warm and the record
    // shape unchanged, re-committing after a dirty record rewrites one
    // leaf and the root path strictly in place — every save would
    // otherwise pay a heap round trip per record.
    use nymix_store::ArchiveCommitment;
    let a = archive();
    let mut b = a.clone();
    b.put("meta", b"nym=alice;site=forum;rev=2".to_vec());
    let mut commitment = ArchiveCommitment::build(&a);
    // Warm-up: one update in each direction sizes nothing further —
    // the fast path must already be in-place.
    std::hint::black_box(commitment.update(&b, |name| name == "meta"));
    std::hint::black_box(commitment.update(&a, |name| name == "meta"));
    let n = allocations_in(|| {
        for _ in 0..4 {
            let r1 = commitment.update(&b, |name| name == "meta");
            let r2 = commitment.update(&a, |name| name == "meta");
            std::hint::black_box((r1, r2));
        }
    });
    assert_eq!(n, 0, "warm same-shape commitment update must not allocate");
}

#[test]
fn disabled_obs_recorder_is_allocation_free() {
    // Every hot path in this crate carries obs call sites; with the
    // recorder disabled (the default — this test binary never enables
    // it) each one must be a relaxed load and a branch, never a heap
    // touch, or the warm-path guarantees above silently erode.
    assert!(!nymix_obs::enabled());
    let n = allocations_in(|| {
        for i in 0..64u64 {
            let mut span = nymix_obs::span!("journal_commit", "bytes" => i);
            span.add_modeled_us(i);
            nymix_obs::counter!("disk.commits", 1u64);
            nymix_obs::gauge!("disk.garbage_bytes", i);
            nymix_obs::histogram!("disk.commit_bytes", i);
            nymix_obs::sim_clock(i);
            drop(span);
        }
    });
    assert_eq!(n, 0, "disabled obs recorder must not allocate");
}

#[test]
fn meter_is_allocation_free_with_recorder_disabled() {
    // `AccessLog` / `CloudSession` accounting now rides `Meter`s; their
    // local tallies must stay heap-free when the recorder is off.
    assert!(!nymix_obs::enabled());
    let mut meter = nymix_obs::meter!("cloud.ops");
    let n = allocations_in(|| {
        for i in 0..64u64 {
            meter.add(i);
        }
        std::hint::black_box(meter.get());
        std::hint::black_box(meter.take());
    });
    assert_eq!(n, 0, "Meter bookkeeping must not allocate");
}

#[test]
fn content_defined_chunking_is_allocation_free() {
    // The chunker runs over every large record on every incremental
    // save; it yields borrowed sub-slices and must never touch the
    // heap, warm or cold.
    let mut data = vec![0u8; 256 * 1024];
    let mut x = 0x9E37_79B9u64;
    for b in data.iter_mut() {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *b = (x >> 32) as u8;
    }
    let n = allocations_in(|| {
        let mut total = 0usize;
        let mut count = 0usize;
        for chunk in chunker::chunks(&data) {
            total += chunk.len();
            count += 1;
        }
        assert_eq!(total, data.len());
        assert!(count > 1);
    });
    assert_eq!(n, 0, "chunking must not allocate");
}

#[test]
fn warm_unseal_pipeline_is_allocation_free() {
    let a = archive();
    let mut scratch = SealScratch::new();
    let mut out = Vec::new();
    let mut work = Vec::new();
    seal_into(
        &a,
        "pw",
        "nym:alice",
        &mut Rng::seed_from(3),
        &mut scratch,
        &mut out,
    );
    // Warm-up run sizes the ciphertext copy and the plaintext arena.
    unseal_raw_into(&out, "pw", "nym:alice", &mut work, &mut scratch).expect("opens");
    let n = allocations_in(|| {
        for _ in 0..3 {
            let bytes =
                unseal_raw_into(&out, "pw", "nym:alice", &mut work, &mut scratch).expect("opens");
            std::hint::black_box(bytes.len());
        }
    });
    assert_eq!(n, 0, "warm unseal_raw_into must not allocate");
}

#[test]
fn warm_gated_chunk_seal_is_allocation_free() {
    // The entropy-gated chunk path: the probe (stack histogram) plus
    // the stored-body seal must stay off the heap once warm — chunk
    // sealing runs per chunk on every incremental save.
    use nymix_store::{lzss, seal_bytes_keyed_stored_into};
    let mut chunk = vec![0u8; 32 * 1024];
    let mut x = 0x1234_5678_9abc_def0u64;
    for b in chunk.iter_mut() {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *b = (x >> 32) as u8;
    }
    let mut rng = Rng::seed_from(9);
    let key = SealKey::derive("pw", "l", &mut rng);
    let mut scratch = SealScratch::new();
    let mut out = Vec::new();
    // Warm-up sizes the arena and the blob buffer.
    seal_bytes_keyed_stored_into(&chunk, &key, "l#e1/c/ab", &mut rng, &mut scratch, &mut out);
    let n = allocations_in(|| {
        for _ in 0..3 {
            assert!(lzss::entropy_bits_per_byte(&chunk) >= 7.0);
            seal_bytes_keyed_stored_into(
                &chunk,
                &key,
                "l#e1/c/ab",
                &mut rng,
                &mut scratch,
                &mut out,
            );
            std::hint::black_box(out.len());
        }
    });
    assert_eq!(n, 0, "warm gated chunk seal must not allocate");
}
