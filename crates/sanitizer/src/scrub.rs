//! Scrubbing transformations and the paranoia-level pipeline.
//!
//! §3.6: the user chooses "any combination of: (a) scrub EXIF or other
//! metadata, (b) blur any detectable faces using OpenCV, and/or (c)
//! reduce the resolution and add noise in attempt to disrupt any
//! watermarks". For documents: "scrub metadata, but also ... reconstruct
//! the document completely as a series of bitmaps, effectively
//! scrubbing any nonvisual information".

use crate::formats::{DocFile, JpegImage, MediaFile, PdfDoc};
use crate::risk::{analyze, Risk};

/// An individual scrubbing transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transform {
    /// Remove metadata (MAT mode, §4.3 mode 1).
    StripMetadata,
    /// Blur detected face regions.
    BlurFaces,
    /// Downscale and add noise (breaks watermarks and small stego).
    NoiseAndDownscale,
    /// Re-render the document as bitmaps (§4.3 mode 2) — drops all
    /// non-visual structure.
    Rasterize,
}

/// Preset transform bundles ("different paranoia levels", §3.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ParanoiaLevel {
    /// Metadata stripping only.
    Basic,
    /// Metadata + faces.
    Careful,
    /// Everything: metadata, faces, noise, rasterization.
    Paranoid,
}

impl ParanoiaLevel {
    /// The transforms this level applies, in order.
    pub fn transforms(self) -> Vec<Transform> {
        match self {
            ParanoiaLevel::Basic => vec![Transform::StripMetadata],
            ParanoiaLevel::Careful => vec![Transform::StripMetadata, Transform::BlurFaces],
            ParanoiaLevel::Paranoid => vec![
                Transform::StripMetadata,
                Transform::BlurFaces,
                Transform::NoiseAndDownscale,
                Transform::Rasterize,
            ],
        }
    }
}

/// Outcome of running the pipeline over one file.
#[derive(Debug, Clone)]
pub struct ScrubReport {
    /// Risks identified before scrubbing (the user-facing list).
    pub risks_before: Vec<Risk>,
    /// Transforms that were applied.
    pub applied: Vec<Transform>,
    /// Risks remaining after scrubbing.
    pub risks_after: Vec<Risk>,
    /// The scrubbed output bytes.
    pub output: Vec<u8>,
}

impl ScrubReport {
    /// Whether scrubbing removed every detected risk.
    pub fn clean(&self) -> bool {
        self.risks_after.is_empty()
    }
}

fn apply_to_jpeg(j: &mut JpegImage, t: Transform) {
    match t {
        Transform::StripMetadata => {
            j.exif = Default::default();
        }
        Transform::BlurFaces => {
            // Average each face region's pixels (visibly destroys it)
            // and drop the detectability record.
            for face in j.faces.clone() {
                let mut sum = 0u64;
                let mut count = 0u64;
                for y in face.y..face.y.saturating_add(face.h).min(j.height) {
                    for x in face.x..face.x.saturating_add(face.w).min(j.width) {
                        sum += j.pixels[y as usize * j.width as usize + x as usize] as u64;
                        count += 1;
                    }
                }
                let avg = sum.checked_div(count).unwrap_or(0) as u8;
                for y in face.y..face.y.saturating_add(face.h).min(j.height) {
                    for x in face.x..face.x.saturating_add(face.w).min(j.width) {
                        j.pixels[y as usize * j.width as usize + x as usize] = avg;
                    }
                }
            }
            j.faces.clear();
        }
        Transform::NoiseAndDownscale => {
            // 2x downscale plus deterministic dither: kills watermarks
            // and low-order-bit payloads.
            let nw = (j.width / 2).max(1);
            let nh = (j.height / 2).max(1);
            let mut np = vec![0u8; nw as usize * nh as usize];
            for y in 0..nh as usize {
                for x in 0..nw as usize {
                    let src = j.pixels[(y * 2) * j.width as usize + x * 2];
                    let noise = ((x * 7 + y * 13) % 5) as u8;
                    np[y * nw as usize + x] = src.wrapping_add(noise);
                }
            }
            j.width = nw;
            j.height = nh;
            j.pixels = np;
            j.watermark = None;
            j.stego_payload = None;
        }
        Transform::Rasterize => {
            // For photos, rasterizing is equivalent to re-encoding:
            // structure-borne extras vanish, pixels stay.
            j.watermark = None;
            j.stego_payload = None;
            j.exif = Default::default();
        }
    }
}

fn rasterize_pdf(p: &PdfDoc) -> JpegImage {
    // "Loading the document into a proper viewer, taking one or more
    // screen shots, and then assembling the images together" (§4.3):
    // visible page text becomes pixels; author, producer and hidden
    // layers do not survive.
    let width = 612u16;
    let height = (p.pages.len().max(1) as u16) * 128;
    let mut pixels = vec![255u8; width as usize * height as usize];
    for (page_no, text) in p.pages.iter().enumerate() {
        for (i, b) in text.bytes().enumerate() {
            let idx = page_no * 128 * width as usize + i % (width as usize * 127);
            pixels[idx] = b;
        }
    }
    JpegImage {
        width,
        height,
        pixels,
        exif: Default::default(),
        faces: vec![],
        stego_payload: None,
        watermark: None,
    }
}

fn rasterize_doc(d: &DocFile) -> JpegImage {
    rasterize_pdf(&PdfDoc {
        author: None,
        producer: None,
        pages: vec![d.body.clone()],
        hidden_layers: vec![],
    })
}

/// Runs the paranoia-level pipeline over `input` bytes.
///
/// # Examples
///
/// ```
/// use nymix_sanitizer::{scrub, MediaFile, JpegImage, ParanoiaLevel};
///
/// let photo = MediaFile::Jpeg(JpegImage::protest_photo()).to_bytes();
/// let report = scrub(&photo, ParanoiaLevel::Paranoid);
/// assert!(report.clean());
/// assert!(!report.risks_before.is_empty());
/// ```
pub fn scrub(input: &[u8], level: ParanoiaLevel) -> ScrubReport {
    let file = MediaFile::parse(input);
    let risks_before = analyze(&file);
    let mut applied = Vec::new();
    let mut current = file;
    for t in level.transforms() {
        current = match (current, t) {
            (MediaFile::Jpeg(mut j), t) => {
                apply_to_jpeg(&mut j, t);
                applied.push(t);
                MediaFile::Jpeg(j)
            }
            (MediaFile::Pdf(mut p), Transform::StripMetadata) => {
                p.author = None;
                p.producer = None;
                applied.push(t);
                MediaFile::Pdf(p)
            }
            (MediaFile::Pdf(p), Transform::Rasterize) => {
                applied.push(t);
                MediaFile::Jpeg(rasterize_pdf(&p))
            }
            (MediaFile::Doc(mut d), Transform::StripMetadata) => {
                d.author = None;
                d.last_modified_by = None;
                applied.push(t);
                MediaFile::Doc(d)
            }
            (MediaFile::Doc(d), Transform::Rasterize) => {
                applied.push(t);
                MediaFile::Jpeg(rasterize_doc(&d))
            }
            (other, _) => other, // Transform not applicable.
        };
    }
    let risks_after = analyze(&current);
    ScrubReport {
        risks_before,
        applied,
        risks_after,
        output: current.to_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::Exif;
    use crate::risk::RiskKind;

    fn photo_bytes() -> Vec<u8> {
        MediaFile::Jpeg(JpegImage::protest_photo()).to_bytes()
    }

    #[test]
    fn basic_strips_exif_only() {
        let report = scrub(&photo_bytes(), ParanoiaLevel::Basic);
        let after: Vec<RiskKind> = report.risks_after.iter().map(|r| r.kind).collect();
        assert!(!after.contains(&RiskKind::GpsLocation));
        assert!(!after.contains(&RiskKind::DeviceSerial));
        // Faces and watermark survive Basic.
        assert!(after.contains(&RiskKind::VisibleFaces));
        assert!(after.contains(&RiskKind::Watermark));
        assert!(!report.clean());
    }

    #[test]
    fn careful_also_blurs_faces() {
        let report = scrub(&photo_bytes(), ParanoiaLevel::Careful);
        let after: Vec<RiskKind> = report.risks_after.iter().map(|r| r.kind).collect();
        assert!(!after.contains(&RiskKind::VisibleFaces));
        assert!(after.contains(&RiskKind::Watermark));
    }

    #[test]
    fn paranoid_cleans_photo_completely() {
        let report = scrub(&photo_bytes(), ParanoiaLevel::Paranoid);
        assert!(report.clean(), "risks remain: {:?}", report.risks_after);
        // The output is a real downscaled image.
        if let MediaFile::Jpeg(j) = MediaFile::parse(&report.output) {
            assert_eq!(j.width, 320);
            assert_eq!(j.height, 240);
            assert!(j.exif.is_empty());
        } else {
            panic!("output is not a jpeg");
        }
    }

    #[test]
    fn blur_actually_destroys_pixels() {
        let img = JpegImage::protest_photo();
        let face = img.faces[0];
        let before = img.pixels[face.y as usize * img.width as usize + face.x as usize + 5];
        let report = scrub(
            &MediaFile::Jpeg(img.clone()).to_bytes(),
            ParanoiaLevel::Careful,
        );
        if let MediaFile::Jpeg(j) = MediaFile::parse(&report.output) {
            let region: Vec<u8> = (0..face.h as usize)
                .flat_map(|dy| {
                    let w = j.width as usize;
                    let (x, y) = (face.x as usize, face.y as usize);
                    j.pixels[(y + dy) * w + x..(y + dy) * w + x + face.w as usize].to_vec()
                })
                .collect();
            // Uniform after blur.
            assert!(region.windows(2).all(|w| w[0] == w[1]));
            let _ = before;
        } else {
            panic!("not a jpeg");
        }
    }

    #[test]
    fn rasterized_pdf_loses_hidden_layers_and_keeps_pages() {
        let memo = PdfDoc::memo();
        let report = scrub(&MediaFile::Pdf(memo).to_bytes(), ParanoiaLevel::Paranoid);
        assert!(report.clean(), "risks remain: {:?}", report.risks_after);
        assert!(matches!(
            MediaFile::parse(&report.output),
            MediaFile::Jpeg(_)
        ));
    }

    #[test]
    fn doc_revision_history_removed_by_rasterize_only() {
        let doc = DocFile {
            author: Some("bob".into()),
            last_modified_by: Some("bob".into()),
            body: "public statement".into(),
            revisions: vec!["incriminating draft".into()],
        };
        let bytes = MediaFile::Doc(doc).to_bytes();
        let basic = scrub(&bytes, ParanoiaLevel::Basic);
        assert!(basic
            .risks_after
            .iter()
            .any(|r| r.kind == RiskKind::RevisionHistory));
        let paranoid = scrub(&bytes, ParanoiaLevel::Paranoid);
        assert!(paranoid.clean());
    }

    #[test]
    fn noise_kills_watermark_and_stego() {
        let mut img = JpegImage::protest_photo();
        img.stego_payload = Some(vec![7u8; 64]);
        let report = scrub(&MediaFile::Jpeg(img).to_bytes(), ParanoiaLevel::Paranoid);
        if let MediaFile::Jpeg(j) = MediaFile::parse(&report.output) {
            assert!(j.watermark.is_none());
            assert!(j.stego_payload.is_none());
        } else {
            panic!("not a jpeg");
        }
    }

    #[test]
    fn unknown_files_cannot_be_certified() {
        let report = scrub(b"GIF89a...", ParanoiaLevel::Paranoid);
        assert!(!report.clean());
        assert_eq!(report.risks_after[0].kind, RiskKind::UnknownFormat);
        assert!(report.applied.is_empty());
    }

    #[test]
    fn clean_input_stays_clean_and_intact() {
        let img = JpegImage {
            exif: Exif::default(),
            faces: vec![],
            stego_payload: None,
            watermark: None,
            ..JpegImage::protest_photo()
        };
        let bytes = MediaFile::Jpeg(img).to_bytes();
        let report = scrub(&bytes, ParanoiaLevel::Basic);
        assert!(report.clean());
        assert_eq!(report.output, bytes);
    }

    #[test]
    fn paranoia_levels_are_ordered() {
        assert!(ParanoiaLevel::Basic < ParanoiaLevel::Paranoid);
        assert_eq!(ParanoiaLevel::Paranoid.transforms().len(), 4);
    }
}
