//! The SaniVM's scrubbing toolchain.
//!
//! §3.6: nymboxes never touch local files directly; a dedicated,
//! non-networked SaniVM mounts the user's data, runs "a suite of
//! scrubbing tools that inspect the files to be transferred, attempt to
//! identify potential risks such as hidden metadata or visible faces in
//! photos, present the user a list of these files and potential risks,
//! and offer to apply appropriate scrubbing transformations".
//!
//! §4.3: two modes — a MAT-style metadata stripper, and a rasterizer
//! that "converts the document into a series of images", scrubbing
//! anything non-visual.
//!
//! Real JPEG/PDF/DOCX parsers are out of scope; instead [`formats`]
//! defines structured synthetic containers with the same *risk surface*
//! (EXIF GPS + serial numbers, document author/revision metadata,
//! hidden layers, steganographic payloads, detectable faces), complete
//! with binary serialization so scrubbing is a real byte-level
//! transformation.
//!
//! * [`formats`] — synthetic JPEG/PDF/DOC containers and codecs.
//! * [`risk`] — the automated risk analyzer.
//! * [`scrub`](mod@crate::scrub) — the transformations and paranoia-level pipeline.
//! * [`containers`] — PNG and multi-file archive formats, recursive
//!   scrubbing, and the any-format analyzer entry point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod containers;
pub mod formats;
pub mod risk;
pub mod scrub;

/// Serializer-side length to `u32`, checked instead of cast: the
/// synthetic wire formats cap every field at `u32`, and a breach
/// saturates rather than silently truncating into a length-prefix
/// confusion (the `panic-free-parser` lint forbids narrowing `as`
/// casts in [`formats`]/[`containers`]).
pub(crate) fn len_u32(len: usize) -> u32 {
    debug_assert!(
        u32::try_from(len).is_ok(),
        "length {len} exceeds u32 wire field"
    );
    u32::try_from(len).unwrap_or(u32::MAX)
}

pub use containers::{analyze_any, FileArchive, PngImage};
pub use formats::{DocFile, JpegImage, MediaFile, PdfDoc};
pub use risk::{analyze, Risk, RiskKind, Severity};
pub use scrub::{scrub, ParanoiaLevel, ScrubReport, Transform};
