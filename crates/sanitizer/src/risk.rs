//! Automated risk analysis.
//!
//! §3.6: the SaniVM "launches a suite of scrubbing tools that inspect
//! the files to be transferred, attempt to identify potential risks
//! such as hidden metadata or visible faces in photos, \[and\] present
//! the user a list of these files and potential risks". This module is
//! the inspection half; [`crate::scrub::scrub`] is the transformation half.

use crate::formats::MediaFile;

/// How damaging a leak through this channel would be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Contextual/deanonymizing only in aggregate.
    Low,
    /// Identifies equipment or authorship.
    Medium,
    /// Directly identifies or locates the user.
    High,
}

/// A category of identifying information.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RiskKind {
    /// GPS coordinates in EXIF (§2: Bob's protest photo).
    GpsLocation,
    /// Camera/device serial number.
    DeviceSerial,
    /// Capture/author timestamp.
    Timestamp,
    /// Author/artist/owner metadata.
    Authorship,
    /// Human faces detectable in the image.
    VisibleFaces,
    /// Non-visual document content (hidden layers, tracked changes).
    HiddenContent,
    /// Revision history.
    RevisionHistory,
    /// Low-order-bit payload detected (steganography).
    Steganography,
    /// Possible robust watermark.
    Watermark,
    /// Format not understood — cannot certify as clean.
    UnknownFormat,
}

/// One identified risk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Risk {
    /// What kind of leak.
    pub kind: RiskKind,
    /// How bad.
    pub severity: Severity,
    /// Human-readable detail for the user-facing list.
    pub detail: String,
}

impl Risk {
    fn new(kind: RiskKind, severity: Severity, detail: impl Into<String>) -> Self {
        Self {
            kind,
            severity,
            detail: detail.into(),
        }
    }
}

/// Crude stego detector: the model marks payloads explicitly, but a
/// detector in a real pipeline only sees bit-plane statistics — model
/// that by "detecting" only payloads of at least 16 bytes.
fn stego_detectable(payload: &Option<Vec<u8>>) -> bool {
    payload.as_ref().is_some_and(|p| p.len() >= 16)
}

/// Inspects a file and lists its risks, highest severity first.
///
/// # Examples
///
/// ```
/// use nymix_sanitizer::{analyze, MediaFile, JpegImage, RiskKind};
///
/// let photo = MediaFile::Jpeg(JpegImage::protest_photo());
/// let risks = analyze(&photo);
/// assert!(risks.iter().any(|r| r.kind == RiskKind::GpsLocation));
/// ```
pub fn analyze(file: &MediaFile) -> Vec<Risk> {
    let mut risks = Vec::new();
    match file {
        MediaFile::Jpeg(j) => {
            if let Some((lat, lon)) = j.exif.gps {
                risks.push(Risk::new(
                    RiskKind::GpsLocation,
                    Severity::High,
                    format!("EXIF GPS fix {lat:.4},{lon:.4}"),
                ));
            }
            if let Some(serial) = &j.exif.camera_serial {
                risks.push(Risk::new(
                    RiskKind::DeviceSerial,
                    Severity::High,
                    format!("camera serial {serial}"),
                ));
            }
            if let Some(artist) = &j.exif.artist {
                risks.push(Risk::new(
                    RiskKind::Authorship,
                    Severity::Medium,
                    format!("artist tag '{artist}'"),
                ));
            }
            if j.exif.timestamp.is_some() {
                risks.push(Risk::new(
                    RiskKind::Timestamp,
                    Severity::Low,
                    "capture timestamp present",
                ));
            }
            if !j.faces.is_empty() {
                risks.push(Risk::new(
                    RiskKind::VisibleFaces,
                    Severity::High,
                    format!("{} detectable face(s)", j.faces.len()),
                ));
            }
            if stego_detectable(&j.stego_payload) {
                risks.push(Risk::new(
                    RiskKind::Steganography,
                    Severity::Medium,
                    "suspicious low-order bit-plane statistics",
                ));
            }
            if j.watermark.is_some() {
                risks.push(Risk::new(
                    RiskKind::Watermark,
                    Severity::Medium,
                    "possible vendor watermark",
                ));
            }
        }
        MediaFile::Pdf(p) => {
            if let Some(author) = &p.author {
                risks.push(Risk::new(
                    RiskKind::Authorship,
                    Severity::High,
                    format!("document author '{author}'"),
                ));
            }
            if p.producer.is_some() {
                risks.push(Risk::new(
                    RiskKind::Authorship,
                    Severity::Low,
                    "producer application identifies toolchain",
                ));
            }
            if !p.hidden_layers.is_empty() {
                risks.push(Risk::new(
                    RiskKind::HiddenContent,
                    Severity::High,
                    format!("{} non-visual content object(s)", p.hidden_layers.len()),
                ));
            }
        }
        MediaFile::Doc(d) => {
            if let Some(author) = &d.author {
                risks.push(Risk::new(
                    RiskKind::Authorship,
                    Severity::High,
                    format!("author '{author}'"),
                ));
            }
            if d.last_modified_by.is_some() {
                risks.push(Risk::new(
                    RiskKind::Authorship,
                    Severity::Medium,
                    "last-modified-by present",
                ));
            }
            if !d.revisions.is_empty() {
                risks.push(Risk::new(
                    RiskKind::RevisionHistory,
                    Severity::High,
                    format!("{} revision(s) recoverable", d.revisions.len()),
                ));
            }
        }
        MediaFile::Unknown(bytes) => {
            risks.push(Risk::new(
                RiskKind::UnknownFormat,
                Severity::Medium,
                format!(
                    "unrecognized format ({} bytes); cannot certify",
                    bytes.len()
                ),
            ));
        }
    }
    risks.sort_by_key(|r| std::cmp::Reverse(r.severity));
    risks
}

/// The highest severity among `risks` (`None` when clean).
pub fn max_severity(risks: &[Risk]) -> Option<Severity> {
    risks.iter().map(|r| r.severity).max()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::{DocFile, Exif, JpegImage, PdfDoc};

    #[test]
    fn protest_photo_is_a_minefield() {
        let risks = analyze(&MediaFile::Jpeg(JpegImage::protest_photo()));
        let kinds: Vec<RiskKind> = risks.iter().map(|r| r.kind).collect();
        for expect in [
            RiskKind::GpsLocation,
            RiskKind::DeviceSerial,
            RiskKind::VisibleFaces,
            RiskKind::Authorship,
            RiskKind::Timestamp,
            RiskKind::Watermark,
        ] {
            assert!(kinds.contains(&expect), "missing {expect:?}");
        }
        assert_eq!(max_severity(&risks), Some(Severity::High));
        // Sorted by severity, highest first.
        assert_eq!(risks[0].severity, Severity::High);
        assert_eq!(risks[risks.len() - 1].severity, Severity::Low);
    }

    #[test]
    fn clean_photo_is_clean() {
        let img = JpegImage {
            exif: Exif::default(),
            faces: vec![],
            stego_payload: None,
            watermark: None,
            ..JpegImage::protest_photo()
        };
        let risks = analyze(&MediaFile::Jpeg(img));
        assert!(risks.is_empty());
        assert_eq!(max_severity(&risks), None);
    }

    #[test]
    fn small_stego_evades_detection_large_does_not() {
        let mut img = JpegImage::protest_photo();
        img.stego_payload = Some(vec![0u8; 8]);
        let risks = analyze(&MediaFile::Jpeg(img.clone()));
        assert!(!risks.iter().any(|r| r.kind == RiskKind::Steganography));
        img.stego_payload = Some(vec![0u8; 64]);
        let risks = analyze(&MediaFile::Jpeg(img));
        assert!(risks.iter().any(|r| r.kind == RiskKind::Steganography));
    }

    #[test]
    fn documents_flag_hidden_content() {
        let risks = analyze(&MediaFile::Pdf(PdfDoc::memo()));
        assert!(risks.iter().any(|r| r.kind == RiskKind::HiddenContent));
        assert!(risks.iter().any(|r| r.kind == RiskKind::Authorship));

        let doc = DocFile {
            author: None,
            last_modified_by: None,
            body: "text".into(),
            revisions: vec!["older text".into()],
        };
        let risks = analyze(&MediaFile::Doc(doc));
        assert_eq!(risks.len(), 1);
        assert_eq!(risks[0].kind, RiskKind::RevisionHistory);
    }

    #[test]
    fn unknown_formats_flagged() {
        let risks = analyze(&MediaFile::Unknown(vec![1, 2, 3]));
        assert_eq!(risks[0].kind, RiskKind::UnknownFormat);
    }
}
