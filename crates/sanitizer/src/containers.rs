//! Additional media formats: PNG and multi-file archives.
//!
//! §3.6: "Developers continuously create new file types, and add
//! extensions to existing file types, which might conceal identifying
//! information." The pipeline therefore has to be extensible: this
//! module adds a PNG-like chunked image (textual metadata chunks à la
//! `tEXt`, ancillary private chunks that can hide anything) and a
//! zip-like archive container whose members are scrubbed recursively.

use crate::formats::{JpegImage, MediaFile};
use crate::risk::{analyze, Risk, RiskKind, Severity};
use crate::scrub::{scrub, ParanoiaLevel, ScrubReport};

/// A PNG-style chunked image.
#[derive(Debug, Clone, PartialEq)]
pub struct PngImage {
    /// Pixel dimensions.
    pub width: u16,
    /// Pixel dimensions.
    pub height: u16,
    /// Pixel samples (luma).
    pub pixels: Vec<u8>,
    /// `tEXt`-style key/value metadata ("Author", "Software",
    /// "Location", ...).
    pub text_chunks: Vec<(String, String)>,
    /// Private ancillary chunks — opaque bytes an application stashed.
    pub private_chunks: Vec<Vec<u8>>,
}

const PNG_MAGIC: &[u8; 4] = b"NPNG";
const ARCHIVE_MAGIC: &[u8; 4] = b"NARC";

impl PngImage {
    /// A screenshot-like PNG with identifying chunks.
    pub fn screenshot() -> Self {
        Self {
            width: 320,
            height: 200,
            // lint:allow(panic-free-parser): fixture generator, not a parser; % 253 bounds the value below 256
            pixels: (0..320u32 * 200).map(|i| (i % 253) as u8).collect(),
            text_chunks: vec![
                ("Author".into(), "bob".into()),
                ("Software".into(), "shutter 0.93 on bob-laptop".into()),
                ("Location".into(), "38.8977,-77.0365".into()),
            ],
            private_chunks: vec![b"prIV tracking-blob".to_vec()],
        }
    }

    /// Serializes the image.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = PNG_MAGIC.to_vec();
        out.extend_from_slice(&self.width.to_le_bytes());
        out.extend_from_slice(&self.height.to_le_bytes());
        out.extend_from_slice(&crate::len_u32(self.pixels.len()).to_le_bytes());
        out.extend_from_slice(&self.pixels);
        out.extend_from_slice(&crate::len_u32(self.text_chunks.len()).to_le_bytes());
        for (k, v) in &self.text_chunks {
            for s in [k, v] {
                out.extend_from_slice(&crate::len_u32(s.len()).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
        out.extend_from_slice(&crate::len_u32(self.private_chunks.len()).to_le_bytes());
        for c in &self.private_chunks {
            out.extend_from_slice(&crate::len_u32(c.len()).to_le_bytes());
            out.extend_from_slice(c);
        }
        out
    }

    /// Parses an image; `None` if malformed.
    pub fn parse(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 4 || &bytes[..4] != PNG_MAGIC {
            return None;
        }
        let mut pos = 4usize;
        let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
            if *pos + n > bytes.len() {
                return None;
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Some(s)
        };
        let width = u16::from_le_bytes(take(&mut pos, 2)?.try_into().ok()?);
        let height = u16::from_le_bytes(take(&mut pos, 2)?.try_into().ok()?);
        let plen = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
        let pixels = take(&mut pos, plen)?.to_vec();
        let tcount = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
        if tcount > bytes.len() {
            return None;
        }
        let mut text_chunks = Vec::with_capacity(tcount.min(256));
        for _ in 0..tcount {
            let klen = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
            let k = String::from_utf8(take(&mut pos, klen)?.to_vec()).ok()?;
            let vlen = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
            let v = String::from_utf8(take(&mut pos, vlen)?.to_vec()).ok()?;
            text_chunks.push((k, v));
        }
        let pcount = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
        if pcount > bytes.len() {
            return None;
        }
        let mut private_chunks = Vec::with_capacity(pcount.min(256));
        for _ in 0..pcount {
            let len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
            private_chunks.push(take(&mut pos, len)?.to_vec());
        }
        if pos != bytes.len() {
            return None;
        }
        Some(Self {
            width,
            height,
            pixels,
            text_chunks,
            private_chunks,
        })
    }

    /// Risk analysis for PNG content.
    pub fn risks(&self) -> Vec<Risk> {
        let mut risks = Vec::new();
        for (k, v) in &self.text_chunks {
            let kind = if k.eq_ignore_ascii_case("location") {
                (RiskKind::GpsLocation, Severity::High)
            } else if k.eq_ignore_ascii_case("author") {
                (RiskKind::Authorship, Severity::High)
            } else {
                (RiskKind::Authorship, Severity::Medium)
            };
            risks.push(Risk {
                kind: kind.0,
                severity: kind.1,
                detail: format!("tEXt {k}={v}"),
            });
        }
        if !self.private_chunks.is_empty() {
            risks.push(Risk {
                kind: RiskKind::HiddenContent,
                severity: Severity::High,
                detail: format!("{} private ancillary chunk(s)", self.private_chunks.len()),
            });
        }
        risks.sort_by_key(|r| std::cmp::Reverse(r.severity));
        risks
    }

    /// Scrubs the image: drops all text and private chunks, keeping
    /// pixels (re-encoding, as the rasterize mode does).
    pub fn scrubbed(&self) -> PngImage {
        PngImage {
            width: self.width,
            height: self.height,
            pixels: self.pixels.clone(),
            text_chunks: Vec::new(),
            private_chunks: Vec::new(),
        }
    }
}

/// A zip-like archive of named members.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FileArchive {
    /// `(name, bytes)` members.
    pub members: Vec<(String, Vec<u8>)>,
}

impl FileArchive {
    /// An empty archive.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a member.
    pub fn push(&mut self, name: &str, data: Vec<u8>) {
        self.members.push((name.to_string(), data));
    }

    /// Serializes the archive.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = ARCHIVE_MAGIC.to_vec();
        out.extend_from_slice(&crate::len_u32(self.members.len()).to_le_bytes());
        for (name, data) in &self.members {
            out.extend_from_slice(&crate::len_u32(name.len()).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&crate::len_u32(data.len()).to_le_bytes());
            out.extend_from_slice(data);
        }
        out
    }

    /// Parses an archive; `None` if malformed.
    pub fn parse(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 8 || &bytes[..4] != ARCHIVE_MAGIC {
            return None;
        }
        let count = u32::from_le_bytes(bytes[4..8].try_into().ok()?) as usize;
        if count > bytes.len() {
            return None;
        }
        let mut pos = 8usize;
        let mut members = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            if pos + 4 > bytes.len() {
                return None;
            }
            let nlen = u32::from_le_bytes(bytes[pos..pos + 4].try_into().ok()?) as usize;
            pos += 4;
            if pos + nlen + 4 > bytes.len() {
                return None;
            }
            let name = String::from_utf8(bytes[pos..pos + nlen].to_vec()).ok()?;
            pos += nlen;
            let dlen = u32::from_le_bytes(bytes[pos..pos + 4].try_into().ok()?) as usize;
            pos += 4;
            if pos + dlen > bytes.len() {
                return None;
            }
            members.push((name, bytes[pos..pos + dlen].to_vec()));
            pos += dlen;
        }
        if pos != bytes.len() {
            return None;
        }
        Some(Self { members })
    }

    /// Scrubs every member recursively at `level`; members that stay
    /// risky are *dropped* (with a report entry) rather than leaked.
    pub fn scrub_members(&self, level: ParanoiaLevel) -> (FileArchive, Vec<(String, ScrubReport)>) {
        let mut out = FileArchive::new();
        let mut reports = Vec::new();
        for (name, data) in &self.members {
            if let Some(png) = PngImage::parse(data) {
                // PNGs have their own path.
                let clean = png.scrubbed();
                out.push(name, clean.to_bytes());
                continue;
            }
            let report = scrub(data, level);
            if report.clean() {
                out.push(name, report.output.clone());
            }
            reports.push((name.clone(), report));
        }
        (out, reports)
    }
}

/// Analyzes any supported byte blob, dispatching across every format
/// this crate knows (the "suite of scrubbing tools" entry point).
pub fn analyze_any(bytes: &[u8]) -> Vec<Risk> {
    if let Some(png) = PngImage::parse(bytes) {
        return png.risks();
    }
    if let Some(archive) = FileArchive::parse(bytes) {
        let mut risks: Vec<Risk> = archive
            .members
            .iter()
            .flat_map(|(name, data)| {
                let mut member_risks = analyze_any(data);
                for r in &mut member_risks {
                    r.detail = format!("{name}: {}", r.detail);
                }
                member_risks
            })
            .collect();
        risks.sort_by_key(|r| std::cmp::Reverse(r.severity));
        return risks;
    }
    analyze(&MediaFile::parse(bytes))
}

/// Builds a camera-roll archive for tests/examples: a risky JPEG, a
/// risky PNG, and an innocuous text file.
pub fn sample_camera_roll() -> FileArchive {
    let mut archive = FileArchive::new();
    archive.push(
        "protest.jpg",
        MediaFile::Jpeg(JpegImage::protest_photo()).to_bytes(),
    );
    archive.push("screen.png", PngImage::screenshot().to_bytes());
    archive.push("notes.txt", b"meet at the square at noon".to_vec());
    archive
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn png_roundtrip() {
        let png = PngImage::screenshot();
        let parsed = PngImage::parse(&png.to_bytes()).unwrap();
        assert_eq!(parsed, png);
        assert!(PngImage::parse(b"JUNK").is_none());
        let bytes = png.to_bytes();
        assert!(PngImage::parse(&bytes[..bytes.len() - 1]).is_none());
    }

    #[test]
    fn png_risks_and_scrub() {
        let png = PngImage::screenshot();
        let risks = png.risks();
        assert!(risks.iter().any(|r| r.kind == RiskKind::GpsLocation));
        assert!(risks.iter().any(|r| r.kind == RiskKind::HiddenContent));
        let clean = png.scrubbed();
        assert!(clean.risks().is_empty());
        assert_eq!(clean.pixels, png.pixels, "pixels preserved");
    }

    #[test]
    fn archive_roundtrip() {
        let archive = sample_camera_roll();
        let parsed = FileArchive::parse(&archive.to_bytes()).unwrap();
        assert_eq!(parsed, archive);
        assert!(FileArchive::parse(b"nope").is_none());
    }

    #[test]
    fn archive_scrub_recurses_and_drops_unknowns() {
        let archive = sample_camera_roll();
        let (clean, reports) = archive.scrub_members(ParanoiaLevel::Paranoid);
        // The jpeg and the png survive, scrubbed; the unknown text file
        // is dropped (cannot be certified).
        let names: Vec<&str> = clean.members.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"protest.jpg"));
        assert!(names.contains(&"screen.png"));
        assert!(!names.contains(&"notes.txt"));
        let notes_report = reports
            .iter()
            .find(|(n, _)| n == "notes.txt")
            .map(|(_, r)| r)
            .expect("reported");
        assert!(!notes_report.clean());
        // Everything that survived is risk-free.
        for (_, data) in &clean.members {
            assert!(analyze_any(data).is_empty(), "residual risk in member");
        }
    }

    #[test]
    fn analyze_any_dispatches() {
        assert!(!analyze_any(&PngImage::screenshot().to_bytes()).is_empty());
        assert!(!analyze_any(&sample_camera_roll().to_bytes()).is_empty());
        assert_eq!(
            analyze_any(b"plain unknown bytes")[0].kind,
            RiskKind::UnknownFormat
        );
        // Member names are prefixed in nested reports.
        let risks = analyze_any(&sample_camera_roll().to_bytes());
        assert!(risks
            .iter()
            .any(|r| r.detail.starts_with("protest.jpg:") || r.detail.starts_with("screen.png:")));
    }
}
