//! Synthetic media containers with realistic risk surfaces.
//!
//! Each format captures the fields the paper's scenarios worry about:
//! Bob's protest photo carries "GPS coordinates and his smartphone's
//! serial number" in EXIF (§2); documents leak authors and revision
//! history, and can hide non-visual content in "complex text or vector
//! graphics structures" (§3.6); steganography can survive naive
//! scrubbing (§6).
//!
//! Files serialize to length-prefixed binary with per-format magic so
//! the SaniVM pipeline operates on real bytes.

/// A rectangular region (face bounding boxes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// Left edge, pixels.
    pub x: u16,
    /// Top edge, pixels.
    pub y: u16,
    /// Width, pixels.
    pub w: u16,
    /// Height, pixels.
    pub h: u16,
}

/// EXIF-style metadata on a photo.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Exif {
    /// GPS fix, degrees (lat, lon).
    pub gps: Option<(f64, f64)>,
    /// Camera body serial number.
    pub camera_serial: Option<String>,
    /// Capture timestamp (Unix seconds).
    pub timestamp: Option<u64>,
    /// Artist/owner tag.
    pub artist: Option<String>,
}

impl Exif {
    /// Whether any identifying field is present.
    pub fn is_empty(&self) -> bool {
        self.gps.is_none()
            && self.camera_serial.is_none()
            && self.timestamp.is_none()
            && self.artist.is_none()
    }
}

/// A synthetic JPEG: pixels plus EXIF plus hidden extras.
#[derive(Debug, Clone, PartialEq)]
pub struct JpegImage {
    /// Pixel dimensions.
    pub width: u16,
    /// Pixel dimensions.
    pub height: u16,
    /// Luma samples (one byte per pixel; enough to carry watermarks and
    /// "visible" faces for the model).
    pub pixels: Vec<u8>,
    /// EXIF block.
    pub exif: Exif,
    /// Detectable faces (what OpenCV would find; §3.6 option (b)).
    pub faces: Vec<Region>,
    /// A steganographic payload hidden in low-order pixel bits, if any
    /// (§6: "Data may be hidden by steganography").
    pub stego_payload: Option<Vec<u8>>,
    /// An invisible vendor watermark (robust to metadata stripping but
    /// not to noise; §3.6 option (c)).
    pub watermark: Option<u64>,
}

impl JpegImage {
    /// A photo like Bob's protest shot: GPS, serial, faces, watermark.
    pub fn protest_photo() -> Self {
        let (width, height) = (640u16, 480u16);
        let mut pixels = vec![0u8; width as usize * height as usize];
        for (i, p) in pixels.iter_mut().enumerate() {
            // lint:allow(panic-free-parser): fixture generator, not a parser; % 251 bounds the value below 256
            *p = ((i * 31) % 251) as u8;
        }
        Self {
            width,
            height,
            pixels,
            exif: Exif {
                gps: Some((38.8977, -77.0365)),
                camera_serial: Some("SN-8842-TYR".to_string()),
                timestamp: Some(1_400_000_000),
                artist: Some("bob".to_string()),
            },
            faces: vec![
                Region {
                    x: 100,
                    y: 80,
                    w: 60,
                    h: 60,
                },
                Region {
                    x: 300,
                    y: 120,
                    w: 48,
                    h: 48,
                },
            ],
            stego_payload: None,
            watermark: Some(0xC0FFEE),
        }
    }
}

/// A synthetic PDF: visible text plus hidden structure.
#[derive(Debug, Clone, PartialEq)]
pub struct PdfDoc {
    /// Document metadata: author.
    pub author: Option<String>,
    /// Producing application.
    pub producer: Option<String>,
    /// Visible page text.
    pub pages: Vec<String>,
    /// Non-visual content: cropped-out text, OCG hidden layers,
    /// embedded object streams (§3.6: content "concealed ... in \[the\]
    /// document's complex text or vector graphics structures").
    pub hidden_layers: Vec<String>,
}

impl PdfDoc {
    /// A leaked-memo style document.
    pub fn memo() -> Self {
        Self {
            author: Some("bob@statepaper.ty".to_string()),
            producer: Some("LibreOffice 4.2".to_string()),
            pages: vec![
                "GLORIOUS LEADER OPENS NEW DAM".to_string(),
                "Page 2: production figures".to_string(),
            ],
            hidden_layers: vec!["tracked-change: delete 'allegedly'".to_string()],
        }
    }
}

/// A synthetic word-processor document.
#[derive(Debug, Clone, PartialEq)]
pub struct DocFile {
    /// Author field.
    pub author: Option<String>,
    /// Last-modified-by field.
    pub last_modified_by: Option<String>,
    /// Visible text.
    pub body: String,
    /// Revision history entries (prior text fragments).
    pub revisions: Vec<String>,
}

/// Any file entering the SaniVM.
#[derive(Debug, Clone, PartialEq)]
pub enum MediaFile {
    /// JPEG photo.
    Jpeg(JpegImage),
    /// PDF document.
    Pdf(PdfDoc),
    /// DOC document.
    Doc(DocFile),
    /// Unrecognized bytes — the analyzer flags these as unknown risk.
    Unknown(Vec<u8>),
}

const JPEG_MAGIC: &[u8; 4] = b"NJPG";
const PDF_MAGIC: &[u8; 4] = b"NPDF";
const DOC_MAGIC: &[u8; 4] = b"NDOC";

fn put_str(out: &mut Vec<u8>, s: &Option<String>) {
    match s {
        Some(v) => {
            out.extend_from_slice(&crate::len_u32(v.len()).saturating_add(1).to_le_bytes());
            out.extend_from_slice(v.as_bytes());
        }
        None => out.extend_from_slice(&0u32.to_le_bytes()),
    }
}

fn put_vec_str(out: &mut Vec<u8>, v: &[String]) {
    out.extend_from_slice(&crate::len_u32(v.len()).to_le_bytes());
    for s in v {
        out.extend_from_slice(&crate::len_u32(s.len()).to_le_bytes());
        out.extend_from_slice(s.as_bytes());
    }
}

struct Reader<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.pos + n > self.b.len() {
            return None;
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.take(2)?.try_into().ok()?))
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn opt_str(&mut self) -> Option<Option<String>> {
        let tag = self.u32()?;
        if tag == 0 {
            return Some(None);
        }
        let s = self.take(tag as usize - 1)?;
        Some(Some(String::from_utf8(s.to_vec()).ok()?))
    }

    fn vec_str(&mut self) -> Option<Vec<String>> {
        let n = self.u32()? as usize;
        if n > self.b.len() {
            return None; // Length sanity against hostile headers.
        }
        let mut out = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let len = self.u32()? as usize;
            let s = self.take(len)?;
            out.push(String::from_utf8(s.to_vec()).ok()?);
        }
        Some(out)
    }
}

impl MediaFile {
    /// Serializes to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            MediaFile::Jpeg(j) => {
                out.extend_from_slice(JPEG_MAGIC);
                out.extend_from_slice(&j.width.to_le_bytes());
                out.extend_from_slice(&j.height.to_le_bytes());
                out.extend_from_slice(&crate::len_u32(j.pixels.len()).to_le_bytes());
                out.extend_from_slice(&j.pixels);
                // EXIF.
                match j.exif.gps {
                    Some((lat, lon)) => {
                        out.push(1);
                        out.extend_from_slice(&lat.to_le_bytes());
                        out.extend_from_slice(&lon.to_le_bytes());
                    }
                    None => out.push(0),
                }
                put_str(&mut out, &j.exif.camera_serial);
                match j.exif.timestamp {
                    Some(t) => {
                        out.push(1);
                        out.extend_from_slice(&t.to_le_bytes());
                    }
                    None => out.push(0),
                }
                put_str(&mut out, &j.exif.artist);
                // Faces.
                out.extend_from_slice(&crate::len_u32(j.faces.len()).to_le_bytes());
                for f in &j.faces {
                    for v in [f.x, f.y, f.w, f.h] {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
                // Stego payload.
                match &j.stego_payload {
                    Some(p) => {
                        out.push(1);
                        out.extend_from_slice(&crate::len_u32(p.len()).to_le_bytes());
                        out.extend_from_slice(p);
                    }
                    None => out.push(0),
                }
                // Watermark.
                match j.watermark {
                    Some(w) => {
                        out.push(1);
                        out.extend_from_slice(&w.to_le_bytes());
                    }
                    None => out.push(0),
                }
            }
            MediaFile::Pdf(p) => {
                out.extend_from_slice(PDF_MAGIC);
                put_str(&mut out, &p.author);
                put_str(&mut out, &p.producer);
                put_vec_str(&mut out, &p.pages);
                put_vec_str(&mut out, &p.hidden_layers);
            }
            MediaFile::Doc(d) => {
                out.extend_from_slice(DOC_MAGIC);
                put_str(&mut out, &d.author);
                put_str(&mut out, &d.last_modified_by);
                put_vec_str(&mut out, core::slice::from_ref(&d.body));
                put_vec_str(&mut out, &d.revisions);
            }
            MediaFile::Unknown(bytes) => out.extend_from_slice(bytes),
        }
        out
    }

    /// Parses bytes; unrecognized content becomes [`MediaFile::Unknown`].
    pub fn parse(bytes: &[u8]) -> MediaFile {
        Self::try_parse(bytes).unwrap_or_else(|| MediaFile::Unknown(bytes.to_vec()))
    }

    fn try_parse(bytes: &[u8]) -> Option<MediaFile> {
        if bytes.len() < 4 {
            return None;
        }
        let mut r = Reader { b: bytes, pos: 4 };
        match &bytes[..4] {
            m if m == JPEG_MAGIC => {
                let width = r.u16()?;
                let height = r.u16()?;
                let plen = r.u32()? as usize;
                let pixels = r.take(plen)?.to_vec();
                let gps = if r.take(1)?[0] == 1 {
                    Some((r.f64()?, r.f64()?))
                } else {
                    None
                };
                let camera_serial = r.opt_str()?;
                let timestamp = if r.take(1)?[0] == 1 {
                    Some(r.u64()?)
                } else {
                    None
                };
                let artist = r.opt_str()?;
                let nfaces = r.u32()? as usize;
                if nfaces > bytes.len() {
                    return None;
                }
                let mut faces = Vec::with_capacity(nfaces.min(1024));
                for _ in 0..nfaces {
                    faces.push(Region {
                        x: r.u16()?,
                        y: r.u16()?,
                        w: r.u16()?,
                        h: r.u16()?,
                    });
                }
                let stego_payload = if r.take(1)?[0] == 1 {
                    let len = r.u32()? as usize;
                    Some(r.take(len)?.to_vec())
                } else {
                    None
                };
                let watermark = if r.take(1)?[0] == 1 {
                    Some(r.u64()?)
                } else {
                    None
                };
                if r.pos != bytes.len() {
                    return None;
                }
                Some(MediaFile::Jpeg(JpegImage {
                    width,
                    height,
                    pixels,
                    exif: Exif {
                        gps,
                        camera_serial,
                        timestamp,
                        artist,
                    },
                    faces,
                    stego_payload,
                    watermark,
                }))
            }
            m if m == PDF_MAGIC => {
                let author = r.opt_str()?;
                let producer = r.opt_str()?;
                let pages = r.vec_str()?;
                let hidden_layers = r.vec_str()?;
                if r.pos != bytes.len() {
                    return None;
                }
                Some(MediaFile::Pdf(PdfDoc {
                    author,
                    producer,
                    pages,
                    hidden_layers,
                }))
            }
            m if m == DOC_MAGIC => {
                let author = r.opt_str()?;
                let last_modified_by = r.opt_str()?;
                let body = r.vec_str()?.into_iter().next().unwrap_or_default();
                let revisions = r.vec_str()?;
                if r.pos != bytes.len() {
                    return None;
                }
                Some(MediaFile::Doc(DocFile {
                    author,
                    last_modified_by,
                    body,
                    revisions,
                }))
            }
            _ => None,
        }
    }

    /// Human-readable format name.
    pub fn format_name(&self) -> &'static str {
        match self {
            MediaFile::Jpeg(_) => "jpeg",
            MediaFile::Pdf(_) => "pdf",
            MediaFile::Doc(_) => "doc",
            MediaFile::Unknown(_) => "unknown",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jpeg_roundtrip() {
        let img = JpegImage::protest_photo();
        let f = MediaFile::Jpeg(img);
        let bytes = f.to_bytes();
        assert_eq!(MediaFile::parse(&bytes), f);
    }

    #[test]
    fn jpeg_with_stego_roundtrip() {
        let mut img = JpegImage::protest_photo();
        img.stego_payload = Some(b"hidden tracking id".to_vec());
        img.exif = Exif::default();
        img.watermark = None;
        let f = MediaFile::Jpeg(img);
        assert_eq!(MediaFile::parse(&f.to_bytes()), f);
    }

    #[test]
    fn pdf_roundtrip() {
        let f = MediaFile::Pdf(PdfDoc::memo());
        assert_eq!(MediaFile::parse(&f.to_bytes()), f);
    }

    #[test]
    fn doc_roundtrip() {
        let f = MediaFile::Doc(DocFile {
            author: Some("alice".into()),
            last_modified_by: None,
            body: "final text".into(),
            revisions: vec!["draft 1".into(), "draft 2".into()],
        });
        assert_eq!(MediaFile::parse(&f.to_bytes()), f);
    }

    #[test]
    fn unknown_passthrough() {
        let f = MediaFile::parse(b"GIF89a....");
        assert!(matches!(f, MediaFile::Unknown(_)));
        assert_eq!(f.format_name(), "unknown");
        assert_eq!(f.to_bytes(), b"GIF89a....");
    }

    #[test]
    fn truncated_jpeg_degrades_to_unknown() {
        let bytes = MediaFile::Jpeg(JpegImage::protest_photo()).to_bytes();
        let cut = &bytes[..bytes.len() / 2];
        assert!(matches!(MediaFile::parse(cut), MediaFile::Unknown(_)));
    }

    #[test]
    fn trailing_garbage_degrades_to_unknown() {
        let mut bytes = MediaFile::Pdf(PdfDoc::memo()).to_bytes();
        bytes.push(0xFF);
        assert!(matches!(MediaFile::parse(&bytes), MediaFile::Unknown(_)));
    }

    #[test]
    fn exif_emptiness() {
        assert!(Exif::default().is_empty());
        assert!(!JpegImage::protest_photo().exif.is_empty());
    }
}
