//! Pins the disabled-recorder overhead contract: a `span!`/`counter!`
//! call site with the recorder off is a relaxed load and a branch —
//! it must never touch the heap, so instrumented hot paths keep their
//! own allocation-freedom guarantees. This test binary never calls
//! `set_enabled(true)`; the whole process stays in the disabled state.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    /// Per-thread count so the parallel test harness can't leak one
    /// test's allocations into another's measurement window.
    static ALLOCATIONS: Cell<usize> = const { Cell::new(0) };
}

// lint:allow(forbid-unsafe): GlobalAlloc is an unsafe trait; this counting shim only delegates to System
unsafe impl GlobalAlloc for CountingAlloc {
    // lint:allow(forbid-unsafe): signature dictated by the GlobalAlloc contract
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) } // lint:allow(forbid-unsafe): direct pass-through to the System allocator
    }
    // lint:allow(forbid-unsafe): signature dictated by the GlobalAlloc contract
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) } // lint:allow(forbid-unsafe): direct pass-through to the System allocator
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` and returns how many heap allocations this thread performed.
fn allocations_in(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.with(Cell::get);
    f();
    ALLOCATIONS.with(Cell::get) - before
}

#[test]
fn disabled_call_sites_never_allocate() {
    assert!(
        !nymix_obs::enabled(),
        "this binary must keep the recorder off"
    );
    let n = allocations_in(|| {
        for i in 0..256u64 {
            let mut span = nymix_obs::span!("capture", "session" => i, "bytes" => i);
            span.add_modeled_us(i);
            nymix_obs::counter!("crypto.aead.seals", 1u64);
            nymix_obs::gauge!("placement.repair_queue", i);
            nymix_obs::histogram!("cloud.put_bytes", i);
            nymix_obs::sim_clock(i);
            std::hint::black_box(nymix_obs::sim_clock_now());
            drop(span);
        }
    });
    assert_eq!(n, 0, "disabled recorder call sites must not allocate");
}

#[test]
fn disabled_meter_never_allocates() {
    assert!(!nymix_obs::enabled());
    let mut meter = nymix_obs::meter!("cloud.backoff_us");
    let n = allocations_in(|| {
        for i in 0..256u64 {
            meter.add(i);
        }
        std::hint::black_box(meter.get());
        std::hint::black_box(meter.take());
    });
    assert_eq!(n, 0, "disabled Meter must not allocate");
}
