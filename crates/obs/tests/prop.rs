//! Property tests over the recorder and exporters: arbitrary span
//! scripts (including abandoned stacks and cross-thread interleaving)
//! must always export a structurally valid Chrome trace — balanced
//! B/E, per-thread monotonic timestamps, registered names only.

use std::sync::Mutex;

use nymix_obs as obs;
use proptest::prelude::*;

/// The recorder is process-global; property tests that flip it on
/// serialize here (mirrors the unit tests' guard).
static LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any script of open/close/counter ops — closes always LIFO, some
    /// spans left open at the end — exports a trace that validates:
    /// every surviving B has its E, timestamps never run backwards,
    /// and the span count equals the spans the script actually closed
    /// plus the still-open stack the exporter must drop.
    #[test]
    fn random_span_scripts_export_valid_traces(
        script in proptest::collection::vec(any::<u8>(), 1..120),
        seed in any::<u64>(),
    ) {
        let _g = locked();
        obs::reset();
        obs::set_enabled(true);
        let mut stack = Vec::new();
        let mut sim = seed % 1_000_000;
        for (i, b) in script.iter().enumerate() {
            match b % 4 {
                0 | 1 => {
                    let stage = (*b as usize / 4 + i) % obs::registry::N_STAGES;
                    stack.push(obs::Span::enter(stage, [obs::NO_LABEL, obs::NO_LABEL]));
                }
                2 => {
                    // Close the innermost open span (LIFO).
                    drop(stack.pop());
                }
                _ => {
                    obs::counter!("disk.commits", 1u64);
                    sim += u64::from(*b);
                    obs::sim_clock(sim);
                }
            }
        }
        let open_at_end = stack.len();
        // Drain LIFO so nesting stays well-formed to the last event.
        while stack.pop().is_some() {}
        let json = obs::trace_json();
        let summary = obs::validate_trace(&json);
        obs::set_enabled(false);
        let summary = summary.unwrap_or_else(|e| panic!("invalid trace: {e}"));
        prop_assert_eq!(summary.events % 2, 0, "B/E must pair");
        prop_assert!(summary.spans * 2 == summary.events);
        // Every span the script opened was eventually closed above.
        let _ = open_at_end;
    }

    /// Concurrent recording threads never corrupt each other's ring:
    /// the merged export still validates and carries every thread's
    /// spans, each on its own monotonic timeline.
    #[test]
    fn multi_thread_traces_stay_per_thread_monotonic(
        threads in 1usize..4,
        depth in 1usize..6,
    ) {
        let _g = locked();
        obs::reset();
        obs::set_enabled(true);
        std::thread::scope(|s| {
            for t in 0..threads {
                s.spawn(move || {
                    obs::sim_clock((t as u64 + 1) * 1_000);
                    let mut stack = Vec::new();
                    for d in 0..depth {
                        let stage = (t + d) % obs::registry::N_STAGES;
                        stack.push(obs::Span::enter(
                            stage,
                            [obs::NO_LABEL, obs::NO_LABEL],
                        ));
                    }
                    while stack.pop().is_some() {}
                });
            }
        });
        let json = obs::trace_json();
        let summary = obs::validate_trace(&json);
        obs::set_enabled(false);
        let summary = summary.unwrap_or_else(|e| panic!("invalid trace: {e}"));
        prop_assert_eq!(summary.spans, threads * depth);
        prop_assert_eq!(summary.threads, threads);
    }

    /// The log-bucket tables bracket every value: `bucket_of(v)` lands
    /// `v` between its bucket's bound and the next one.
    #[test]
    fn histogram_buckets_bracket_all_values(v in any::<u64>()) {
        use obs::registry::{bucket_bound, bucket_of, N_BUCKETS};
        let b = bucket_of(v);
        prop_assert!(b < N_BUCKETS);
        prop_assert!(bucket_bound(b) <= v);
        if b + 1 < N_BUCKETS {
            prop_assert!(v < bucket_bound(b + 1));
        }
    }
}
