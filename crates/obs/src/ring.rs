//! Per-thread recording state and the global thread directory.
//!
//! Each recording thread owns one [`Slab`]: relaxed atomic counter and
//! histogram arrays (written only by the owner, read by snapshotting
//! threads) plus a fixed-capacity event [`Ring`] behind an uncontended
//! mutex. Slabs are allocated on a thread's *first* recorded event and
//! registered in a process-wide directory; the `Arc` keeps a dead
//! worker thread's events readable until export. After that one cold
//! registration, the warm path never allocates — an enabled event is
//! an index store into the preallocated ring, and a disabled call site
//! is a single relaxed load and branch.

use std::cell::{Cell, OnceCell};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::registry::{bucket_of, N_BUCKETS, N_COUNTERS, N_GAUGES, N_HISTOGRAMS, N_STAGES};

/// Events a thread can hold before the ring overwrites its oldest.
pub const RING_CAPACITY: usize = 8192;

/// Marker for an unused label slot in an [`Event`].
pub const NO_LABEL: (u16, u64) = (u16::MAX, 0);

/// Begin/end phase of a span event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span opened (`ph: "B"` in the trace-event export).
    Begin,
    /// Span closed (`ph: "E"`).
    End,
}

/// One recorded span boundary. `Copy` and fixed-size so ring writes
/// are plain stores.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Begin or end.
    pub phase: Phase,
    /// Index into [`crate::registry::STAGES`].
    pub stage: u16,
    /// Recording thread, for per-`tid` timelines.
    pub tid: u32,
    /// Wall-clock microseconds since the process epoch.
    pub wall_us: u64,
    /// The thread's modeled sim-clock at the boundary, microseconds.
    pub sim_us: u64,
    /// Modeled duration explicitly charged to the span (end events).
    pub modeled_us: u64,
    /// Up to two `(label key id, value)` pairs; [`NO_LABEL`] when
    /// unused. Keys index [`crate::registry::LABEL_KEYS`].
    pub labels: [(u16, u64); 2],
}

/// Fixed-capacity overwrite-oldest event buffer.
#[derive(Debug, Default)]
pub struct Ring {
    buf: Vec<Event>,
    /// Next write position once the buffer is full.
    next: usize,
    /// Events lost to overwrite.
    dropped: u64,
}

impl Ring {
    pub(crate) fn push(&mut self, e: Event) {
        if self.buf.len() < RING_CAPACITY {
            if self.buf.capacity() == 0 {
                // The one cold allocation, on the thread's first event.
                self.buf.reserve_exact(RING_CAPACITY);
            }
            self.buf.push(e);
        } else {
            self.buf[self.next] = e;
            self.next = (self.next + 1) % RING_CAPACITY;
            self.dropped += 1;
        }
    }

    /// Events in record order (oldest first).
    pub(crate) fn ordered(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.next..]);
        out.extend_from_slice(&self.buf[..self.next]);
        out
    }

    pub(crate) fn clear(&mut self) {
        self.buf.clear();
        self.next = 0;
        self.dropped = 0;
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Per-stage running aggregate, merged across threads at snapshot.
#[derive(Debug, Default)]
pub struct StageAgg {
    pub(crate) count: AtomicU64,
    pub(crate) wall_us: AtomicU64,
    pub(crate) sim_us: AtomicU64,
    pub(crate) modeled_us: AtomicU64,
    pub(crate) wall_buckets: [AtomicU64; N_BUCKETS],
}

/// One histogram's buckets.
#[derive(Debug, Default)]
pub struct Histogram {
    pub(crate) buckets: [AtomicU64; N_BUCKETS],
}

/// One thread's recording state. All scalar cells are relaxed atomics:
/// the owner thread is the only writer, exporters only read.
#[derive(Debug)]
pub struct Slab {
    pub(crate) tid: u32,
    pub(crate) counters: [AtomicU64; N_COUNTERS],
    pub(crate) histograms: [Histogram; N_HISTOGRAMS],
    pub(crate) stages: [StageAgg; N_STAGES],
    pub(crate) ring: Mutex<Ring>,
}

impl Slab {
    fn new(tid: u32) -> Self {
        Self {
            tid,
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            histograms: std::array::from_fn(|_| Histogram::default()),
            stages: std::array::from_fn(|_| StageAgg::default()),
            ring: Mutex::new(Ring::default()),
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU32 = AtomicU32::new(1);
static THREADS: Mutex<Vec<Arc<Slab>>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();
static GAUGES: [AtomicU64; N_GAUGES] = [const { AtomicU64::new(0) }; N_GAUGES];

thread_local! {
    static SLAB: OnceCell<Arc<Slab>> = const { OnceCell::new() };
    /// The thread's view of the simulated clock, microseconds.
    static SIM_NOW: Cell<u64> = const { Cell::new(0) };
}

/// Turns the recorder on or off. Off (the default) every instrumented
/// call site costs one relaxed load and a branch.
pub fn set_enabled(on: bool) {
    if on {
        // Pin the wall epoch before the first event.
        let _ = EPOCH.get_or_init(Instant::now);
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the recorder is currently on.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Microseconds since the recorder's wall epoch (pinned at first
/// enable). Monotonic per thread — `Instant` never goes backwards.
#[inline]
pub(crate) fn epoch_us() -> u64 {
    // Saturating: u64 µs wraps after ~584k years of uptime.
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// Publishes the simulated clock to this thread's recorder, so span
/// boundaries carry modeled timestamps next to wall ones. Layers call
/// this whenever they advance their `SimTime`.
#[inline]
pub fn sim_clock(us: u64) {
    SIM_NOW.with(|c| c.set(us));
}

/// This thread's last published simulated clock.
#[inline]
#[must_use]
pub fn sim_clock_now() -> u64 {
    SIM_NOW.with(Cell::get)
}

/// Runs `f` against this thread's slab, registering one on first use.
#[inline]
pub(crate) fn with_slab<R>(f: impl FnOnce(&Slab) -> R) -> R {
    SLAB.with(|cell| {
        let slab = cell.get_or_init(|| {
            let slab = Arc::new(Slab::new(NEXT_TID.fetch_add(1, Ordering::Relaxed)));
            if let Ok(mut threads) = THREADS.lock() {
                threads.push(Arc::clone(&slab));
            }
            slab
        });
        f(slab)
    })
}

/// Every registered thread slab, for snapshot/export.
pub(crate) fn all_slabs() -> Vec<Arc<Slab>> {
    THREADS.lock().map(|t| t.clone()).unwrap_or_default()
}

/// Adds `n` to counter `id` (a [`crate::registry::counter_id`] index).
/// Prefer the [`crate::counter!`] macro, which resolves the id at
/// compile time.
#[inline]
pub fn count(id: usize, n: u64) {
    if !enabled() {
        return;
    }
    with_slab(|s| s.counters[id].fetch_add(n, Ordering::Relaxed));
}

/// Sets gauge `id` (a [`crate::registry::gauge_id`] index) to `v`.
#[inline]
pub fn gauge_set(id: usize, v: u64) {
    if !enabled() {
        return;
    }
    GAUGES[id].store(v, Ordering::Relaxed);
}

/// Records `v` into histogram `id` (a
/// [`crate::registry::histogram_id`] index).
#[inline]
pub fn observe(id: usize, v: u64) {
    if !enabled() {
        return;
    }
    with_slab(|s| s.histograms[id].buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed));
}

/// Current value of gauge `id`.
#[inline]
pub(crate) fn gauge_get(id: usize) -> u64 {
    GAUGES[id].load(Ordering::Relaxed)
}

/// Records a span-begin event on this thread. Returns the
/// `(wall_us, sim_us)` stamped on the event so the span guard can
/// compute durations at end without re-reading the clock twice.
pub(crate) fn record_begin(stage: u16, labels: [(u16, u64); 2]) -> (u64, u64) {
    let wall_us = epoch_us();
    let sim_us = sim_clock_now();
    with_slab(|s| {
        if let Ok(mut ring) = s.ring.lock() {
            ring.push(Event {
                phase: Phase::Begin,
                stage,
                tid: s.tid,
                wall_us,
                sim_us,
                modeled_us: 0,
                labels,
            });
        }
    });
    (wall_us, sim_us)
}

/// Records a span-end event and folds the completed span into the
/// thread's [`StageAgg`]. `modeled_us` is the explicit charge the span
/// accrued via `Span::add_modeled_us`.
pub(crate) fn record_end(
    stage: u16,
    labels: [(u16, u64); 2],
    start_wall_us: u64,
    start_sim_us: u64,
    modeled_us: u64,
) {
    let wall_us = epoch_us();
    let sim_us = sim_clock_now();
    let wall_dur = wall_us.saturating_sub(start_wall_us);
    let sim_dur = sim_us.saturating_sub(start_sim_us);
    with_slab(|s| {
        if let Ok(mut ring) = s.ring.lock() {
            ring.push(Event {
                phase: Phase::End,
                stage,
                tid: s.tid,
                wall_us,
                sim_us,
                modeled_us,
                labels,
            });
        }
        let agg = &s.stages[stage as usize];
        agg.count.fetch_add(1, Ordering::Relaxed);
        agg.wall_us.fetch_add(wall_dur, Ordering::Relaxed);
        agg.sim_us.fetch_add(sim_dur, Ordering::Relaxed);
        agg.modeled_us.fetch_add(modeled_us, Ordering::Relaxed);
        agg.wall_buckets[bucket_of(wall_dur)].fetch_add(1, Ordering::Relaxed);
    });
}

/// Drains the **current thread's** event ring, returning events in
/// record order. Test helper: lets a test inspect exactly what it
/// emitted without seeing other threads' events.
#[must_use]
pub fn take_thread_events() -> Vec<Event> {
    with_slab(|s| {
        let Ok(mut ring) = s.ring.lock() else {
            return Vec::new();
        };
        let out = ring.ordered();
        ring.clear();
        out
    })
}

/// Zeroes every counter, gauge, histogram and stage aggregate and
/// clears every ring. For test setup and example runs; racy against
/// concurrent recording threads (late events may survive the reset).
pub fn reset() {
    for g in &GAUGES {
        g.store(0, Ordering::Relaxed);
    }
    for slab in all_slabs() {
        for c in &slab.counters {
            c.store(0, Ordering::Relaxed);
        }
        for h in &slab.histograms {
            for b in &h.buckets {
                b.store(0, Ordering::Relaxed);
            }
        }
        for st in &slab.stages {
            st.count.store(0, Ordering::Relaxed);
            st.wall_us.store(0, Ordering::Relaxed);
            st.sim_us.store(0, Ordering::Relaxed);
            st.modeled_us.store(0, Ordering::Relaxed);
            for b in &st.wall_buckets {
                b.store(0, Ordering::Relaxed);
            }
        }
        if let Ok(mut ring) = slab.ring.lock() {
            ring.clear();
        }
    }
}
