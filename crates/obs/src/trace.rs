//! Chrome trace-event export and structural validation.
//!
//! [`trace_json`] drains every thread's event ring into the
//! `chrome://tracing` / Perfetto trace-event JSON format: duration
//! events (`ph: "B"`/`"E"`) keyed by `pid`/`tid`/`ts`, with the
//! sim-clock timestamp, charged modeled time and registered labels in
//! `args`. Because the rings overwrite their oldest events and spans
//! may still be open at export, the raw streams can contain orphan
//! boundaries; the exporter balance-filters each thread with a span
//! stack (an end without its begin is dropped, an unclosed begin is
//! dropped), so the emitted JSON is balanced by construction.
//!
//! [`validate_trace`] re-parses an exported trace with a dependency-
//! free JSON reader and re-checks the invariants from the outside —
//! shared by the `trace_check` CI binary and the structural proptests.

use crate::registry::{LABEL_KEYS, STAGES};
use crate::ring::{self, Event, Phase, NO_LABEL};

/// Keeps only events whose begin/end partner is also present,
/// preserving order. `events` must be one thread's stream in record
/// order; RAII guarantees LIFO nesting, so a stack suffices.
fn balance_filter(events: &[Event]) -> Vec<Event> {
    let mut keep = vec![false; events.len()];
    let mut stack: Vec<usize> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        match e.phase {
            Phase::Begin => stack.push(i),
            Phase::End => {
                // An end matches the innermost open begin of the same
                // stage; anything it would skip lost its own end to
                // ring overwrite and stays dropped.
                if let Some(pos) = stack.iter().rposition(|&b| events[b].stage == e.stage) {
                    keep[stack[pos]] = true;
                    keep[i] = true;
                    stack.truncate(pos);
                }
            }
        }
    }
    events
        .iter()
        .zip(keep)
        .filter_map(|(e, k)| k.then_some(*e))
        .collect()
}

fn push_event(out: &mut String, e: &Event, first: bool) {
    if !first {
        out.push_str(",\n");
    }
    let name = STAGES[e.stage as usize];
    let ph = match e.phase {
        Phase::Begin => "B",
        Phase::End => "E",
    };
    out.push_str(&format!(
        "    {{\"name\": \"{name}\", \"cat\": \"nymix\", \"ph\": \"{ph}\", \"pid\": 1, \
         \"tid\": {}, \"ts\": {}, \"args\": {{\"sim_us\": {}",
        e.tid, e.wall_us, e.sim_us
    ));
    if e.phase == Phase::End {
        out.push_str(&format!(", \"modeled_us\": {}", e.modeled_us));
    }
    for &(key, value) in &e.labels {
        if (key, value) == NO_LABEL {
            continue;
        }
        out.push_str(&format!(", \"{}\": {value}", LABEL_KEYS[key as usize]));
    }
    out.push_str("}}");
}

/// Exports every thread's recorded span events as Chrome trace-event
/// JSON. Events are balance-filtered per thread (see the module docs),
/// so the result always validates. Rings are left intact — exporting
/// is read-only.
#[must_use]
pub fn trace_json() -> String {
    let mut out = String::with_capacity(16 * 1024);
    out.push_str("{\"traceEvents\": [\n");
    let mut first = true;
    for slab in ring::all_slabs() {
        let events = match slab.ring.lock() {
            Ok(r) => r.ordered(),
            Err(_) => continue,
        };
        for e in balance_filter(&events) {
            push_event(&mut out, &e, first);
            first = false;
        }
    }
    out.push_str("\n]}\n");
    out
}

// --- minimal JSON reader (cold path; validation only) ---------------

/// A parsed JSON value. Numbers are restricted to unsigned integers —
/// the only kind nymix traces and snapshots contain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer.
    Num(u64),
    /// String (escapes resolved).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, field order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub(crate) fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(b), self.pos))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'0'..=b'9') => self.number(),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn keyword(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad keyword at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        let mut n: u64 = 0;
        while let Some(d @ b'0'..=b'9') = self.bytes.get(self.pos) {
            n = n
                .checked_mul(10)
                .and_then(|n| n.checked_add(u64::from(d - b'0')))
                .ok_or_else(|| format!("number overflow at byte {start}"))?;
            self.pos += 1;
        }
        if matches!(self.bytes.get(self.pos), Some(b'.' | b'e' | b'E' | b'-')) {
            return Err(format!(
                "non-integer number at byte {start}: traces carry only unsigned integers"
            ));
        }
        Ok(Json::Num(n))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.bytes.get(self.pos).copied();
                    self.pos += 1;
                    match esc {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        other => return Err(format!("unsupported escape {other:?}")),
                    }
                }
                Some(&b) if b < 0x80 => {
                    s.push(char::from(b));
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the full code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = rest.chars().next().ok_or("truncated string")?;
                    s.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("bad array at {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("bad object at {other:?}")),
            }
        }
    }
}

pub(crate) fn read_json(text: &str) -> Result<Json, String> {
    let mut r = Reader {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = r.value()?;
    r.skip_ws();
    if r.pos != r.bytes.len() {
        return Err(format!("trailing bytes after JSON at {}", r.pos));
    }
    Ok(v)
}

// --- structural validation ------------------------------------------

/// What [`validate_trace`] learned about a structurally valid trace.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// Total events.
    pub events: usize,
    /// Distinct `tid`s.
    pub threads: usize,
    /// Completed (begin+end) spans.
    pub spans: usize,
    /// For each stage name seen, the sorted distinct `session` label
    /// values observed on its begin events (empty when unlabeled).
    pub stage_sessions: Vec<(String, Vec<u64>)>,
}

impl TraceSummary {
    /// Distinct `session` values recorded for `stage`.
    #[must_use]
    pub fn sessions_of(&self, stage: &str) -> &[u64] {
        self.stage_sessions
            .iter()
            .find(|(s, _)| s == stage)
            .map_or(&[], |(_, v)| v.as_slice())
    }
}

/// Parses a Chrome trace-event JSON document and checks the structural
/// invariants the exporter guarantees:
///
/// * top level is an object with a `traceEvents` array;
/// * every event has `name` (a registered stage), `ph` of `"B"`/`"E"`,
///   integer `pid`/`tid`/`ts`, and an `args` object carrying `sim_us`;
/// * end events carry `modeled_us`;
/// * label keys in `args` are registry-registered;
/// * per `tid`, timestamps are monotonically non-decreasing and
///   begin/end events balance with LIFO (same-stage) nesting.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn validate_trace(text: &str) -> Result<TraceSummary, String> {
    let doc = read_json(text)?;
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        return Err("missing traceEvents array".into());
    };
    let mut summary = TraceSummary {
        events: events.len(),
        ..TraceSummary::default()
    };
    // Per-tid: (last ts, stack of open stage names).
    let mut threads: Vec<(u64, u64, Vec<String>)> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        if !STAGES.contains(&name) {
            return Err(format!("event {i}: unregistered stage {name:?}"));
        }
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        e.get("pid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i}: missing pid"))?;
        let tid = e
            .get("tid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i}: missing tid"))?;
        let ts = e
            .get("ts")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        let args = e
            .get("args")
            .ok_or_else(|| format!("event {i}: missing args"))?;
        args.get("sim_us")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i}: args.sim_us missing or not an integer"))?;
        if let Json::Obj(fields) = args {
            for (k, v) in fields {
                if k != "sim_us" && k != "modeled_us" && !LABEL_KEYS.contains(&k.as_str()) {
                    return Err(format!("event {i}: unregistered label key {k:?}"));
                }
                if v.as_u64().is_none() {
                    return Err(format!("event {i}: non-integer arg {k:?}"));
                }
            }
        } else {
            return Err(format!("event {i}: args is not an object"));
        }
        let slot = match threads.iter_mut().find(|(t, _, _)| *t == tid) {
            Some(s) => s,
            None => {
                threads.push((tid, 0, Vec::new()));
                threads.last_mut().expect("just pushed")
            }
        };
        if ts < slot.1 {
            return Err(format!(
                "event {i}: ts {ts} goes backwards on tid {tid} (last {})",
                slot.1
            ));
        }
        slot.1 = ts;
        match ph {
            "B" => slot.2.push(name.to_string()),
            "E" => {
                let open = slot
                    .2
                    .pop()
                    .ok_or_else(|| format!("event {i}: end with no open span on tid {tid}"))?;
                if open != name {
                    return Err(format!(
                        "event {i}: end of {name:?} but innermost open span is {open:?}"
                    ));
                }
                args.get("modeled_us")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("event {i}: end event missing args.modeled_us"))?;
                summary.spans += 1;
            }
            other => return Err(format!("event {i}: unsupported ph {other:?}")),
        }
        if ph == "B" {
            let session = args.get("session").and_then(Json::as_u64);
            if let Some(s) = session {
                match summary.stage_sessions.iter_mut().find(|(n, _)| n == name) {
                    Some((_, v)) => {
                        if !v.contains(&s) {
                            v.push(s);
                        }
                    }
                    None => summary.stage_sessions.push((name.to_string(), vec![s])),
                }
            } else if !summary.stage_sessions.iter().any(|(n, _)| n == name) {
                summary.stage_sessions.push((name.to_string(), Vec::new()));
            }
        }
    }
    for (tid, _, stack) in &threads {
        if !stack.is_empty() {
            return Err(format!(
                "tid {tid}: {} span(s) never closed: {stack:?}",
                stack.len()
            ));
        }
    }
    summary.threads = threads.len();
    for (_, v) in &mut summary.stage_sessions {
        v.sort_unstable();
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exported_trace_validates_round_trip() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        let _ = crate::take_thread_events();
        crate::sim_clock(100);
        {
            let _outer = crate::span!("capture", "session" => 4u64);
            crate::sim_clock(250);
            let mut inner = crate::span!("seal", "session" => 4u64, "bytes" => 512u64);
            inner.add_modeled_us(42);
        }
        let json = trace_json();
        crate::set_enabled(false);
        let summary = validate_trace(&json).expect("trace validates");
        assert!(summary.spans >= 2);
        assert!(summary.sessions_of("capture").contains(&4));
        assert!(summary.sessions_of("seal").contains(&4));
    }

    #[test]
    fn balance_filter_drops_orphans() {
        let mk = |phase, stage: u16| Event {
            phase,
            stage,
            tid: 1,
            wall_us: 0,
            sim_us: 0,
            modeled_us: 0,
            labels: [NO_LABEL, NO_LABEL],
        };
        // Orphan end (its begin was overwritten), a balanced pair, and
        // an unclosed begin.
        let events = vec![
            mk(Phase::End, 3),
            mk(Phase::Begin, 0),
            mk(Phase::End, 0),
            mk(Phase::Begin, 1),
        ];
        let kept = balance_filter(&events);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].stage, 0);
        assert_eq!(kept[1].stage, 0);
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_trace("not json").is_err());
        assert!(validate_trace("{}").is_err());
        // Unbalanced: a bare end event.
        let bad = r#"{"traceEvents": [{"name": "seal", "cat": "nymix", "ph": "E",
            "pid": 1, "tid": 1, "ts": 5, "args": {"sim_us": 0, "modeled_us": 0}}]}"#;
        assert!(validate_trace(bad).unwrap_err().contains("no open span"));
        // Unregistered label key.
        let bad = r#"{"traceEvents": [{"name": "seal", "cat": "nymix", "ph": "B",
            "pid": 1, "tid": 1, "ts": 5, "args": {"sim_us": 0, "nym": 3}}]}"#;
        assert!(validate_trace(bad).unwrap_err().contains("nym"));
        // Backwards timestamps within a tid.
        let bad = r#"{"traceEvents": [
            {"name": "seal", "cat": "nymix", "ph": "B", "pid": 1, "tid": 1, "ts": 9,
             "args": {"sim_us": 0}},
            {"name": "seal", "cat": "nymix", "ph": "E", "pid": 1, "tid": 1, "ts": 3,
             "args": {"sim_us": 0, "modeled_us": 0}}]}"#;
        assert!(validate_trace(bad).unwrap_err().contains("backwards"));
    }

    #[test]
    fn json_reader_handles_nesting_and_escapes() {
        let v = read_json(r#"{"a": [1, {"b": "x\ny"}, true, null], "c": 18446744073709551615}"#)
            .expect("parses");
        assert_eq!(
            v.get("a").and_then(|a| match a {
                Json::Arr(items) => items[1].get("b").and_then(Json::as_str),
                _ => None,
            }),
            Some("x\ny")
        );
        assert_eq!(v.get("c").and_then(Json::as_u64), Some(u64::MAX));
        assert!(read_json("[1,]").is_err());
        assert!(read_json("1.5").is_err());
    }
}
