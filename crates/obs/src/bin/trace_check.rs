//! CI trace checker: validates a Chrome trace-event file emitted by
//! the `nym_fleet` example under `NYMIX_TRACE=1`.
//!
//! Beyond the structural invariants (`nymix_obs::validate_trace`:
//! balanced B/E per thread, monotonic timestamps, registered stages
//! and label keys, wall + modeled fields), it checks *coverage*:
//! session ids are opaque (the manager hands them out starting from
//! 1, and a restored fleet gets fresh ids), so the check is that at
//! least N distinct sessions carry every required stage — and that
//! one common set of N sessions went through *all* of them.
//!
//! ```text
//! trace_check fleet.trace.json --sessions 8 --stages capture,chunk,seal,upload
//! ```

#![forbid(unsafe_code)]

use std::process::ExitCode;

const DEFAULT_STAGES: &str = "capture,chunk,seal,upload";

fn usage() -> ExitCode {
    eprintln!("usage: trace_check <trace.json> [--sessions N] [--stages a,b,c]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        return usage();
    };
    let mut sessions: u64 = 8;
    let mut stages = DEFAULT_STAGES.to_string();
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else {
            return usage();
        };
        match flag.as_str() {
            "--sessions" => match value.parse() {
                Ok(n) => sessions = n,
                Err(_) => return usage(),
            },
            "--stages" => stages = value,
            _ => return usage(),
        }
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let summary = match nymix_obs::validate_trace(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("trace_check: {path}: structurally invalid: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut failed = false;
    let mut common: Option<Vec<u64>> = None;
    for stage in stages.split(',').filter(|s| !s.is_empty()) {
        let seen = summary.sessions_of(stage);
        if seen.len() as u64 >= sessions {
            println!(
                "trace_check: stage {stage:>12}: {} distinct sessions (need {sessions})",
                seen.len()
            );
        } else {
            eprintln!(
                "trace_check: stage {stage:>12}: only {} distinct sessions, need \
                 {sessions} (saw {seen:?})",
                seen.len()
            );
            failed = true;
        }
        common = Some(match common {
            None => seen.to_vec(),
            Some(c) => c.into_iter().filter(|s| seen.contains(s)).collect(),
        });
    }
    // The same cohort must have gone through every required stage.
    let common = common.unwrap_or_default();
    if (common.len() as u64) < sessions {
        eprintln!(
            "trace_check: only {} sessions covered by every required stage, need {sessions}",
            common.len()
        );
        failed = true;
    } else {
        println!(
            "trace_check: {} sessions covered by every required stage",
            common.len()
        );
    }
    println!(
        "trace_check: {} events, {} completed spans, {} threads",
        summary.events, summary.spans, summary.threads
    );
    if failed {
        ExitCode::FAILURE
    } else {
        println!("trace_check: OK: {path}");
        ExitCode::SUCCESS
    }
}
