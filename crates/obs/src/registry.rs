//! The static telemetry vocabulary: every stage name, metric name and
//! label key the recorder will ever emit, fixed at compile time.
//!
//! This mirrors the role `nymix-lint`'s `Registry` plays for trust
//! boundaries: the vocabulary *is* the privacy argument. Telemetry can
//! only name things listed here, label **values** are bare integers
//! (session indices, child indices, byte counts, packed exit
//! addresses), and nothing else — a nym label, an object name or a key
//! byte has no representable form in the event stream. The
//! `obs-label-hygiene` lint rule enforces the same vocabulary at every
//! `span!`/`counter!` call site, and the const lookup functions below
//! turn an unregistered name into a *compile error* before the lint
//! ever runs.
//!
//! See `OBSERVABILITY.md` at the repo root for the span taxonomy and
//! how to extend these tables.

// The lint crate's `registry_matches_obs_vocabulary` test extracts
// every string literal between the two marker comments below and
// cross-checks it against `Registry::nymix().obs_labels`. Keep new
// names inside the markers.

// lint-vocabulary-begin

/// Span stage names, the `span!` taxonomy. Indexed by [`stage_id`].
pub const STAGES: &[&str] = &[
    // Save pipeline, per session (crates/core/src/manager/pipeline.rs).
    "capture",
    "chunk",
    "seal",
    "upload",
    // Restore pipeline (crates/core/src/manager/restore.rs).
    "fetch",
    "replay",
    "resolve",
    // Disk store (crates/store/src/disk).
    "journal_commit",
    "recovery",
    // Placement (crates/store/src/placement).
    "shard_write",
    "quorum_wait",
    "repair",
    // Fleet-level session activity (crates/core/src/manager/fleet.rs).
    "browse",
    "restore",
];

/// Label keys admissible on spans. Values are always plain `u64`s.
pub const LABEL_KEYS: &[&str] = &[
    "session", "child", "exit", "bytes", "objects", "epoch", "chunks",
];

/// Monotonic counters. Indexed by [`counter_id`].
pub const COUNTERS: &[&str] = &[
    "crypto.aead.seals",
    "crypto.aead.opens",
    "crypto.sha256.blocks",
    "crypto.kdf.calls",
    "cloud.auth",
    "cloud.puts",
    "cloud.gets",
    "cloud.ops",
    "cloud.dropped",
    "cloud.backoff_us",
    "disk.commits",
    "disk.recoveries",
    "disk.writes",
    "disk.bytes_written",
    "disk.reads",
    "disk.bytes_read",
    "disk.fsyncs",
    "disk.tier_hits",
    "disk.tier_misses",
    "placement.shard_writes",
    "placement.shard_failures",
    "placement.repair_passes",
    "placement.shards_rebuilt",
    "placement.deletes_flushed",
    "merkle.cache_hit",
    "merkle.leaf_rehash",
];

/// Last-write-wins gauges. Indexed by [`gauge_id`].
pub const GAUGES: &[&str] = &[
    "disk.garbage_bytes",
    "placement.repair_queue",
    "placement.pending_deletes",
    "crypto.sha256.backend",
];

/// Log-bucketed value histograms. Indexed by [`histogram_id`].
pub const HISTOGRAMS: &[&str] = &["disk.commit_bytes", "cloud.put_bytes"];

// lint-vocabulary-end

/// Number of registered stages.
pub const N_STAGES: usize = STAGES.len();
/// Number of registered counters.
pub const N_COUNTERS: usize = COUNTERS.len();
/// Number of registered gauges.
pub const N_GAUGES: usize = GAUGES.len();
/// Number of registered histograms.
pub const N_HISTOGRAMS: usize = HISTOGRAMS.len();

/// Buckets per histogram: power-of-two bounds, `bucket i` counting
/// values in `[2^(i-1), 2^i)` (bucket 0 holds zero). 32 buckets cover
/// the full range the saturating [`bucket_of`] maps into.
pub const N_BUCKETS: usize = 32;

/// Lower bound (inclusive) of histogram bucket `i` — the const bucket
/// table, so exporters never compute with floats.
#[must_use]
pub const fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Bucket index for `v`: HDR-style floor-log2, saturating into the
/// last bucket. Integer-only, no floats on the hot path.
#[must_use]
pub const fn bucket_of(v: u64) -> usize {
    let b = (u64::BITS - v.leading_zeros()) as usize;
    if b >= N_BUCKETS {
        N_BUCKETS - 1
    } else {
        b
    }
}

const fn str_eq(a: &str, b: &str) -> bool {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    if a.len() != b.len() {
        return false;
    }
    let mut i = 0;
    while i < a.len() {
        if a[i] != b[i] {
            return false;
        }
        i += 1;
    }
    true
}

const fn lookup(table: &[&str], name: &str) -> Option<usize> {
    let mut i = 0;
    while i < table.len() {
        if str_eq(table[i], name) {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Index of a registered stage name. Evaluate inside a `const` block
/// (the macros do) so an unregistered stage fails the build.
///
/// # Panics
///
/// Panics when `name` is not in [`STAGES`].
#[must_use]
pub const fn stage_id(name: &str) -> usize {
    match lookup(STAGES, name) {
        Some(i) => i,
        None => panic!("stage name is not in the nymix-obs registry (see OBSERVABILITY.md)"),
    }
}

/// Index of a registered label key.
///
/// # Panics
///
/// Panics when `name` is not in [`LABEL_KEYS`].
#[must_use]
pub const fn label_id(name: &str) -> usize {
    match lookup(LABEL_KEYS, name) {
        Some(i) => i,
        None => panic!("label key is not in the nymix-obs registry (see OBSERVABILITY.md)"),
    }
}

/// Index of a registered counter.
///
/// # Panics
///
/// Panics when `name` is not in [`COUNTERS`].
#[must_use]
pub const fn counter_id(name: &str) -> usize {
    match lookup(COUNTERS, name) {
        Some(i) => i,
        None => panic!("counter name is not in the nymix-obs registry (see OBSERVABILITY.md)"),
    }
}

/// Index of a registered gauge.
///
/// # Panics
///
/// Panics when `name` is not in [`GAUGES`].
#[must_use]
pub const fn gauge_id(name: &str) -> usize {
    match lookup(GAUGES, name) {
        Some(i) => i,
        None => panic!("gauge name is not in the nymix-obs registry (see OBSERVABILITY.md)"),
    }
}

/// Index of a registered histogram.
///
/// # Panics
///
/// Panics when `name` is not in [`HISTOGRAMS`].
#[must_use]
pub const fn histogram_id(name: &str) -> usize {
    match lookup(HISTOGRAMS, name) {
        Some(i) => i,
        None => panic!("histogram name is not in the nymix-obs registry (see OBSERVABILITY.md)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookups_resolve_registered_names() {
        assert_eq!(stage_id("capture"), 0);
        assert_eq!(STAGES[stage_id("upload")], "upload");
        assert_eq!(COUNTERS[counter_id("cloud.ops")], "cloud.ops");
        assert_eq!(GAUGES[gauge_id("disk.garbage_bytes")], "disk.garbage_bytes");
        assert_eq!(
            HISTOGRAMS[histogram_id("cloud.put_bytes")],
            "cloud.put_bytes"
        );
        assert_eq!(LABEL_KEYS[label_id("session")], "session");
    }

    #[test]
    fn vocabulary_has_no_duplicates() {
        for table in [STAGES, LABEL_KEYS, COUNTERS, GAUGES, HISTOGRAMS] {
            for (i, a) in table.iter().enumerate() {
                for b in &table[i + 1..] {
                    assert_ne!(a, b, "duplicate vocabulary entry");
                }
            }
        }
    }

    #[test]
    fn buckets_are_monotonic_and_saturating() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), N_BUCKETS - 1);
        for i in 1..N_BUCKETS {
            assert!(bucket_bound(i) > bucket_bound(i - 1) || i == 1);
            // Every bound maps into its own bucket.
            assert_eq!(bucket_of(bucket_bound(i)), i.min(N_BUCKETS - 1));
        }
    }
}
