//! Point-in-time metrics snapshot and its JSON export.
//!
//! A snapshot merges every thread slab's counters, histograms and
//! stage aggregates into one view. The JSON form feeds `BENCH_*.json`
//! artifacts and the `nym_fleet` example's end-of-run report; the
//! format is documented in `OBSERVABILITY.md`.

use crate::registry::{
    bucket_bound, COUNTERS, GAUGES, HISTOGRAMS, N_BUCKETS, N_COUNTERS, N_HISTOGRAMS, N_STAGES,
    STAGES,
};
use crate::ring;
use std::sync::atomic::Ordering;

/// Merged view of one histogram.
#[derive(Debug, Clone)]
pub struct HistogramSnap {
    /// Registered histogram name.
    pub name: &'static str,
    /// Total observations.
    pub count: u64,
    /// Per-bucket counts; bucket `i` covers values starting at
    /// [`bucket_bound`]`(i)`.
    pub buckets: [u64; N_BUCKETS],
}

/// Merged view of one span stage's aggregate.
#[derive(Debug, Clone)]
pub struct StageSnap {
    /// Registered stage name.
    pub stage: &'static str,
    /// Completed spans.
    pub count: u64,
    /// Summed wall-clock duration, microseconds.
    pub wall_us: u64,
    /// Summed sim-clock elapsed between span boundaries, microseconds.
    pub sim_us: u64,
    /// Summed explicitly-charged modeled time, microseconds.
    pub modeled_us: u64,
    /// Log-bucketed wall-duration histogram.
    pub wall_buckets: [u64; N_BUCKETS],
}

/// A point-in-time merge of every thread's recorded metrics.
#[derive(Debug, Clone)]
pub struct ObsSnapshot {
    /// `(name, value)` for each registered counter, in registry order.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, value)` for each registered gauge, in registry order.
    pub gauges: Vec<(&'static str, u64)>,
    /// Every registered histogram, in registry order.
    pub histograms: Vec<HistogramSnap>,
    /// Every registered stage aggregate, in registry order.
    pub stages: Vec<StageSnap>,
    /// Span events lost to ring-buffer overwrite, across all threads.
    pub dropped_events: u64,
}

/// Takes a snapshot of the current metric state across all threads.
/// Safe (and meaningful) whether or not the recorder is enabled.
#[must_use]
pub fn snapshot() -> ObsSnapshot {
    let slabs = ring::all_slabs();
    let mut counters = [0u64; N_COUNTERS];
    let mut hists = vec![[0u64; N_BUCKETS]; N_HISTOGRAMS];
    let mut stage_scalars = [[0u64; 4]; N_STAGES];
    let mut stage_buckets = vec![[0u64; N_BUCKETS]; N_STAGES];
    let mut dropped_events = 0u64;
    for slab in &slabs {
        for (acc, c) in counters.iter_mut().zip(slab.counters.iter()) {
            *acc = acc.saturating_add(c.load(Ordering::Relaxed));
        }
        for (acc, h) in hists.iter_mut().zip(slab.histograms.iter()) {
            for (a, b) in acc.iter_mut().zip(h.buckets.iter()) {
                *a = a.saturating_add(b.load(Ordering::Relaxed));
            }
        }
        for (i, agg) in slab.stages.iter().enumerate() {
            let s = &mut stage_scalars[i];
            s[0] = s[0].saturating_add(agg.count.load(Ordering::Relaxed));
            s[1] = s[1].saturating_add(agg.wall_us.load(Ordering::Relaxed));
            s[2] = s[2].saturating_add(agg.sim_us.load(Ordering::Relaxed));
            s[3] = s[3].saturating_add(agg.modeled_us.load(Ordering::Relaxed));
            for (a, b) in stage_buckets[i].iter_mut().zip(agg.wall_buckets.iter()) {
                *a = a.saturating_add(b.load(Ordering::Relaxed));
            }
        }
        if let Ok(r) = slab.ring.lock() {
            dropped_events = dropped_events.saturating_add(r.dropped());
        }
    }
    ObsSnapshot {
        counters: COUNTERS
            .iter()
            .zip(counters)
            .map(|(n, v)| (*n, v))
            .collect(),
        gauges: GAUGES
            .iter()
            .enumerate()
            .map(|(i, n)| (*n, ring::gauge_get(i)))
            .collect(),
        histograms: HISTOGRAMS
            .iter()
            .zip(hists)
            .map(|(name, buckets)| HistogramSnap {
                name,
                count: buckets.iter().sum(),
                buckets,
            })
            .collect(),
        stages: STAGES
            .iter()
            .enumerate()
            .map(|(i, stage)| StageSnap {
                stage,
                count: stage_scalars[i][0],
                wall_us: stage_scalars[i][1],
                sim_us: stage_scalars[i][2],
                modeled_us: stage_scalars[i][3],
                wall_buckets: stage_buckets[i],
            })
            .collect(),
        dropped_events,
    }
}

fn push_bucket_pairs(out: &mut String, buckets: &[u64; N_BUCKETS]) {
    out.push('[');
    let mut first = true;
    for (i, &c) in buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("[{},{}]", bucket_bound(i), c));
    }
    out.push(']');
}

impl ObsSnapshot {
    /// Value of a registered counter by name.
    ///
    /// # Panics
    ///
    /// Panics when `name` is not a registered counter.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("unregistered counter {name:?}"))
            .1
    }

    /// Value of a registered gauge by name.
    ///
    /// # Panics
    ///
    /// Panics when `name` is not a registered gauge.
    #[must_use]
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("unregistered gauge {name:?}"))
            .1
    }

    /// Aggregate for a registered stage by name.
    ///
    /// # Panics
    ///
    /// Panics when `name` is not a registered stage.
    #[must_use]
    pub fn stage(&self, name: &str) -> &StageSnap {
        self.stages
            .iter()
            .find(|s| s.stage == name)
            .unwrap_or_else(|| panic!("unregistered stage {name:?}"))
    }

    /// Serializes the snapshot as JSON. Zero-valued counters and
    /// gauges are kept (so consumers see the full vocabulary);
    /// histogram buckets are emitted sparsely as
    /// `[lower_bound, count]` pairs.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{name}\": {v}"));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{name}\": {v}"));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"buckets\": ",
                h.name, h.count
            ));
            push_bucket_pairs(&mut out, &h.buckets);
            out.push('}');
        }
        out.push_str("\n  },\n  \"stages\": {");
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"wall_us\": {}, \"sim_us\": {}, \"modeled_us\": {}, \"wall_buckets\": ",
                s.stage, s.count, s.wall_us, s.sim_us, s.modeled_us
            ));
            push_bucket_pairs(&mut out, &s.wall_buckets);
            out.push('}');
        }
        out.push_str(&format!(
            "\n  }},\n  \"dropped_events\": {}\n}}\n",
            self.dropped_events
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_merges_counters_and_serializes() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        crate::counter!("crypto.kdf.calls", 2u64);
        crate::gauge!("disk.garbage_bytes", 777u64);
        crate::histogram!("cloud.put_bytes", 1500u64);
        let snap = snapshot();
        crate::set_enabled(false);
        assert!(snap.counter("crypto.kdf.calls") >= 2);
        assert_eq!(snap.gauge("disk.garbage_bytes"), 777);
        let h = &snap.histograms[1];
        assert_eq!(h.name, "cloud.put_bytes");
        assert!(h.count >= 1);
        let json = snap.to_json();
        assert!(json.contains("\"crypto.kdf.calls\""));
        assert!(json.contains("\"disk.garbage_bytes\": 777"));
        assert!(json.contains("\"dropped_events\""));
    }
}
