//! # nymix-obs — privacy-disciplined tracing and metrics
//!
//! A structured span/metric layer for the whole workspace, recording
//! **both wall time and sim-clock modeled time** into per-thread
//! fixed-capacity ring buffers. Two exporters: a JSON metrics snapshot
//! ([`ObsSnapshot::to_json`]) and Chrome `chrome://tracing` trace-event
//! format ([`trace_json`]), so a full fleet heartbeat renders as a
//! timeline of overlapping per-session stage spans.
//!
//! The full span taxonomy, the privacy rationale behind the static
//! label registry, both exporter formats, and the recipe for adding an
//! instrumentation point without tripping the `obs-label-hygiene` lint
//! rule are documented in
//! [`OBSERVABILITY.md`](https://github.com/nymix/nymix/blob/main/OBSERVABILITY.md)
//! at the repository root.
//!
//! ## Design constraints
//!
//! * **Zero dependencies, no unsafe.** The crate sits below every
//!   other workspace crate (even `nymix-crypto` counts through it), so
//!   it depends on nothing and represents modeled time as raw `u64`
//!   microseconds instead of importing `nymix_sim::SimTime`.
//! * **Disabled means free.** The recorder is off by default; a
//!   disabled call site is one relaxed atomic load and a branch, and
//!   never touches the heap — the workspace `no_alloc` tests pin this.
//! * **Static vocabulary.** Stage names, metric names and label keys
//!   are `&'static str` drawn from the [`registry`] tables; the macros
//!   resolve them in `const` blocks, so an unregistered name is a
//!   compile error. Label *values* are bare integers — session
//!   indices, child indices, byte counts and packed exit addresses are
//!   admissible; nym labels, object names and key material have no
//!   representable form.
//! * **Integer-only hot path.** Histograms are HDR-style log buckets
//!   over a const bound table ([`registry::bucket_bound`]); no floats
//!   anywhere near a record call.
//!
//! ## Recording
//!
//! ```
//! // Stages, counters and labels must be registry-registered.
//! let mut span = nymix_obs::span!("capture", "session" => 3usize);
//! nymix_obs::counter!("crypto.aead.seals", 1u64);
//! span.add_modeled_us(1_500); // charge sim-clock time to the span
//! drop(span); // RAII: the end event records wall + modeled duration
//! ```

#![forbid(unsafe_code)]

pub mod registry;
mod ring;
mod snapshot;
mod trace;

pub use ring::{
    count, enabled, gauge_set, observe, reset, set_enabled, sim_clock, sim_clock_now,
    take_thread_events, Event, Phase, NO_LABEL, RING_CAPACITY,
};
pub use snapshot::{snapshot, HistogramSnap, ObsSnapshot, StageSnap};
pub use trace::{trace_json, validate_trace, TraceSummary};

/// Conversion into the integer-only label/counter value domain. The
/// macros call this instead of `as u64` so widening stays explicit and
/// lossless per type.
pub trait IntoLabelValue {
    /// The value as a `u64`.
    fn into_label(self) -> u64;
}

macro_rules! impl_into_label {
    ($($t:ty),*) => {
        $(impl IntoLabelValue for $t {
            #[inline]
            fn into_label(self) -> u64 {
                self as u64
            }
        })*
    };
}
impl_into_label!(u8, u16, u32, u64, usize);

impl IntoLabelValue for bool {
    #[inline]
    fn into_label(self) -> u64 {
        u64::from(self)
    }
}

/// An RAII span guard: records a begin event on creation and the
/// matching end event on drop — including during panic unwinding, so
/// exported traces stay balanced. Create via [`span!`](crate::span!).
#[must_use = "a span measures the scope it lives in; dropping it immediately records nothing"]
#[derive(Debug)]
pub struct Span {
    stage: u16,
    start_wall_us: u64,
    start_sim_us: u64,
    modeled_us: u64,
    labels: [(u16, u64); 2],
    armed: bool,
}

impl Span {
    /// Opens a span over stage index `stage` (a
    /// [`registry::stage_id`] index) with up to two labels. Prefer
    /// [`span!`](crate::span!), which resolves names at compile time.
    #[inline]
    pub fn enter(stage: usize, labels: [(u16, u64); 2]) -> Span {
        let stage = stage as u16;
        if !enabled() {
            return Span {
                stage,
                start_wall_us: 0,
                start_sim_us: 0,
                modeled_us: 0,
                labels,
                armed: false,
            };
        }
        Self::enter_armed(stage, labels)
    }

    // Outlined so the disabled path above stays branch-plus-return.
    fn enter_armed(stage: u16, labels: [(u16, u64); 2]) -> Span {
        let wall = ring::record_begin(stage, labels);
        Span {
            stage,
            start_wall_us: wall.0,
            start_sim_us: wall.1,
            modeled_us: 0,
            labels,
            armed: true,
        }
    }

    /// Charges `us` microseconds of sim-clock modeled time to this
    /// span, on top of the modeled timestamps the boundaries carry.
    /// Layers that compute a modeled duration out of band (the save
    /// pipeline's transfer/disk pricing) report it here.
    #[inline]
    pub fn add_modeled_us(&mut self, us: u64) {
        self.modeled_us = self.modeled_us.saturating_add(us);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.armed {
            ring::record_end(
                self.stage,
                self.labels,
                self.start_wall_us,
                self.start_sim_us,
                self.modeled_us,
            );
        }
    }
}

/// An always-on local tally backed by the obs counter machinery: the
/// instance keeps its own total (readable and drainable regardless of
/// whether the recorder is enabled, so existing accounting APIs keep
/// their semantics) and mirrors every increment into the named global
/// counter when recording is on. This is the primitive `AccessLog`
/// totals, `DiskStats` tallies and retry-backoff accrual are built on.
/// Create via [`meter!`](crate::meter!).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Meter {
    total: u64,
    id: usize,
}

impl Meter {
    /// A zeroed meter mirroring into counter `id` (a
    /// [`registry::counter_id`] index). Prefer
    /// [`meter!`](crate::meter!).
    #[must_use]
    pub const fn new(id: usize) -> Self {
        Self { total: 0, id }
    }

    /// Adds `n` locally and mirrors it into the global counter.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.total = self.total.saturating_add(n);
        count(self.id, n);
    }

    /// The local total since construction (or the last [`Meter::take`]).
    #[inline]
    #[must_use]
    pub fn get(&self) -> u64 {
        self.total
    }

    /// Drains the local total. The global mirror stays monotonic —
    /// draining an instance view never un-counts fleet-wide telemetry.
    #[inline]
    pub fn take(&mut self) -> u64 {
        std::mem::take(&mut self.total)
    }
}

/// Opens an RAII span over a registered stage, with optional
/// registered labels: `span!("capture")`,
/// `span!("seal", "session" => idx)`,
/// `span!("upload", "session" => idx, "bytes" => len)`.
///
/// Stage and label names are resolved against [`registry`] in `const`
/// blocks — an unregistered name fails the build. Values go through
/// [`IntoLabelValue`] (unsigned integers and `bool`).
#[macro_export]
macro_rules! span {
    ($stage:literal) => {
        $crate::Span::enter(
            const { $crate::registry::stage_id($stage) },
            [$crate::NO_LABEL, $crate::NO_LABEL],
        )
    };
    ($stage:literal, $k:literal => $v:expr) => {
        $crate::Span::enter(
            const { $crate::registry::stage_id($stage) },
            [
                (
                    const { $crate::registry::label_id($k) } as u16,
                    $crate::IntoLabelValue::into_label($v),
                ),
                $crate::NO_LABEL,
            ],
        )
    };
    ($stage:literal, $k1:literal => $v1:expr, $k2:literal => $v2:expr) => {
        $crate::Span::enter(
            const { $crate::registry::stage_id($stage) },
            [
                (
                    const { $crate::registry::label_id($k1) } as u16,
                    $crate::IntoLabelValue::into_label($v1),
                ),
                (
                    const { $crate::registry::label_id($k2) } as u16,
                    $crate::IntoLabelValue::into_label($v2),
                ),
            ],
        )
    };
}

/// Adds to a registered monotonic counter:
/// `counter!("crypto.aead.seals", 1u64)`. The name resolves at compile
/// time against [`registry::COUNTERS`].
#[macro_export]
macro_rules! counter {
    ($name:literal, $n:expr) => {
        $crate::count(
            const { $crate::registry::counter_id($name) },
            $crate::IntoLabelValue::into_label($n),
        )
    };
}

/// Sets a registered gauge: `gauge!("disk.garbage_bytes", bytes)`.
#[macro_export]
macro_rules! gauge {
    ($name:literal, $v:expr) => {
        $crate::gauge_set(
            const { $crate::registry::gauge_id($name) },
            $crate::IntoLabelValue::into_label($v),
        )
    };
}

/// Records a value into a registered log-bucketed histogram:
/// `histogram!("disk.commit_bytes", len)`.
#[macro_export]
macro_rules! histogram {
    ($name:literal, $v:expr) => {
        $crate::observe(
            const { $crate::registry::histogram_id($name) },
            $crate::IntoLabelValue::into_label($v),
        )
    };
}

/// Builds a [`Meter`] mirroring into a registered counter:
/// `meter!("cloud.ops")`.
#[macro_export]
macro_rules! meter {
    ($name:literal) => {
        $crate::Meter::new(const { $crate::registry::counter_id($name) })
    };
}

/// Serializes unit tests that flip the process-global recorder state.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = crate::test_guard();
        set_enabled(false);
        let _ = take_thread_events();
        {
            let mut s = span!("capture", "session" => 1u64);
            s.add_modeled_us(10);
            counter!("cloud.ops", 1u64);
        }
        assert!(take_thread_events().is_empty());
    }

    #[test]
    fn meter_counts_without_recorder() {
        let _g = crate::test_guard();
        set_enabled(false);
        let mut m = meter!("cloud.ops");
        m.add(3);
        m.add(4);
        assert_eq!(m.get(), 7);
        assert_eq!(m.take(), 7);
        assert_eq!(m.get(), 0);
    }

    #[test]
    fn span_nesting_survives_panic_unwind() {
        let _g = crate::test_guard();
        set_enabled(true);
        let _ = take_thread_events();
        let result = std::panic::catch_unwind(|| {
            let _outer = span!("capture", "session" => 0u64);
            let _inner = span!("seal");
            panic!("mid-span failure");
        });
        assert!(result.is_err());
        let events = take_thread_events();
        set_enabled(false);
        // B capture, B seal, E seal, E capture: unwinding ran both
        // drops, innermost first.
        let phases: Vec<(Phase, u16)> = events.iter().map(|e| (e.phase, e.stage)).collect();
        assert_eq!(events.len(), 4, "events: {events:?}");
        assert_eq!(phases[0].0, Phase::Begin);
        assert_eq!(phases[1].0, Phase::Begin);
        assert_eq!(phases[2], (Phase::End, phases[1].1));
        assert_eq!(phases[3], (Phase::End, phases[0].1));
        // Timestamps are monotonic within the thread.
        for pair in events.windows(2) {
            assert!(pair[0].wall_us <= pair[1].wall_us);
        }
    }

    #[test]
    fn modeled_time_rides_the_end_event() {
        let _g = crate::test_guard();
        set_enabled(true);
        let _ = take_thread_events();
        sim_clock(500);
        {
            let mut s = span!("upload", "session" => 2u64, "bytes" => 4096u64);
            sim_clock(900);
            s.add_modeled_us(1_234);
        }
        let events = take_thread_events();
        set_enabled(false);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].sim_us, 500);
        assert_eq!(events[1].sim_us, 900);
        assert_eq!(events[1].modeled_us, 1_234);
        assert_eq!(events[0].labels[0].1, 2);
        assert_eq!(events[0].labels[1].1, 4096);
    }
}
