//! Regenerates Table 1: installed-OS-as-nym repair/boot/size.

#![forbid(unsafe_code)]

fn main() {
    let rows = nymix_bench::table1_installed_os();
    println!("{}", nymix_bench::table1_table(&rows).render());
    println!("(paper: Vista 133.7/37.7/4.9, Win7 129.3/34.3/4.5, Win8 157.0/58.7/14)");
}
