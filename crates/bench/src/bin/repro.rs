//! Runs every table and figure reproduction in sequence — the one-shot
//! harness behind `EXPERIMENTS.md`.

#![forbid(unsafe_code)]

fn main() {
    println!("== Nymix evaluation reproduction ==\n");

    let fig3 = nymix_bench::fig3_memory(42);
    println!("{}", nymix_bench::fig3_table(&fig3).render());
    let last = fig3.last().expect("samples");
    println!("KSM saving at 8 nyms: {:.1}%\n", last.ksm_saving() * 100.0);

    let fig4 = nymix_bench::fig4_cpu();
    println!("{}", nymix_bench::fig4_table(&fig4).render());
    println!(
        "virtualization overhead: {:.1}%\n",
        (1.0 - fig4[1].actual / fig4[0].actual) * 100.0
    );

    let fig5 = nymix_bench::fig5_download();
    println!("{}", nymix_bench::fig5_table(&fig5).render());

    let fig6 = nymix_bench::fig6_storage(42, 32, 10);
    println!("{}", nymix_bench::fig6_table(&fig6).render());
    let share: f64 = fig6.iter().map(|s| s.anonvm_share).sum::<f64>() / fig6.len() as f64;
    println!("mean AnonVM share: {:.0}%\n", share * 100.0);

    let fig7 = nymix_bench::fig7_startup(42);
    println!("{}", nymix_bench::fig7_table(&fig7).render());

    let t1 = nymix_bench::table1_installed_os();
    println!("{}", nymix_bench::table1_table(&t1).render());

    match nymix::validate_isolation(3) {
        Ok(report) if report.passed() => {
            println!(
                "§5.1 isolation matrix: PASS ({} probes)",
                report.probes.len()
            );
        }
        Ok(report) => {
            println!("§5.1 isolation matrix: FAIL {:?}", report.failures());
            std::process::exit(1);
        }
        Err(e) => {
            println!("§5.1 isolation matrix: error {e}");
            std::process::exit(1);
        }
    }
}
