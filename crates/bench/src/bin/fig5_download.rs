//! Regenerates Figure 5: parallel kernel download times.

#![forbid(unsafe_code)]

fn main() {
    let samples = nymix_bench::fig5_download();
    println!("{}", nymix_bench::fig5_table(&samples).render());
    println!("(paper: \"relatively linear ... fixed cost, approximately 12% overhead\")");
}
