//! Regenerates Figure 3: RAM usage and KSM shared pages vs nym count.

#![forbid(unsafe_code)]

fn main() {
    let samples = nymix_bench::fig3_memory(42);
    println!("{}", nymix_bench::fig3_table(&samples).render());
    let last = samples.last().expect("eight samples");
    println!(
        "KSM saving at {} nyms: {:.1}% (paper: \"over 5% saving at 8 nyms\")",
        last.nyms,
        last.ksm_saving() * 100.0
    );
}
