//! Regenerates Figure 4: Peacekeeper scores vs parallel nyms.

#![forbid(unsafe_code)]

fn main() {
    let samples = nymix_bench::fig4_cpu();
    println!("{}", nymix_bench::fig4_table(&samples).render());
    let native = samples[0].actual;
    let single = samples[1].actual;
    println!(
        "virtualization overhead: {:.1}% (paper: \"about a 20% overhead\")",
        (1.0 - single / native) * 100.0
    );
}
