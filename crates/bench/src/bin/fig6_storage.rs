//! Regenerates Figure 6: encrypted nym size across save/restore cycles.

#![forbid(unsafe_code)]

fn main() {
    let samples = nymix_bench::fig6_storage(42, 16, 10);
    println!("{}", nymix_bench::fig6_table(&samples).render());
    let anon_share: f64 =
        samples.iter().map(|s| s.anonvm_share).sum::<f64>() / samples.len() as f64;
    println!(
        "mean AnonVM share of payload: {:.0}% (paper: \"AnonVM content accounting for 85%\")",
        anon_share * 100.0
    );
}
