//! Ablation studies for the design choices DESIGN.md calls out.

#![forbid(unsafe_code)]

fn main() {
    let (with, without) = nymix_bench::ablation_ksm(42, 6);
    println!("# Ablation: KSM (6 nymboxes)");
    println!("used memory with KSM:    {with:.0} MiB");
    println!("used memory without KSM: {without:.0} MiB");
    println!("saving: {:.1}%\n", (1.0 - with / without) * 100.0);

    let (sealed, raw) = nymix_bench::ablation_compression(42);
    println!("# Ablation: archive compression (one Facebook session)");
    println!("raw payload:    {raw} bytes");
    println!("sealed archive: {sealed} bytes");
    println!("ratio: {:.2}\n", sealed as f64 / raw as f64);

    println!("# Ablation: anonymizer choice (fresh-nym startup, byte overhead)");
    for (name, startup, overhead) in nymix_bench::ablation_anonymizers(42) {
        println!(
            "{name:>10}: startup {startup:.1}s, byte overhead {:.0}%",
            overhead * 100.0
        );
    }
}
