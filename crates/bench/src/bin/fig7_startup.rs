//! Regenerates Figure 7: startup time by phase per usage model.

#![forbid(unsafe_code)]

fn main() {
    let samples = nymix_bench::fig7_startup(42);
    println!("{}", nymix_bench::fig7_table(&samples).render());
    println!("(paper: fresh nymboxes load within 15-25 s; quasi-persistent nyms");
    println!(" outperform ephemeral on the Tor phase but pay an ephemeral fetch)");
}
