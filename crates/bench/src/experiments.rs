//! The experiment implementations, one per table/figure.

use nymix::{NymManager, StorageDest, UsageModel};
use nymix_anon::AnonymizerKind;
use nymix_net::flow::calib as netcal;
use nymix_vmm::{CpuHost, Hypervisor};
use nymix_workload::peacekeeper;
use nymix_workload::{DownloadSpec, Site};

use crate::report::Table;

/// One Figure 3 sample: state after launching (and after interacting
/// with) the n-th nym.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemorySample {
    /// Number of live nymboxes.
    pub nyms: usize,
    /// Used memory right after the nym launches, MiB.
    pub used_before_mib: f64,
    /// Used memory after the site interaction, MiB.
    pub used_after_mib: f64,
    /// KSM `pages_sharing` before interaction.
    pub shared_before: usize,
    /// KSM `pages_sharing` after interaction.
    pub shared_after: usize,
    /// Committed (pre-KSM) memory after interaction, MiB — what the
    /// host would use with KSM disabled.
    pub committed_after_mib: f64,
    /// The dashed estimated-cost line, MiB.
    pub expected_mib: f64,
}

impl MemorySample {
    /// Fraction of committed memory KSM reclaimed.
    pub fn ksm_saving(&self) -> f64 {
        1.0 - self.used_after_mib / self.committed_after_mib
    }
}

/// Figure 3: RAM usage and shared pages while launching eight nyms in
/// succession, interacting with one site each (§5.2).
pub fn fig3_memory(seed: u64) -> Vec<MemorySample> {
    let mut m = NymManager::new(seed, 64);
    let mut samples = Vec::new();
    for (i, site) in Site::VISIT_ORDER.iter().enumerate() {
        let n = i + 1;
        let (id, _) = m
            .create_nym(
                &format!("nym-{n}"),
                AnonymizerKind::Tor,
                UsageModel::Ephemeral,
            )
            .expect("capacity for 8 nymboxes");
        let used_before_mib = m.hypervisor().used_memory_mib();
        let shared_before = m.hypervisor().ksm_stats().pages_sharing;
        m.visit_site(id, *site).expect("visit succeeds");
        samples.push(MemorySample {
            nyms: n,
            used_before_mib,
            used_after_mib: m.hypervisor().used_memory_mib(),
            shared_before,
            shared_after: m.hypervisor().ksm_stats().pages_sharing,
            committed_after_mib: m.hypervisor().committed_memory_mib(),
            expected_mib: Hypervisor::expected_memory_mib(n),
        });
    }
    samples
}

/// Renders Figure 3 as a table.
pub fn fig3_table(samples: &[MemorySample]) -> Table {
    let mut t = Table::new(
        "Figure 3: RAM usage and shared pages vs number of pseudonyms",
        &[
            "nyms",
            "used-before(MB)",
            "used-after(MB)",
            "shared-before(pages)",
            "shared-after(pages)",
            "expected(MB)",
        ],
    );
    for s in samples {
        t.row(&[
            s.nyms.to_string(),
            format!("{:.0}", s.used_before_mib),
            format!("{:.0}", s.used_after_mib),
            s.shared_before.to_string(),
            s.shared_after.to_string(),
            format!("{:.0}", s.expected_mib),
        ]);
    }
    t
}

/// One Figure 4 sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuSample {
    /// Parallel nym count (0 = native).
    pub nyms: usize,
    /// Mean per-instance Peacekeeper score measured.
    pub actual: f64,
    /// The perfectly-parallel extrapolation from the 1-nym score.
    pub expected: f64,
}

/// Figure 4: average Peacekeeper score for 0 (native) through 8
/// simultaneous nymboxes (§5.2).
pub fn fig4_cpu() -> Vec<CpuSample> {
    let single = peacekeeper::run_parallel(&mut CpuHost::paper_testbed(), 1)[0];
    (0..=8)
        .map(|n| {
            let mut cpu = CpuHost::paper_testbed();
            let scores = peacekeeper::run_parallel(&mut cpu, n);
            let actual = scores.iter().sum::<f64>() / scores.len() as f64;
            CpuSample {
                nyms: n,
                actual,
                expected: peacekeeper::expected_score(single, cpu.cores(), n),
            }
        })
        .collect()
}

/// Renders Figure 4 as a table.
pub fn fig4_table(samples: &[CpuSample]) -> Table {
    let mut t = Table::new(
        "Figure 4: average Peacekeeper score vs parallel nyms (0 = native)",
        &["nyms", "actual", "expected"],
    );
    for s in samples {
        t.row(&[
            s.nyms.to_string(),
            format!("{:.0}", s.actual),
            format!("{:.0}", s.expected),
        ]);
    }
    t
}

/// One Figure 5 sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DownloadSample {
    /// Parallel downloading nyms.
    pub nyms: usize,
    /// Measured completion time of the last download, seconds.
    pub actual_secs: f64,
    /// The no-anonymizer ideal, seconds.
    pub ideal_secs: f64,
}

/// Figure 5: time to download linux-3.14.2 with 1–8 nyms in parallel,
/// each through its own Tor instance (§5.2).
pub fn fig5_download() -> Vec<DownloadSample> {
    let spec = DownloadSpec::linux_kernel(netcal::TOR_BYTE_OVERHEAD);
    (1..=8)
        .map(|n| {
            let times = nymix_workload::download::run_parallel_downloads(spec, n);
            let actual = times.iter().copied().fold(0.0, f64::max);
            DownloadSample {
                nyms: n,
                actual_secs: actual,
                ideal_secs: nymix_workload::download::ideal_time(netcal::LINUX_KERNEL_BYTES, n),
            }
        })
        .collect()
}

/// Renders Figure 5 as a table.
pub fn fig5_table(samples: &[DownloadSample]) -> Table {
    let mut t = Table::new(
        "Figure 5: parallel kernel download time (seconds)",
        &["nyms", "actual(s)", "ideal(s)", "overhead"],
    );
    for s in samples {
        t.row(&[
            s.nyms.to_string(),
            format!("{:.1}", s.actual_secs),
            format!("{:.1}", s.ideal_secs),
            format!("{:.1}%", (s.actual_secs / s.ideal_secs - 1.0) * 100.0),
        ]);
    }
    t
}

/// One Figure 6 trajectory point.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageSample {
    /// Which site's nym.
    pub site: Site,
    /// Save/restore cycle (1-based).
    pub cycle: usize,
    /// Encrypted archive size in (logical) MB.
    pub encrypted_mb: f64,
    /// AnonVM share of the uncompressed payload.
    pub anonvm_share: f64,
}

/// Figure 6: encrypted quasi-persistent nym size across ten
/// save/restore cycles for four persistent site-nyms (§5.3).
///
/// `scale` trades fidelity for speed (16 ≈ full shape, fast).
pub fn fig6_storage(seed: u64, scale: u64, cycles: usize) -> Vec<StorageSample> {
    let mut out = Vec::new();
    for site in Site::STORAGE_SITES {
        let mut m = NymManager::new(seed ^ site as u64, scale);
        m.register_cloud("dropbox", "anon", "tok");
        let dest = StorageDest::Cloud {
            provider: "dropbox".into(),
            account: "anon".into(),
            credential: "tok".into(),
        };
        let name = format!("nym-{site:?}");
        let (mut id, _) = m
            .create_nym(&name, AnonymizerKind::Tor, UsageModel::Persistent)
            .expect("capacity");
        for cycle in 1..=cycles {
            m.visit_site(id, site).expect("visit");
            let (sealed, _) = m.save_nym(id, "pw", &dest).expect("save");
            let (anon, comm, other) = m.last_save_breakdown().expect("just saved");
            let total = (anon + comm + other).max(1);
            out.push(StorageSample {
                site,
                cycle,
                encrypted_mb: sealed as f64 * scale as f64 / 1_000_000.0,
                anonvm_share: anon as f64 / total as f64,
            });
            m.destroy_nym(id).expect("destroy");
            let (nid, _) = m
                .restore_nym(
                    &name,
                    AnonymizerKind::Tor,
                    UsageModel::Persistent,
                    "pw",
                    &dest,
                )
                .expect("restore");
            id = nid;
        }
    }
    out
}

/// Renders Figure 6 as a table (one column per site).
pub fn fig6_table(samples: &[StorageSample]) -> Table {
    let mut t = Table::new(
        "Figure 6: encrypted pseudonym size (MB) across save/restore cycles",
        &["cycle", "Gmail", "Facebook", "Twitter", "TorBlog"],
    );
    let cycles: usize = samples.iter().map(|s| s.cycle).max().unwrap_or(0);
    for c in 1..=cycles {
        let get = |site: Site| -> String {
            samples
                .iter()
                .find(|s| s.site == site && s.cycle == c)
                .map(|s| format!("{:.1}", s.encrypted_mb))
                .unwrap_or_default()
        };
        t.row(&[
            c.to_string(),
            get(Site::Gmail),
            get(Site::Facebook),
            get(Site::Twitter),
            get(Site::TorBlog),
        ]);
    }
    t
}

/// One Figure 7 bar.
#[derive(Debug, Clone, PartialEq)]
pub struct StartupSample {
    /// Configuration label ("Fresh", "Pre-config.", "Persisted").
    pub label: String,
    /// Phase durations in seconds: (ephemeral, boot, anonymizer, page).
    pub phases: (f64, f64, f64, f64),
}

impl StartupSample {
    /// Total startup seconds.
    pub fn total(&self) -> f64 {
        self.phases.0 + self.phases.1 + self.phases.2 + self.phases.3
    }
}

/// Figure 7: startup time by phase for the three nym usage models,
/// visiting Twitter (§5.4).
pub fn fig7_startup(seed: u64) -> Vec<StartupSample> {
    let mut out = Vec::new();

    // Fresh (ephemeral) nym.
    let mut m = NymManager::new(seed, 64);
    let (id, b) = m
        .create_nym("fresh", AnonymizerKind::Tor, UsageModel::Ephemeral)
        .expect("capacity");
    let page = m.visit_site(id, Site::Twitter).expect("visit");
    out.push(StartupSample {
        label: "Fresh".into(),
        phases: (
            0.0,
            b.boot_vm.as_secs_f64(),
            b.start_anonymizer.as_secs_f64(),
            page.as_secs_f64(),
        ),
    });

    // Pre-configured: snapshot stored locally, restored at each use.
    let mut m = NymManager::new(seed ^ 1, 64);
    let (id, _) = m
        .create_nym("pre", AnonymizerKind::Tor, UsageModel::PreConfigured)
        .expect("capacity");
    m.visit_site(id, Site::Twitter).expect("visit");
    m.save_nym(id, "pw", &StorageDest::Local).expect("save");
    m.destroy_nym(id).expect("destroy");
    let (id, b) = m
        .restore_nym(
            "pre",
            AnonymizerKind::Tor,
            UsageModel::PreConfigured,
            "pw",
            &StorageDest::Local,
        )
        .expect("restore");
    let page = m.visit_site(id, Site::Twitter).expect("visit");
    out.push(StartupSample {
        label: "Pre-config.".into(),
        phases: (
            b.ephemeral_fetch.as_secs_f64(),
            b.boot_vm.as_secs_f64(),
            b.start_anonymizer.as_secs_f64(),
            page.as_secs_f64(),
        ),
    });

    // Persisted: state in the cloud; save after the session too.
    let mut m = NymManager::new(seed ^ 2, 64);
    m.register_cloud("dropbox", "anon", "tok");
    let dest = StorageDest::Cloud {
        provider: "dropbox".into(),
        account: "anon".into(),
        credential: "tok".into(),
    };
    let (id, _) = m
        .create_nym("pers", AnonymizerKind::Tor, UsageModel::Persistent)
        .expect("capacity");
    m.visit_site(id, Site::Twitter).expect("visit");
    m.save_nym(id, "pw", &dest).expect("save");
    m.destroy_nym(id).expect("destroy");
    let (id, b) = m
        .restore_nym(
            "pers",
            AnonymizerKind::Tor,
            UsageModel::Persistent,
            "pw",
            &dest,
        )
        .expect("restore");
    let page = m.visit_site(id, Site::Twitter).expect("visit");
    m.save_nym(id, "pw", &dest).expect("save-back");
    out.push(StartupSample {
        label: "Persisted".into(),
        phases: (
            b.ephemeral_fetch.as_secs_f64(),
            b.boot_vm.as_secs_f64(),
            b.start_anonymizer.as_secs_f64(),
            page.as_secs_f64(),
        ),
    });

    out
}

/// Renders Figure 7 as a table.
pub fn fig7_table(samples: &[StartupSample]) -> Table {
    let mut t = Table::new(
        "Figure 7: average startup time by phase (seconds)",
        &[
            "config",
            "boot-vm",
            "start-tor",
            "load-page",
            "ephemeral-nym",
            "total",
        ],
    );
    for s in samples {
        t.row(&[
            s.label.clone(),
            format!("{:.1}", s.phases.1),
            format!("{:.1}", s.phases.2),
            format!("{:.1}", s.phases.3),
            format!("{:.1}", s.phases.0),
            format!("{:.1}", s.total()),
        ]);
    }
    t
}

/// One Table 1 row.
#[derive(Debug, Clone, PartialEq)]
pub struct InstalledOsSample {
    /// OS label.
    pub os: String,
    /// Repair seconds.
    pub repair_secs: f64,
    /// Boot seconds.
    pub boot_secs: f64,
    /// COW delta MB.
    pub size_mb: f64,
}

/// Table 1: repair/boot/COW-size for Windows installed-OS nyms (§5.5).
pub fn table1_installed_os() -> Vec<InstalledOsSample> {
    nymix::OsKind::TABLE1
        .iter()
        .map(|kind| {
            let mut os = nymix::InstalledOs::new(*kind);
            let outcome = os.repair_and_boot();
            InstalledOsSample {
                os: format!("{kind:?}"),
                repair_secs: outcome.repair_time.as_secs_f64(),
                boot_secs: outcome.boot_time.as_secs_f64(),
                size_mb: outcome.cow_mb(),
            }
        })
        .collect()
}

/// Renders Table 1.
pub fn table1_table(samples: &[InstalledOsSample]) -> Table {
    let mut t = Table::new(
        "Table 1: installed-OS-as-nym repair/boot/size",
        &["os", "repair(s)", "boot(s)", "size(MB)"],
    );
    for s in samples {
        t.row(&[
            s.os.clone(),
            format!("{:.1}", s.repair_secs),
            format!("{:.1}", s.boot_secs),
            format!("{:.1}", s.size_mb),
        ]);
    }
    t
}

/// Ablation: KSM on vs off at `n` nymboxes — used memory in MiB.
pub fn ablation_ksm(seed: u64, n: usize) -> (f64, f64) {
    let mut m = NymManager::new(seed, 64);
    for i in 0..n {
        let (id, _) = m
            .create_nym(&format!("k{i}"), AnonymizerKind::Tor, UsageModel::Ephemeral)
            .expect("capacity");
        m.visit_site(id, Site::VISIT_ORDER[i % 8]).expect("visit");
    }
    let with = m.hypervisor().used_memory_mib();
    m.hypervisor_mut().set_ksm(false);
    let without = m.hypervisor().used_memory_mib();
    (with, without)
}

/// Ablation: compression on vs off — sealed archive bytes for one
/// Facebook session.
pub fn ablation_compression(seed: u64) -> (usize, usize) {
    let mut m = NymManager::new(seed, 64);
    let (id, _) = m
        .create_nym("c", AnonymizerKind::Tor, UsageModel::Persistent)
        .expect("capacity");
    m.visit_site(id, Site::Facebook).expect("visit");
    let (sealed, _) = m.save_nym(id, "pw", &StorageDest::Local).expect("save");
    let (anon, comm, other) = m.last_save_breakdown().expect("saved");
    let raw = anon + comm + other;
    (sealed, raw)
}

/// Ablation: anonymizer choice vs fresh-nym startup seconds and
/// transfer overhead.
pub fn ablation_anonymizers(seed: u64) -> Vec<(String, f64, f64)> {
    AnonymizerKind::ALL
        .iter()
        .map(|kind| {
            let mut m = NymManager::new(seed, 64);
            let (id, b) = m
                .create_nym("a", *kind, UsageModel::Ephemeral)
                .expect("capacity");
            let overhead = m
                .anonymizer(id)
                .expect("live")
                .transfer_cost()
                .byte_overhead;
            (
                format!("{kind:?}"),
                (b.boot_vm + b.start_anonymizer).as_secs_f64(),
                overhead,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_shape_holds() {
        let samples = fig4_cpu();
        assert_eq!(samples.len(), 9);
        // Native beats virtualized by ~20%.
        let native = samples[0].actual;
        let one = samples[1].actual;
        assert!((1.0 - one / native - 0.20).abs() < 0.01);
        // Actual >= expected everywhere, strictly above at 8.
        for s in &samples[1..] {
            assert!(s.actual >= s.expected - 1.0, "{s:?}");
        }
        assert!(samples[8].actual > samples[8].expected * 1.1);
    }

    #[test]
    fn fig5_shape_holds() {
        let samples = fig5_download();
        assert_eq!(samples.len(), 8);
        for s in &samples {
            let overhead = s.actual_secs / s.ideal_secs - 1.0;
            assert!((overhead - 0.12).abs() < 0.01, "{s:?}");
        }
        // Linear: t(8) ≈ 8 * t(1).
        let ratio = samples[7].actual_secs / samples[0].actual_secs;
        assert!((ratio - 8.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn table1_matches_paper() {
        let rows = table1_installed_os();
        assert_eq!(rows.len(), 3);
        let expect = [(133.7, 37.7, 4.9), (129.3, 34.3, 4.5), (157.0, 58.7, 14.0)];
        for (row, (r, b, s)) in rows.iter().zip(expect) {
            assert!((row.repair_secs - r).abs() < 1.5, "{row:?}");
            assert!((row.boot_secs - b).abs() < 1.0, "{row:?}");
            assert!((row.size_mb - s).abs() < 1.0, "{row:?}");
        }
    }

    #[test]
    fn fig7_shape_holds() {
        let samples = fig7_startup(7);
        assert_eq!(samples.len(), 3);
        let fresh = &samples[0];
        let pre = &samples[1];
        let pers = &samples[2];
        // Abstract: fresh nymboxes load within 15-25 s.
        assert!((15.0..25.0).contains(&fresh.total()), "{fresh:?}");
        // Warm Tor start beats cold (quasi-persistent advantage).
        assert!(pre.phases.2 < fresh.phases.2);
        assert!(pers.phases.2 < fresh.phases.2);
        // Persisted pays the ephemeral fetch nym.
        assert!(pers.phases.0 > 15.0, "{pers:?}");
        assert!(pers.total() > fresh.total());
        // Pre-configured (local snapshot) is the fastest path.
        assert!(pre.total() < fresh.total(), "pre {pre:?} fresh {fresh:?}");
    }

    #[test]
    fn ablation_ksm_saves_memory() {
        let (with, without) = ablation_ksm(5, 3);
        assert!(with < without);
    }

    #[test]
    fn ablation_compression_shrinks() {
        let (sealed, raw) = ablation_compression(5);
        assert!(sealed < raw, "sealed {sealed} raw {raw}");
    }
}
