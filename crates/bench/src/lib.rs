//! The experiment library: one function per table/figure.
//!
//! Every function is deterministic given its seed and returns the data
//! the paper plots; the `fig*`/`table*` binaries print the same
//! rows/series the paper reports, and the Criterion benches time the
//! underlying operations. `EXPERIMENTS.md` records paper-vs-measured
//! values for each experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;

pub use experiments::*;
pub use report::Table;
