//! Plain-text table rendering for experiment output.

/// A printable table with a caption.
#[derive(Debug, Clone)]
pub struct Table {
    caption: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given caption and column headers.
    pub fn new(caption: &str, headers: &[&str]) -> Self {
        Self {
            caption: caption.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifies the cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Convenience for numeric rows.
    pub fn row_f64(&mut self, cells: &[f64]) {
        self.row(&cells.iter().map(|v| format!("{v:.2}")).collect::<Vec<_>>());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = format!("# {}\n", self.caption);
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Figure X", &["n", "value"]);
        t.row_f64(&[1.0, 600.0]);
        t.row_f64(&[2.0, 1256.5]);
        let s = t.render();
        assert!(s.starts_with("# Figure X\n"));
        assert!(s.contains("600.00"));
        assert!(s.contains("1256.50"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".to_string()]);
    }
}
