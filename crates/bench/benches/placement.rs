//! Microbenchmarks for the multi-provider placement layer: what each
//! redundancy level costs on the write path (GF(256) encode + NYMP
//! framing + N child writes) and the read path (shard verification +
//! systematic or parity decode), plus the degraded-read penalty when a
//! child is gone and reconstruction must invert the Vandermonde rows.
//! The storage overhead per level rides along in `BENCH_store.json`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nymix_store::{LocalStore, ObjectBackend, PlacementStore};
use std::hint::black_box;

const OBJ: usize = 64 * 1024;

/// The configurations the scenario suite exercises: no redundancy
/// (pure overhead baseline), 2x/3x mirrors, and the two erasure
/// geometries (2-of-3 = 1.5x storage, 3-of-5 = 1.67x).
const CONFIGS: [(usize, usize); 5] = [(1, 1), (1, 2), (1, 3), (2, 3), (3, 5)];

fn store(k: usize, n: usize) -> PlacementStore<LocalStore> {
    PlacementStore::new((0..n).map(|_| LocalStore::new()).collect(), k)
}

/// Incompressible-ish 64 KiB object — a sealed blob in practice, so
/// byte content is irrelevant; it just must not be constant.
fn payload() -> Vec<u8> {
    (0..OBJ)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add((i >> 8) as u8))
        .collect()
}

fn bench_put(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement");
    group.throughput(Throughput::Bytes(OBJ as u64));
    for (k, n) in CONFIGS {
        group.bench_function(&format!("put_64k_{k}of{n}"), |b| {
            let mut s = store(k, n);
            let data = payload();
            b.iter(|| s.put(black_box("obj"), black_box(data.clone())).unwrap());
        });
    }
    group.finish();
}

fn bench_get(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement");
    group.throughput(Throughput::Bytes(OBJ as u64));
    // Healthy read: every child answers, the k data stripes verify and
    // concatenate (systematic fast path — no matrix inversion).
    for (k, n) in CONFIGS {
        group.bench_function(&format!("get_64k_{k}of{n}"), |b| {
            let mut s = store(k, n);
            s.put("obj", payload()).unwrap();
            b.iter(|| black_box(s.get(black_box("obj")).unwrap().map(<[u8]>::len)));
        });
    }
    // Degraded read: one data shard is gone, so the decoder must pull
    // in a parity shard and invert the k x k system — the price of a
    // provider outage on the restore path.
    for (k, n) in [(2, 3), (3, 5)] {
        group.bench_function(&format!("degraded_get_64k_{k}of{n}"), |b| {
            let mut s = store(k, n);
            s.put("obj", payload()).unwrap();
            LocalStore::delete(s.child_mut(0), "obj");
            b.iter(|| black_box(s.get(black_box("obj")).unwrap().map(<[u8]>::len)));
        });
    }
    group.finish();
}

fn bench_repair(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement");
    group.throughput(Throughput::Bytes(OBJ as u64));
    // One repair pass over one degraded object: decode from survivors,
    // re-encode the missing shard, write it back.
    group.bench_function("repair_64k_2of3", |b| {
        let mut s = store(2, 3);
        s.put("obj", payload()).unwrap();
        b.iter(|| {
            LocalStore::delete(s.child_mut(0), "obj");
            black_box(s.get(black_box("obj")).unwrap().map(<[u8]>::len));
            let report = s.repair();
            assert_eq!(report.shards_still_missing, 0);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_put, bench_get, bench_repair);
criterion_main!(benches);
