//! Criterion bench for the Figure 3 experiment (launch 8 nymboxes,
//! interact, account memory + KSM).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_memory");
    group.sample_size(10);
    group.bench_function("launch_8_nymboxes_with_ksm", |b| {
        b.iter(|| black_box(nymix_bench::fig3_memory(black_box(42))));
    });
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
