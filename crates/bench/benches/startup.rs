//! Criterion bench for the Figure 7 experiment (startup by phase).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_startup");
    group.sample_size(10);
    group.bench_function("three_usage_models", |b| {
        b.iter(|| black_box(nymix_bench::fig7_startup(black_box(42))));
    });
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
