//! Criterion bench for the Table 1 experiment (installed-OS repair).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_installed_os");
    group.bench_function("repair_and_boot_all_windows", |b| {
        b.iter(|| black_box(nymix_bench::table1_installed_os()));
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
