//! Criterion benches for the ablation knobs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("ksm_on_off_3_nymboxes", |b| {
        b.iter(|| black_box(nymix_bench::ablation_ksm(black_box(42), 3)));
    });
    group.bench_function("compression_on_off", |b| {
        b.iter(|| black_box(nymix_bench::ablation_compression(black_box(42))));
    });
    group.bench_function("anonymizer_sweep", |b| {
        b.iter(|| black_box(nymix_bench::ablation_anonymizers(black_box(42))));
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
