//! Fleet-scale store-nym: 32 concurrent sessions saving through the
//! batched store pipeline vs 32 serial saves.
//!
//! The scenario is the fleet heartbeat: every session's guard state
//! changed since the last snapshot (a small dirty set — the steady
//! state of a long-lived fleet), all 32 chains warm, one shared
//! pseudonymous cloud account. Two quantities matter:
//!
//! * **Sim completion time** (the system's own §3.5 timing model):
//!   serial saves each pay the access link's round-trip latency and
//!   advance the clock one after another; the batched save moves the
//!   same sealed bytes over the same shared link but pays the
//!   round-trip once — the "amortize backend round-trips" win,
//!   measured deterministically (no sampling noise) and recorded in
//!   BENCH_store.json.
//! * **Wall time** per round (the shim-timed benches): capture, delta,
//!   seal and upload for the whole fleet. On a multi-core host the
//!   batched seal stage runs one thread per session; on a single-core
//!   host (this container) the pipeline fuses the stages per session,
//!   so wall time shows pipeline overhead parity, not the threading
//!   win.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use nymix::{FleetSaveRequest, NymFleet, NymManager, StorageDest, UsageModel};
use nymix_anon::AnonymizerKind;
use nymix_workload::Site;

const FLEET: usize = 32;

fn dest() -> StorageDest {
    StorageDest::Cloud {
        provider: "drive".into(),
        account: "shared-acct".into(),
        credential: "tok".into(),
    }
}

/// A 64 GiB host (32 nymboxes need ~22 GiB) with 32 browsed, fully
/// saved sessions — every chain warm, every later save a delta.
fn warm_fleet(seed: u64) -> (NymManager, NymFleet) {
    let mut m = NymManager::with_host_ram(seed, 8, 65_536);
    m.register_cloud("drive", "shared-acct", "tok");
    let fleet = NymFleet::spawn(
        &mut m,
        "f",
        FLEET,
        AnonymizerKind::Tor,
        UsageModel::Persistent,
    )
    .expect("64 GiB host admits 32 nymboxes");
    let sites = [Site::Twitter, Site::Bbc, Site::Facebook, Site::Youtube];
    fleet
        .visit_round(&mut m, |i| sites[i % sites.len()])
        .expect("fleet browses");
    fleet
        .save_round(&mut m, "pw", |_| dest())
        .expect("initial full fleet save");
    (m, fleet)
}

/// Dirty every session's anonymizer state (alternating guard seeds, so
/// the record genuinely changes every round while staying bounded).
fn reseed_guards(m: &mut NymManager, fleet: &NymFleet, round: usize) {
    let location = if round.is_multiple_of(2) {
        "usb://a"
    } else {
        "usb://b"
    };
    for id in fleet.ids() {
        m.seed_guards_deterministically(*id, location, "pw")
            .expect("live nym");
    }
}

/// One-shot deterministic comparison of the *modeled* completion time:
/// the same dirtied fleet saved serially (32 save_nym_incremental
/// calls, each advancing the clock by its own transfer + round trip)
/// vs through one batched pipeline run (shared link, one round trip).
fn report_sim_completion() {
    let (mut m, fleet) = warm_fleet(11);
    reseed_guards(&mut m, &fleet, 0);
    let before = m.now();
    for id in fleet.ids() {
        m.save_nym_incremental(*id, "pw", &dest())
            .expect("serial save");
    }
    let serial = m.now().since(before);

    let (mut m, fleet) = warm_fleet(11);
    reseed_guards(&mut m, &fleet, 0);
    let before = m.now();
    fleet
        .save_round(&mut m, "pw", |_| dest())
        .expect("batched save");
    let batched = m.now().since(before);

    println!(
        "fleet/sim_completion_32_delta_saves  serial: {:.3}s   batched: {:.3}s   ({:.2}x)",
        serial.as_secs_f64(),
        batched.as_secs_f64(),
        serial.as_secs_f64() / batched.as_secs_f64()
    );
}

fn bench_fleet(c: &mut Criterion) {
    report_sim_completion();

    let mut group = c.benchmark_group("fleet");
    group.sample_size(10);

    // One iteration = one full chain cycle: 4 delta heartbeats plus
    // the compaction save that follows (DELTA_CHAIN_LIMIT = 4), so
    // every iteration does identical work no matter how the harness
    // batches iterations — the chain phase can't drift into the
    // samples.
    const CYCLE: usize = 5;

    group.bench_function("nym_fleet_save_32_serial", |b| {
        let (mut m, fleet) = warm_fleet(21);
        let mut round = 0usize;
        b.iter(|| {
            let mut total = 0usize;
            for _ in 0..CYCLE {
                reseed_guards(&mut m, &fleet, round);
                round += 1;
                for id in fleet.ids() {
                    let (_, uploaded, _) = m
                        .save_nym_incremental(*id, "pw", &dest())
                        .expect("serial save");
                    total += uploaded;
                }
            }
            black_box(total)
        });
    });

    group.bench_function("nym_fleet_save_32_batched", |b| {
        let (mut m, fleet) = warm_fleet(21);
        let d = dest();
        let mut round = 0usize;
        b.iter(|| {
            let mut total = 0usize;
            for _ in 0..CYCLE {
                reseed_guards(&mut m, &fleet, round);
                round += 1;
                let reqs: Vec<FleetSaveRequest<'_>> = fleet
                    .ids()
                    .iter()
                    .map(|id| FleetSaveRequest {
                        id: *id,
                        password: "pw",
                        dest: &d,
                    })
                    .collect();
                let outcomes = m.save_nyms_incremental(&reqs).expect("batched save");
                total += outcomes.iter().map(|(_, b, _)| b).sum::<usize>();
            }
            black_box(total)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
