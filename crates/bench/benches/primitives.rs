//! Microbenchmarks for the hot primitives behind the experiments:
//! SHA-256, ChaCha20-Poly1305, LZSS, KSM scanning, onion wrapping.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_crypto(c: &mut Criterion) {
    let data = vec![0xabu8; 64 * 1024];
    let key = [7u8; 32];
    let nonce = [1u8; 12];

    let mut group = c.benchmark_group("primitives");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("sha256_64k", |b| {
        b.iter(|| black_box(nymix_crypto::sha256(black_box(&data))));
    });
    group.bench_function("aead_seal_64k", |b| {
        b.iter(|| black_box(nymix_crypto::seal(&key, &nonce, b"", black_box(&data))));
    });
    group.bench_function("lzss_compress_64k", |b| {
        b.iter(|| black_box(nymix_store::lzss::compress(black_box(&data))));
    });
    group.finish();
}

fn bench_ksm(c: &mut Criterion) {
    use nymix_vmm::{PageClass, VmMemory};
    let mut vms = Vec::new();
    for i in 0..4u64 {
        let mut m = VmMemory::allocate(i, 64 * 1024 * 1024);
        m.fill(0, 2000, PageClass::Shared(0));
        m.fill(2000, 10_000, PageClass::Unique(0));
        vms.push(m);
    }
    c.bench_function("ksm_scan_4x64MiB", |b| {
        b.iter(|| black_box(nymix_vmm::ksm::scan(vms.iter().map(|v| v.page_ids()))));
    });
}

fn bench_onion(c: &mut Criterion) {
    use nymix_anon::tor::{TorClient, TorDirectory};
    use nymix_sim::Rng;
    let dir = TorDirectory::generate(1, 100);
    let mut rng = Rng::seed_from(2);
    let mut tor = TorClient::bootstrap(&dir, &mut rng);
    let mut circuit = tor.build_circuit(&dir, &mut rng).expect("circuit");
    let cell = vec![0u8; 514];
    c.bench_function("onion_wrap_514B_cell", |b| {
        b.iter(|| black_box(circuit.wrap(black_box(&cell))));
    });
}

criterion_group!(benches, bench_crypto, bench_ksm, bench_onion);
criterion_main!(benches);
