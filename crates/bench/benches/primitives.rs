//! Microbenchmarks for the hot primitives behind the experiments:
//! SHA-256, ChaCha20-Poly1305, LZSS, KSM scanning, onion wrapping.

use criterion::{criterion_group, Criterion, Throughput};
use std::hint::black_box;

fn bench_crypto(c: &mut Criterion) {
    let data = vec![0xabu8; 64 * 1024];
    let key = [7u8; 32];
    let nonce = [1u8; 12];

    let mut group = c.benchmark_group("primitives");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("sha256_64k", |b| {
        b.iter(|| black_box(nymix_crypto::sha256(black_box(&data))));
    });
    // The same digest once per installed backend: the scalar floor,
    // the 4-lane portable batcher, and — when the `simd-kernels`
    // feature and the CPU both allow — the AVX2 and SHA-NI kernels.
    // Unsupported backends install as the x4 floor and are skipped so
    // each name means what it says.
    {
        use nymix_crypto::ShaBackend;
        let prev = nymix_crypto::sha256_backend();
        for backend in [
            ShaBackend::Scalar,
            ShaBackend::X4,
            ShaBackend::Avx2,
            ShaBackend::ShaNi,
        ] {
            if nymix_crypto::set_sha_backend(backend) != backend {
                continue;
            }
            group.bench_function(&format!("sha256_64k_{}", backend.name()), |b| {
                b.iter(|| black_box(nymix_crypto::sha256(black_box(&data))));
            });
        }
        nymix_crypto::set_sha_backend(prev);
    }
    group.bench_function("aead_seal_64k", |b| {
        b.iter(|| black_box(nymix_crypto::seal(&key, &nonce, b"", black_box(&data))));
    });
    group.bench_function("aead_seal_in_place_64k", |b| {
        let mut buf = data.clone();
        b.iter(|| {
            black_box(nymix_crypto::seal_in_place_detached(
                &key,
                &nonce,
                b"",
                black_box(&mut buf),
            ))
        });
    });
    group.bench_function("chacha20_xor_into_64k", |b| {
        let mut buf = data.clone();
        b.iter(|| {
            let mut c = nymix_crypto::ChaCha20::new(&key, &nonce, 1);
            c.xor_into(black_box(&mut buf));
        });
    });
    group.bench_function("lzss_compress_64k", |b| {
        b.iter(|| black_box(nymix_store::lzss::compress(black_box(&data))));
    });
    group.finish();
}

fn bench_kdf(c: &mut Criterion) {
    // The save/restore KDF cost: 10k iterations is what sealing pays on
    // every nym store/load (KDF_ITERATIONS in nymix-store).
    c.bench_function("pbkdf2_hmac_sha256_10k", |b| {
        b.iter(|| {
            black_box(nymix_crypto::pbkdf2_hmac_sha256(
                black_box(b"hunter2"),
                black_box(b"nym:alice\x000123456789abcdef"),
                10_000,
                32,
            ))
        });
    });
}

fn bench_seal(c: &mut Criterion) {
    use nymix_sim::Rng;
    use nymix_store::NymArchive;

    // A 64 KiB-ish archive with the browser-cache content mix: mostly
    // repetitive HTML plus an incompressible tail (media).
    let mut a = NymArchive::new();
    let html: Vec<u8> = b"<div class=\"post\"><span>timeline entry</span></div>\n"
        .iter()
        .copied()
        .cycle()
        .take(48 * 1024)
        .collect();
    let mut media = vec![0u8; 16 * 1024];
    nymix_crypto::ChaCha20::new(&[9u8; 32], &[0u8; 12], 0).xor_into(&mut media);
    a.put("anonvm.disk", html);
    a.put("commvm.disk", media);
    let payload = a.payload_bytes() as u64;

    let mut group = c.benchmark_group("seal");
    group.throughput(Throughput::Bytes(payload));
    group.sample_size(10);
    group.bench_function("seal_64k", |b| {
        let mut rng = Rng::seed_from(7);
        b.iter(|| {
            black_box(nymix_store::seal_archive(
                black_box(&a),
                "pw",
                "nym:bench",
                &mut rng,
            ))
        });
    });
    group.bench_function("unseal_64k", |b| {
        let blob = nymix_store::seal_archive(&a, "pw", "nym:bench", &mut Rng::seed_from(7));
        b.iter(|| {
            black_box(nymix_store::open_sealed(
                black_box(&blob),
                "pw",
                "nym:bench",
            ))
        });
    });

    // The incremental save path: same 64 KiB archive plus two small
    // records, of which only those two are dirty. The measured work is
    // the whole delta-save critical path as the store pipeline runs it
    // — it knows the dirty set from capture (layer generation
    // counters), commits incrementally against the chain's warm
    // [`ArchiveCommitment`] (O(dirty) leaves + root path, no full-set
    // rehash), and keyed-seals the delta (no KDF). Compare against
    // seal_64k (the full re-seal a delta avoids) and the `_scratch`
    // variant (the pre-incremental diff that re-Merkled everything).
    use nymix_store::{
        seal_delta_keyed_into, unseal_keyed_raw_into, ArchiveCommitment, DeltaArchive, SealKey,
        SealScratch,
    };
    let mut prev = a.clone();
    prev.put("tor.state", vec![0x5a; 1024]);
    prev.put("meta", b"name=bench;model=Persistent".to_vec());
    let mut next = prev.clone();
    next.put("tor.state", vec![0xa5; 1024]);
    next.put("meta", b"name=bench;model=Persistent;rev=2".to_vec());
    let dirty_2 = |name: &str| name == "tor.state" || name == "meta";
    let seal_dirty_2 = |from: &NymArchive,
                        commitment: &mut ArchiveCommitment,
                        key: &SealKey,
                        rng: &mut Rng,
                        scratch: &mut SealScratch,
                        out: &mut Vec<u8>| {
        let root = commitment.update(from, dirty_2);
        let mut delta = DeltaArchive::new(from.record_count(), root);
        for name in ["tor.state", "meta"] {
            delta.put(name, from.get(name).expect("dirty record present").to_vec());
        }
        seal_delta_keyed_into(&delta, key, "nym:bench#e1.1", rng, scratch, out);
        out.len()
    };

    group.bench_function("delta_save_2dirty_of_64k", |b| {
        let mut rng = Rng::seed_from(7);
        let key = SealKey::derive("pw", "nym:bench", &mut rng);
        let mut scratch = SealScratch::new();
        let mut out = Vec::new();
        let mut commitment = ArchiveCommitment::build(&prev);
        black_box(commitment.root());
        // Ping-pong between the two versions so every iteration is a
        // warm 2-dirty update, never a no-op.
        let mut flip = false;
        b.iter(|| {
            let to = if flip { &prev } else { &next };
            flip = !flip;
            black_box(seal_dirty_2(
                black_box(to),
                &mut commitment,
                &key,
                &mut rng,
                &mut scratch,
                &mut out,
            ))
        });
    });
    // The pre-incremental baseline: a from-scratch diff byte-compares
    // every record and re-Merkles the whole set per save.
    group.bench_function("delta_save_2dirty_of_64k_scratch", |b| {
        let mut rng = Rng::seed_from(7);
        let key = SealKey::derive("pw", "nym:bench", &mut rng);
        let mut scratch = SealScratch::new();
        let mut out = Vec::new();
        b.iter(|| {
            let delta = DeltaArchive::diff(black_box(&prev), black_box(&next));
            seal_delta_keyed_into(
                &delta,
                &key,
                "nym:bench#e1.1",
                &mut rng,
                &mut scratch,
                &mut out,
            );
            black_box(out.len())
        });
    });
    // Same two dirty records inside a 1 MiB archive (16 64 KiB layer
    // records): with the incremental commitment the save cost stays
    // near-flat in archive size — leaves off the dirty root paths are
    // cache hits, not rehashes.
    {
        let mut prev_1m = NymArchive::new();
        for i in 0..16u8 {
            let mut blob = vec![0u8; 64 * 1024];
            nymix_crypto::ChaCha20::new(&[i; 32], &[i; 12], 0).xor_into(&mut blob);
            prev_1m.put(&format!("layer.{i:02}"), blob);
        }
        prev_1m.put("tor.state", vec![0x5a; 1024]);
        prev_1m.put("meta", b"name=bench;model=Persistent".to_vec());
        let mut next_1m = prev_1m.clone();
        next_1m.put("tor.state", vec![0xa5; 1024]);
        next_1m.put("meta", b"name=bench;model=Persistent;rev=2".to_vec());

        group.bench_function("delta_save_2dirty_of_1m", |b| {
            let mut rng = Rng::seed_from(7);
            let key = SealKey::derive("pw", "nym:bench", &mut rng);
            let mut scratch = SealScratch::new();
            let mut out = Vec::new();
            let mut commitment = ArchiveCommitment::build(&prev_1m);
            black_box(commitment.root());
            let mut flip = false;
            b.iter(|| {
                let to = if flip { &prev_1m } else { &next_1m };
                flip = !flip;
                black_box(seal_dirty_2(
                    black_box(to),
                    &mut commitment,
                    &key,
                    &mut rng,
                    &mut scratch,
                    &mut out,
                ))
            });
        });
    }
    // Sub-record chunked deltas vs the record-granular baseline: one
    // 4 KiB write inside an incompressible 64 KiB disk record. The
    // NYMD path re-seals the whole record; the CAS path re-chunks it
    // (content-defined boundaries keep the edit local), uploads only
    // the chunks the write touched, and ships a delta carrying the new
    // "NYMC" manifest. Bytes uploaded: see BENCH_store.json.
    use nymix_store::cas::{upload_new_chunks, ChunkIndex, ChunkManifest};
    use nymix_store::{chunker, LocalStore};

    let disk = {
        // Deterministic incompressible filler (browser caches are
        // mostly media); seed picked so a mid-size chunk hosts the
        // whole 4 KiB edit — the typical case for a cache write.
        let mut data = vec![0u8; 64 * 1024];
        nymix_crypto::ChaCha20::new(&[0xA7; 32], &[3u8; 12], 0).xor_into(&mut data);
        data
    };
    let edit_at = {
        let mut offset = 0usize;
        let mut site = None;
        for c in chunker::chunks(&disk) {
            if c.len() >= 4096 + 256 {
                site = Some(offset + 128);
                break;
            }
            offset += c.len();
        }
        site.expect("a chunk can host the 4 KiB edit")
    };
    let mut disk2 = disk.clone();
    nymix_crypto::ChaCha20::new(&[0xB9; 32], &[4u8; 12], 0)
        .xor_into(&mut disk2[edit_at..edit_at + 4096]);

    let (mut raw_prev, mut raw_next) = (NymArchive::new(), NymArchive::new());
    for a in [&mut raw_prev, &mut raw_next] {
        a.put("meta", b"name=bench;model=Persistent".to_vec());
        a.put("tor.state", vec![0x5a; 1024]);
    }
    raw_prev.put("anonvm.disk", disk.clone());
    raw_next.put("anonvm.disk", disk2.clone());

    group.bench_function("nymd_delta_save_4k_of_64k", |b| {
        let mut rng = Rng::seed_from(7);
        let key = SealKey::derive("pw", "nym:bench", &mut rng);
        let mut scratch = SealScratch::new();
        let mut out = Vec::new();
        b.iter(|| {
            let delta = DeltaArchive::diff(black_box(&raw_prev), black_box(&raw_next));
            seal_delta_keyed_into(&delta, &key, "l#e1.1", &mut rng, &mut scratch, &mut out);
            black_box(out.len())
        });
    });

    group.bench_function("chunked_delta_save_4k_of_64k", |b| {
        let mut rng = Rng::seed_from(7);
        let key = SealKey::derive("pw", "nym:bench", &mut rng);
        let mut scratch = SealScratch::new();
        let mut out = Vec::new();
        // Warm chain: the base's chunks are already uploaded.
        let m1 = ChunkManifest::build(&disk);
        let mut index = ChunkIndex::new();
        let mut backend = LocalStore::new();
        upload_new_chunks(
            &disk,
            &m1,
            &mut index,
            &key,
            "l#e1",
            &mut rng,
            &mut scratch,
            &mut backend,
        )
        .expect("local put");
        let mut prev_m = raw_prev.clone();
        prev_m.put("anonvm.disk", m1.to_bytes());
        b.iter(|| {
            // The incremental-save critical path: re-chunk the dirty
            // record, upload only new chunks, diff + seal the
            // manifest-bearing delta.
            let m2 = ChunkManifest::build(black_box(&disk2));
            let mut idx = index.clone();
            let uploaded = upload_new_chunks(
                &disk2,
                &m2,
                &mut idx,
                &key,
                "l#e1",
                &mut rng,
                &mut scratch,
                &mut backend,
            )
            .expect("local put");
            let mut next_m = prev_m.clone();
            next_m.put("anonvm.disk", m2.to_bytes());
            let delta = DeltaArchive::diff(&prev_m, &next_m);
            seal_delta_keyed_into(&delta, &key, "l#e1.1", &mut rng, &mut scratch, &mut out);
            black_box(uploaded + out.len())
        });
    });

    // The entropy gate on the chunk-seal path: incompressible chunks
    // skip the LZSS match finder (stored all-literal body, identical
    // wire format) while text keeps compressing. Before = every chunk
    // through the matcher; after = what the gated path runs.
    {
        use nymix_store::{seal_bytes_keyed_into, seal_bytes_keyed_stored_into};
        let mut random_chunk = vec![0u8; 64 * 1024];
        nymix_crypto::ChaCha20::new(&[0x5E; 32], &[7u8; 12], 0).xor_into(&mut random_chunk);
        let text_chunk: Vec<u8> = b"<div class=\"post\">timeline entry</div>\n"
            .iter()
            .copied()
            .cycle()
            .take(64 * 1024)
            .collect();
        let mut rng = Rng::seed_from(7);
        let key = SealKey::derive("pw", "nym:bench", &mut rng);
        let mut scratch = SealScratch::new();
        let mut out = Vec::new();
        group.bench_function("chunk_seal_64k_random_lzss", |b| {
            b.iter(|| {
                seal_bytes_keyed_into(
                    black_box(&random_chunk),
                    &key,
                    "l#e1/c/ab",
                    &mut rng,
                    &mut scratch,
                    &mut out,
                );
                black_box(out.len())
            });
        });
        group.bench_function("chunk_seal_64k_random_stored", |b| {
            b.iter(|| {
                seal_bytes_keyed_stored_into(
                    black_box(&random_chunk),
                    &key,
                    "l#e1/c/ab",
                    &mut rng,
                    &mut scratch,
                    &mut out,
                );
                black_box(out.len())
            });
        });
        group.bench_function("chunk_seal_64k_text_lzss", |b| {
            b.iter(|| {
                seal_bytes_keyed_into(
                    black_box(&text_chunk),
                    &key,
                    "l#e1/c/cd",
                    &mut rng,
                    &mut scratch,
                    &mut out,
                );
                black_box(out.len())
            });
        });
    }

    group.bench_function("delta_restore_replay_64k", |b| {
        let mut rng = Rng::seed_from(7);
        let key = SealKey::derive("pw", "nym:bench", &mut rng);
        let mut scratch = SealScratch::new();
        let (mut out, mut work) = (Vec::new(), Vec::new());
        let delta = DeltaArchive::diff(&prev, &next);
        seal_delta_keyed_into(
            &delta,
            &key,
            "nym:bench#e1.1",
            &mut rng,
            &mut scratch,
            &mut out,
        );
        b.iter(|| {
            let bytes =
                unseal_keyed_raw_into(&out, &key, "nym:bench#e1.1", &mut work, &mut scratch)
                    .expect("opens");
            let delta = DeltaArchive::from_bytes(bytes).expect("parses");
            let mut base = black_box(&prev).clone();
            delta.apply(&mut base).expect("verifies");
            black_box(base.record_count())
        });
    });
    group.finish();
}

fn bench_ksm(c: &mut Criterion) {
    use nymix_vmm::{PageClass, VmMemory};
    let mut vms = Vec::new();
    for i in 0..4u64 {
        let mut m = VmMemory::allocate(i, 64 * 1024 * 1024);
        m.fill(0, 2000, PageClass::Shared(0));
        m.fill(2000, 10_000, PageClass::Unique(0));
        vms.push(m);
    }
    c.bench_function("ksm_scan_4x64MiB", |b| {
        b.iter(|| black_box(nymix_vmm::ksm::scan(vms.iter().map(|v| v.page_ids()))));
    });
}

fn bench_onion(c: &mut Criterion) {
    use nymix_anon::tor::{TorClient, TorDirectory};
    use nymix_sim::Rng;
    let dir = TorDirectory::generate(1, 100);
    let mut rng = Rng::seed_from(2);
    let mut tor = TorClient::bootstrap(&dir, &mut rng);
    let mut circuit = tor.build_circuit(&dir, &mut rng).expect("circuit");
    let cell = vec![0u8; 514];
    c.bench_function("onion_wrap_514B_cell", |b| {
        b.iter(|| black_box(circuit.wrap(black_box(&cell))));
    });

    // 3-hop onion wrap/peel over 512 B cells, reusing one cell buffer so
    // the steady state is allocation-free (Figure 5's data-plane cost).
    const CELL: usize = 512;
    let payload = vec![0xa5u8; CELL];
    let mut group = c.benchmark_group("onion");
    group.throughput(Throughput::Bytes(CELL as u64));
    group.bench_function("wrap_3hop_512B", |b| {
        let mut circuit = tor.build_circuit(&dir, &mut rng).expect("circuit");
        let mut buf = Vec::with_capacity(CELL);
        b.iter(|| {
            circuit.wrap_into(black_box(&payload), &mut buf);
            black_box(buf.len())
        });
    });
    group.bench_function("peel_3hop_512B", |b| {
        let mut circuit = tor.build_circuit(&dir, &mut rng).expect("circuit");
        let mut buf = Vec::with_capacity(CELL);
        circuit.wrap_into(&payload, &mut buf);
        b.iter(|| {
            // Each peel XORs one hop's keystream in place; peeling the
            // same cell repeatedly keeps the buffer hot and measures the
            // pure relay-side cost.
            circuit.peel(0, black_box(&mut buf));
            circuit.peel(1, &mut buf);
            circuit.peel(2, &mut buf);
        });
    });
    group.finish();
}

fn bench_dcnet(c: &mut Criterion) {
    use nymix_anon::DissentNet;
    // 4 clients x 3 servers, 512 B slots: each run_round expands
    // (n + m) participant pads over the full n*slot schedule.
    let n_clients = 4usize;
    let m_servers = 3usize;
    let slot = 512usize;
    let mut net = DissentNet::new(n_clients, m_servers, slot, 99);
    let pad_bytes = (n_clients + m_servers) * n_clients * slot;
    let mut group = c.benchmark_group("dcnet");
    group.throughput(Throughput::Bytes(pad_bytes as u64));
    group.bench_function("pad_expansion_4c3s_512B", |b| {
        b.iter(|| black_box(net.run_round(black_box(&[]))));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_crypto,
    bench_kdf,
    bench_seal,
    bench_ksm,
    bench_onion,
    bench_dcnet
);
fn main() {
    // The CI bench-smoke job sets NYMIX_BENCH_SMOKE=1: record obs
    // metrics across the run and emit the merged snapshot, so the
    // cheap-op counters (AEAD seals, SHA-256 blocks, KDF calls) land
    // in the job log next to the timings they explain.
    let smoke = std::env::var("NYMIX_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    if smoke {
        nymix_obs::set_enabled(true);
        // Record which SHA-256 backend dispatch selected: the call
        // publishes the crypto.sha256.backend gauge, so the snapshot
        // says which kernel produced the numbers above it.
        let _ = nymix_crypto::sha256_backend();
    }
    benches();
    if smoke {
        println!("{}", nymix_obs::snapshot().to_json());
    }
}
