//! Microbenchmarks for the crash-consistent disk store: the journaled
//! commit path against the in-memory local store, recovery scan cost,
//! and the RAM tier's warm/cold read split.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nymix_store::{DiskStore, LocalStore, ObjectBackend};
use std::hint::black_box;

const OBJ: usize = 8 * 1024;
const BATCH: usize = 64;

fn batch(tag: u8) -> Vec<(String, Vec<u8>)> {
    (0..BATCH)
        .map(|i| (format!("obj-{tag}-{i:03}"), vec![tag ^ i as u8; OBJ]))
        .collect()
}

fn bench_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("disk");
    group.throughput(Throughput::Bytes((BATCH * OBJ) as u64));
    // The journaled atomic batch: frame encode + checksums + heap
    // appends + superblock flip, all through the simulated device.
    group.bench_function("put_many_64x8k_journaled", |b| {
        let mut store = DiskStore::new();
        let mut tag = 0u8;
        b.iter(|| {
            tag = tag.wrapping_add(1);
            store.put_many(black_box(batch(tag))).unwrap();
        });
    });
    // The durability-free baseline the journal is priced against.
    group.bench_function("put_many_64x8k_local", |b| {
        let mut store = LocalStore::new();
        let mut tag = 0u8;
        b.iter(|| {
            tag = tag.wrapping_add(1);
            ObjectBackend::put_many(&mut store, black_box(batch(tag))).unwrap();
        });
    });
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("disk");
    // Crash recovery: superblock pick + full heap scan + index rebuild
    // over 256 objects (the cost a reboot pays before the first read).
    let mut store = DiskStore::new();
    for t in 0..4u8 {
        store.put_many(batch(t)).unwrap();
    }
    let image = store.into_disk();
    group.bench_function("recover_open_256x8k", |b| {
        b.iter(|| black_box(DiskStore::open(black_box(image.clone())).unwrap()));
    });
    group.finish();
}

fn bench_tier(c: &mut Criterion) {
    let mut group = c.benchmark_group("disk");
    group.throughput(Throughput::Bytes(OBJ as u64));
    // Warm read: the object sits in the LRU RAM tier.
    group.bench_function("get_8k_warm_ram_tier", |b| {
        let mut store = DiskStore::new();
        store.put_many(batch(1)).unwrap();
        store.get("obj-1-000").unwrap();
        b.iter(|| black_box(store.get(black_box("obj-1-000")).unwrap().map(<[u8]>::len)));
    });
    // Cold read: zero tier budget forces a media read of the record
    // bytes on every get (integrity was verified by the open-time scan).
    group.bench_function("get_8k_cold_media", |b| {
        let mut store = DiskStore::new();
        store.put_many(batch(1)).unwrap();
        store.set_ram_budget(0);
        b.iter(|| black_box(store.get(black_box("obj-1-000")).unwrap().map(<[u8]>::len)));
    });
    group.finish();
}

criterion_group!(benches, bench_commit, bench_recovery, bench_tier);
criterion_main!(benches);
