//! Criterion bench for the Figure 6 experiment (save/restore cycles).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_storage");
    group.sample_size(10);
    group.bench_function("four_sites_three_cycles_scale64", |b| {
        b.iter(|| black_box(nymix_bench::fig6_storage(black_box(42), 64, 3)));
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
