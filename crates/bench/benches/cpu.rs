//! Criterion bench for the Figure 4 experiment (Peacekeeper sweep).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_cpu");
    group.bench_function("peacekeeper_sweep_0_to_8", |b| {
        b.iter(|| black_box(nymix_bench::fig4_cpu()));
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
