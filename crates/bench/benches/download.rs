//! Criterion bench for the Figure 5 experiment (parallel downloads).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_download");
    group.bench_function("parallel_downloads_1_to_8", |b| {
        b.iter(|| black_box(nymix_bench::fig5_download()));
    });
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
