//! Facade crate for the Nymix workspace.
//!
//! Hosts the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`), and re-exports every sub-crate so a
//! downstream user can depend on `nymix-suite` alone.

#![forbid(unsafe_code)]

pub use nymix;
pub use nymix_anon as anon;
pub use nymix_crypto as crypto;
pub use nymix_fs as fs;
pub use nymix_net as net;
pub use nymix_sanitizer as sanitizer;
pub use nymix_sim as sim;
pub use nymix_store as store;
pub use nymix_vmm as vmm;
pub use nymix_workload as workload;
