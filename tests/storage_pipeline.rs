//! The quasi-persistence pipeline, end to end: what the cloud provider
//! and a confiscating adversary actually obtain.

use nymix::{NymManager, StorageDest, UsageModel};
use nymix_anon::AnonymizerKind;
use nymix_workload::Site;

fn dest() -> StorageDest {
    StorageDest::Cloud {
        provider: "drive".into(),
        account: "pseud".into(),
        credential: "tok".into(),
    }
}

fn manager(seed: u64) -> NymManager {
    let mut m = NymManager::new(seed, 64);
    m.register_cloud("drive", "pseud", "tok");
    m
}

#[test]
fn provider_stores_only_ciphertext() {
    let mut m = manager(21);
    let (id, _) = m
        .create_nym("alice", AnonymizerKind::Tor, UsageModel::Persistent)
        .expect("capacity");
    m.visit_site(id, Site::Twitter).expect("live");
    m.save_nym(id, "pw", &dest()).expect("save");

    let provider = m.cloud_provider("drive").expect("registered");
    let blobs = provider.subpoena("pseud");
    assert_eq!(blobs.len(), 1);
    let (_, blob) = blobs[0];
    // No plaintext marker survives: not the nym name, not the site,
    // not the browser profile paths.
    for needle in [&b"alice"[..], b"twitter", b"chromium", b"cookies"] {
        assert!(
            !blob.windows(needle.len()).any(|w| w == needle),
            "plaintext {:?} visible to provider",
            String::from_utf8_lossy(needle)
        );
    }
    // Entropy check: ciphertext has no dominant byte.
    let mut counts = [0usize; 256];
    for &b in blob {
        counts[b as usize] += 1;
    }
    let max = counts.iter().max().copied().unwrap_or(0);
    let dominant = max as f64 / blob.len() as f64;
    assert!(dominant < 0.02, "low-entropy blob: {dominant}");
}

#[test]
fn local_storage_is_evidence_cloud_is_not() {
    let mut m = manager(22);
    let (id, _) = m
        .create_nym("bob", AnonymizerKind::Tor, UsageModel::Persistent)
        .expect("capacity");
    m.save_nym(id, "pw", &StorageDest::Local).expect("save");
    assert!(
        !m.local_store().is_deniable(),
        "local blob is evidence (§2)"
    );

    let mut m2 = manager(23);
    let (id2, _) = m2
        .create_nym("carol", AnonymizerKind::Tor, UsageModel::Persistent)
        .expect("capacity");
    m2.visit_site(id2, Site::Gmail).expect("live");
    m2.save_nym(id2, "pw", &dest()).expect("save");
    assert!(
        m2.local_store().is_deniable(),
        "cloud storage leaves no local trace"
    );
}

#[test]
fn save_restore_preserves_browser_state_exactly() {
    let mut m = manager(24);
    let (id, _) = m
        .create_nym("dave", AnonymizerKind::Tor, UsageModel::Persistent)
        .expect("capacity");
    m.visit_site(id, Site::Facebook).expect("live");
    m.visit_site(id, Site::Facebook).expect("live");
    let nb = m.nymbox(id).expect("live").clone();
    let files_before: Vec<String> = m
        .hypervisor()
        .vm(nb.anon_vm)
        .expect("vm")
        .disk()
        .walk_files(&nymix_fs::Path::new("/home/user"))
        .iter()
        .map(|p| p.to_string())
        .collect();
    m.save_nym(id, "pw", &dest()).expect("save");
    m.destroy_nym(id).expect("live");
    let (id2, _) = m
        .restore_nym(
            "dave",
            AnonymizerKind::Tor,
            UsageModel::Persistent,
            "pw",
            &dest(),
        )
        .expect("restore");
    let nb2 = m.nymbox(id2).expect("live").clone();
    let files_after: Vec<String> = m
        .hypervisor()
        .vm(nb2.anon_vm)
        .expect("vm")
        .disk()
        .walk_files(&nymix_fs::Path::new("/home/user"))
        .iter()
        .map(|p| p.to_string())
        .collect();
    assert_eq!(files_before, files_after);
}

#[test]
fn growing_nym_sizes_match_fig6_shape() {
    // Three cycles of Facebook vs Tor Blog: Facebook's archive must be
    // consistently larger and both must grow monotonically.
    let grow = |site: Site, seed: u64| -> Vec<usize> {
        let mut m = manager(seed);
        let name = format!("n-{site:?}");
        let (mut id, _) = m
            .create_nym(&name, AnonymizerKind::Tor, UsageModel::Persistent)
            .expect("capacity");
        let mut sizes = Vec::new();
        for _ in 0..3 {
            m.visit_site(id, site).expect("live");
            let (s, _) = m.save_nym(id, "pw", &dest()).expect("save");
            sizes.push(s);
            m.destroy_nym(id).expect("live");
            let (nid, _) = m
                .restore_nym(
                    &name,
                    AnonymizerKind::Tor,
                    UsageModel::Persistent,
                    "pw",
                    &dest(),
                )
                .expect("restore");
            id = nid;
        }
        sizes
    };
    let fb = grow(Site::Facebook, 30);
    let tb = grow(Site::TorBlog, 31);
    assert!(fb.windows(2).all(|w| w[1] > w[0]), "{fb:?}");
    assert!(tb.windows(2).all(|w| w[1] > w[0]), "{tb:?}");
    for (f, t) in fb.iter().zip(&tb) {
        assert!(f > t, "facebook {fb:?} vs torblog {tb:?}");
    }
}

#[test]
fn anonvm_dominates_archive_size() {
    // §5.3: "the AnonVM content accounting for 85% of the pseudonym
    // size".
    let mut m = manager(25);
    let (id, _) = m
        .create_nym("heavy", AnonymizerKind::Tor, UsageModel::Persistent)
        .expect("capacity");
    for _ in 0..3 {
        m.visit_site(id, Site::Gmail).expect("live");
    }
    m.save_nym(id, "pw", &dest()).expect("save");
    let (anon, comm, other) = m.last_save_breakdown().expect("saved");
    let share = anon as f64 / (anon + comm + other) as f64;
    assert!(share > 0.75, "AnonVM share {share}");
}
