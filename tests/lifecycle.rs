//! End-to-end nym lifecycle tests: usage models, staining/amnesia,
//! guard persistence, credential binding.

use nymix::{NymManager, StorageDest, UsageModel};
use nymix_anon::tor::TorState;
use nymix_anon::AnonymizerKind;
use nymix_workload::Site;

fn cloud_dest() -> StorageDest {
    StorageDest::Cloud {
        provider: "dropbox".into(),
        account: "anon".into(),
        credential: "tok".into(),
    }
}

fn manager_with_cloud(seed: u64) -> NymManager {
    let mut m = NymManager::new(seed, 64);
    m.register_cloud("dropbox", "anon", "tok");
    m
}

#[test]
fn stain_survives_persistent_but_not_preconfigured_nym() {
    // The §3.5 trade-off, end to end. Persistent mode saves after each
    // session, so a stain planted mid-session rides into storage;
    // pre-configured mode restarts from the clean snapshot.
    let mut m = manager_with_cloud(11);

    // Pre-configured: snapshot FIRST, then stain, then next session.
    let (pre, _) = m
        .create_nym("pre", AnonymizerKind::Tor, UsageModel::PreConfigured)
        .expect("capacity");
    m.visit_site(pre, Site::Twitter).expect("live");
    m.save_nym(pre, "pw", &StorageDest::Local)
        .expect("snapshot");
    m.inject_stain(pre, "mullenize").expect("live");
    assert!(m.has_stain(pre, "mullenize").expect("live"));
    m.destroy_nym(pre).expect("live");
    let (pre2, _) = m
        .restore_nym(
            "pre",
            AnonymizerKind::Tor,
            UsageModel::PreConfigured,
            "pw",
            &StorageDest::Local,
        )
        .expect("restore");
    assert!(
        !m.has_stain(pre2, "mullenize").expect("live"),
        "pre-configured nym must scrub the stain at next session"
    );

    // Persistent: the stain is part of the saved state.
    let (pers, _) = m
        .create_nym("pers", AnonymizerKind::Tor, UsageModel::Persistent)
        .expect("capacity");
    m.visit_site(pers, Site::Twitter).expect("live");
    m.inject_stain(pers, "mullenize").expect("live");
    m.save_nym(pers, "pw", &cloud_dest()).expect("save");
    m.destroy_nym(pers).expect("live");
    let (pers2, _) = m
        .restore_nym(
            "pers",
            AnonymizerKind::Tor,
            UsageModel::Persistent,
            "pw",
            &cloud_dest(),
        )
        .expect("restore");
    assert!(
        m.has_stain(pers2, "mullenize").expect("live"),
        "persistent nym carries the stain (the documented risk)"
    );
}

#[test]
fn tor_guards_persist_across_save_restore() {
    // §3.5: quasi-persistence preserves the entry guards, closing the
    // guard-churn intersection-attack window.
    let mut m = manager_with_cloud(12);
    let (id, _) = m
        .create_nym("guarded", AnonymizerKind::Tor, UsageModel::Persistent)
        .expect("capacity");
    let before = TorState::from_bytes(&m.anonymizer(id).expect("live").save_state())
        .expect("tor state parses");
    m.save_nym(id, "pw", &cloud_dest()).expect("save");
    m.destroy_nym(id).expect("live");
    let (id2, _) = m
        .restore_nym(
            "guarded",
            AnonymizerKind::Tor,
            UsageModel::Persistent,
            "pw",
            &cloud_dest(),
        )
        .expect("restore");
    let after = TorState::from_bytes(&m.anonymizer(id2).expect("live").save_state())
        .expect("tor state parses");
    assert_eq!(before, after, "entry guards must survive the round trip");
}

#[test]
fn fresh_nyms_get_fresh_guards() {
    let mut m = NymManager::new(13, 64);
    let mut guard_sets = std::collections::HashSet::new();
    for i in 0..6 {
        let (id, _) = m
            .create_nym(&format!("g{i}"), AnonymizerKind::Tor, UsageModel::Ephemeral)
            .expect("capacity");
        let state =
            TorState::from_bytes(&m.anonymizer(id).expect("live").save_state()).expect("parses");
        guard_sets.insert(format!("{:?}", state.guards));
        m.destroy_nym(id).expect("live");
    }
    assert!(guard_sets.len() > 1, "fresh boots should churn guards");
}

#[test]
fn credentials_bound_to_nym_not_to_machine() {
    // §3.1: "when using the correct nymbox the user need not enter
    // those credentials at all" — and no other nymbox has them.
    let mut m = manager_with_cloud(14);
    let (tw, _) = m
        .create_nym("tweeter", AnonymizerKind::Tor, UsageModel::Persistent)
        .expect("capacity");
    m.visit_site(tw, Site::Twitter).expect("live");
    let (other, _) = m
        .create_nym("reader", AnonymizerKind::Tor, UsageModel::Ephemeral)
        .expect("capacity");
    m.visit_site(other, Site::Bbc).expect("live");

    let cred_path = nymix_fs::Path::new("/home/user/.config/chromium/logins/twitter.com");
    let has = |m: &NymManager, id| {
        let nb = m.nymbox(id).expect("live").clone();
        m.hypervisor()
            .vm(nb.anon_vm)
            .expect("vm")
            .disk()
            .exists(&cred_path)
    };
    assert!(has(&m, tw));
    assert!(!has(&m, other), "credentials leaked across nymboxes");
}

#[test]
fn deleted_cloud_object_means_nym_gone() {
    let mut m = manager_with_cloud(15);
    let (id, _) = m
        .create_nym("gone", AnonymizerKind::Tor, UsageModel::Persistent)
        .expect("capacity");
    m.save_nym(id, "pw", &cloud_dest()).expect("save");
    m.destroy_nym(id).expect("live");
    // Simulate the provider wiping the account.
    // (Restore with wrong account name fails cleanly.)
    let bad = StorageDest::Cloud {
        provider: "dropbox".into(),
        account: "someone-else".into(),
        credential: "tok".into(),
    };
    assert!(m
        .restore_nym(
            "gone",
            AnonymizerKind::Tor,
            UsageModel::Persistent,
            "pw",
            &bad
        )
        .is_err());
}

#[test]
fn all_anonymizers_complete_a_session() {
    let mut m = NymManager::new(16, 64);
    for kind in AnonymizerKind::ALL {
        let (id, breakdown) = m
            .create_nym("s", kind, UsageModel::Ephemeral)
            .expect("capacity");
        let load = m.visit_site(id, Site::TorBlog).expect("live");
        assert!(load.as_secs_f64() > 0.0);
        assert!(breakdown.total().as_secs_f64() > 0.0);
        // SWEET is painfully slow; incognito is fast (§3.3 trade-off).
        if kind == AnonymizerKind::Sweet {
            assert!(load.as_secs_f64() > 8.0, "{kind:?} {load}");
        }
        if kind == AnonymizerKind::Incognito {
            assert!(load.as_secs_f64() < 3.5, "{kind:?} {load}");
        }
        m.destroy_nym(id).expect("live");
    }
}

#[test]
fn memory_returns_to_baseline_after_teardown() {
    let mut m = NymManager::new(17, 64);
    let baseline = m.hypervisor().used_memory_mib();
    let mut ids = Vec::new();
    for i in 0..5 {
        let (id, _) = m
            .create_nym(&format!("m{i}"), AnonymizerKind::Tor, UsageModel::Ephemeral)
            .expect("capacity");
        m.visit_site(id, Site::VISIT_ORDER[i]).expect("live");
        ids.push(id);
    }
    assert!(m.hypervisor().used_memory_mib() > baseline + 2000.0);
    for id in ids {
        m.destroy_nym(id).expect("live");
    }
    assert_eq!(m.hypervisor().used_memory_mib(), baseline);
}
