//! §5.1 validation as integration tests: the simulated-Wireshark leak
//! checks and the cross-VM reachability matrix.

use nymix::{validate_isolation, NymManager, UsageModel};
use nymix_anon::AnonymizerKind;
use nymix_net::fabric::Packet;
use nymix_net::Ip;

#[test]
fn isolation_matrix_passes_at_all_scales() {
    for n in [1usize, 2, 4, 8] {
        let report = validate_isolation(n).expect("validation runs");
        assert!(report.passed(), "n={n} failures: {:?}", report.failures());
        assert_eq!(report.probes.len(), n * 6);
    }
}

#[test]
fn anonvm_ip_never_crosses_the_wan() {
    // Drive real traffic (probes) and inspect every frame the
    // hypervisor emitted toward the Internet: the AnonVM's fixed
    // address must never be the source (both NAT layers rewrite it).
    let mut m = NymManager::new(99, 64);
    let (id, _) = m
        .create_nym("n", AnonymizerKind::Tor, UsageModel::Ephemeral)
        .expect("capacity");
    let nb = m.nymbox(id).expect("live").clone();
    let target = m.dns().resolve("bbc.co.uk").expect("site");
    m.fabric_mut().clear_trace();
    let status = m.fabric_mut().send(
        nb.anon_node,
        Packet::tcp(Ip::ANONVM_FIXED, target, 443, 1500),
    );
    assert!(
        status.delivered(),
        "AnonVM reaches the Internet via CommVM+NAT"
    );
    let wan_frames: Vec<_> = m
        .fabric()
        .tracer()
        .entries()
        .iter()
        .filter(|e| e.to_node == "internet")
        .collect();
    assert!(!wan_frames.is_empty());
    for f in wan_frames {
        assert_ne!(f.packet.src, Ip::ANONVM_FIXED, "AnonVM IP leaked: {f:?}");
        assert_eq!(
            f.packet.src,
            m.public_ip(),
            "WAN sees only the public NAT address"
        );
    }
}

#[test]
fn commvm_cannot_reach_intranet_even_with_many_nyms() {
    let mut m = NymManager::new(5, 64);
    let mut nodes = Vec::new();
    for i in 0..4 {
        let (id, _) = m
            .create_nym(&format!("n{i}"), AnonymizerKind::Tor, UsageModel::Ephemeral)
            .expect("capacity");
        nodes.push(m.nymbox(id).expect("live").comm_node);
    }
    let intranet = m.intranet_ip();
    for node in nodes {
        let status = m
            .fabric_mut()
            .send(node, Packet::tcp(Ip::parse("10.0.3.2"), intranet, 445, 512));
        assert!(!status.delivered(), "CommVM reached the intranet");
    }
}

#[test]
fn anonymizer_contracts_match_paper() {
    // Tor/Dissent/SWEET hide the source; incognito does not (§3.3).
    let mut m = NymManager::new(6, 64);
    for kind in AnonymizerKind::ALL {
        let (id, _) = m
            .create_nym("k", kind, UsageModel::Ephemeral)
            .expect("capacity");
        let hides = m.anonymizer(id).expect("live").hides_source();
        match kind {
            AnonymizerKind::Incognito => assert!(!hides, "{kind:?}"),
            _ => assert!(hides, "{kind:?}"),
        }
        m.destroy_nym(id).expect("live");
    }
}

#[test]
fn no_cleartext_dns_with_remote_dns_anonymizers() {
    // Tor resolves through its DNS port: nothing on UDP/53 should ever
    // appear from the CommVM toward the LAN resolver.
    let mut m = NymManager::new(8, 64);
    let (id, _) = m
        .create_nym("n", AnonymizerKind::Tor, UsageModel::Ephemeral)
        .expect("capacity");
    assert!(m.anonymizer(id).expect("live").remote_dns());
    let report = validate_isolation(2).expect("runs");
    assert!(!report.cleartext_dns_leaked);
}

#[test]
fn fingerprints_identical_across_nyms_and_machines() {
    // §4.2 homogeneity: two different users' AnonVMs are
    // indistinguishable down to MAC, IP, resolution, and CPU model.
    let mut alice = NymManager::new(1, 64);
    let mut bob = NymManager::new(2, 64);
    let (a, _) = alice
        .create_nym("a", AnonymizerKind::Tor, UsageModel::Ephemeral)
        .expect("capacity");
    let (b, _) = bob
        .create_nym("b", AnonymizerKind::Dissent, UsageModel::Persistent)
        .expect("capacity");
    let fa = alice
        .hypervisor()
        .vm(alice.nymbox(a).expect("live").anon_vm)
        .expect("vm")
        .fingerprint()
        .clone();
    let fb = bob
        .hypervisor()
        .vm(bob.nymbox(b).expect("live").anon_vm)
        .expect("vm")
        .fingerprint()
        .clone();
    assert_eq!(fa, fb);
}
