//! Cross-crate sanitizer pipeline tests: camera-roll archives through
//! the SaniVM into a nymbox, with the §3.6 risk workflow end to end.

use nymix::SaniVm;
use nymix_fs::{Layer, LayerKind, Path, UnionFs};
use nymix_sanitizer::containers::{analyze_any, sample_camera_roll, FileArchive, PngImage};
use nymix_sanitizer::{JpegImage, MediaFile, ParanoiaLevel, RiskKind};
use nymix_vmm::{Vm, VmConfig, VmId};

fn anon_vm() -> Vm {
    let mut vm = Vm::new(
        VmId(42),
        VmConfig::anonvm(),
        nymix_fs::BaseImage::minimal().to_layer(),
        Layer::new(LayerKind::Config),
    );
    vm.boot(0.05, 0.3);
    vm
}

fn host_fs(files: &[(&str, Vec<u8>)]) -> UnionFs {
    let mut base = Layer::new(LayerKind::Base);
    for (p, d) in files {
        base.put_file(Path::new(p), d.clone());
    }
    UnionFs::new(vec![base]).expect("valid stack")
}

#[test]
fn camera_roll_risks_are_itemized_per_member() {
    let roll = sample_camera_roll();
    let risks = analyze_any(&roll.to_bytes());
    // The JPEG's GPS and the PNG's Location chunk both surface, tagged
    // by member name.
    assert!(risks
        .iter()
        .any(|r| r.kind == RiskKind::GpsLocation && r.detail.starts_with("protest.jpg:")));
    assert!(risks
        .iter()
        .any(|r| r.kind == RiskKind::GpsLocation && r.detail.starts_with("screen.png:")));
    // The unknown text member cannot be certified.
    assert!(risks
        .iter()
        .any(|r| r.kind == RiskKind::UnknownFormat && r.detail.starts_with("notes.txt:")));
}

#[test]
fn archive_scrub_produces_a_cleanable_subset() {
    let (clean, reports) = sample_camera_roll().scrub_members(ParanoiaLevel::Paranoid);
    assert_eq!(clean.members.len(), 2);
    // Every non-PNG member gets a report; only notes.txt stays risky.
    assert_eq!(reports.len(), 2);
    for (name, report) in &reports {
        assert_eq!(report.clean(), name != "notes.txt", "{name}");
    }
    for (_, data) in &clean.members {
        assert!(analyze_any(data).is_empty());
    }
    // The cleaned archive round-trips.
    let parsed = FileArchive::parse(&clean.to_bytes()).expect("parses");
    assert_eq!(parsed, clean);
}

#[test]
fn sanivm_blocks_png_with_location_chunk_at_basic_level() {
    // PNGs are not understood by the MAT-style scrubber (only by the
    // container path), so a Basic transfer must refuse them as
    // unknown-format rather than pass identifying chunks through.
    let png = PngImage::screenshot().to_bytes();
    let mut sani = SaniVm::new();
    sani.mount_host_fs("cam", host_fs(&[("/dcim/screen.png", png)]));
    let mut vm = anon_vm();
    let result = sani.transfer_to_nym(
        "cam",
        &Path::new("/dcim/screen.png"),
        "poster",
        &mut vm,
        ParanoiaLevel::Basic,
        false,
    );
    assert!(result.is_err(), "risky PNG must not reach the nymbox");
    assert!(vm.disk().walk_files(&Path::new("/media")).is_empty());
}

#[test]
fn full_bob_pipeline_photo_to_nymbox() {
    // The §2 scenario end to end: camera file with GPS + serial +
    // faces, through the SaniVM at Paranoid, into the posting nym.
    let photo = MediaFile::Jpeg(JpegImage::protest_photo()).to_bytes();
    let mut sani = SaniVm::new();
    sani.mount_host_fs("camera", host_fs(&[("/dcim/img_0001.jpg", photo)]));
    let mut vm = anon_vm();
    let (report, landed) = sani
        .transfer_to_nym(
            "camera",
            &Path::new("/dcim/img_0001.jpg"),
            "tyr-press",
            &mut vm,
            ParanoiaLevel::Paranoid,
            false,
        )
        .expect("paranoid scrub certifies the photo");
    assert!(report.risks_before.len() >= 4, "the photo was a minefield");
    assert!(report.clean());
    let delivered = vm.disk().read(&landed).expect("file landed");
    match MediaFile::parse(delivered) {
        MediaFile::Jpeg(j) => {
            assert!(j.exif.is_empty(), "EXIF survived");
            assert!(j.faces.is_empty(), "faces survived");
            assert!(j.watermark.is_none(), "watermark survived");
            assert!(j.stego_payload.is_none());
        }
        other => panic!("unexpected delivery: {other:?}"),
    }
}
